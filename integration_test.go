package mpcdash_test

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"

	"mpcdash"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/mpd"
	"mpcdash/internal/trace"
)

// TestEndToEndDeterminism: the whole pipeline — generation, prediction,
// control, simulation, normalization — is reproducible for a fixed seed.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() []float64 {
		video := mpcdash.EnvivioVideo()
		traces := mpcdash.GenerateDataset(mpcdash.DatasetHSDPA, 3, video.Duration()+120, 77)
		var qoes []float64
		for _, tr := range traces {
			res, err := mpcdash.Run(video, tr, mpcdash.RobustMPC, mpcdash.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			qoes = append(qoes, res.QoE, res.NormQoE)
		}
		return qoes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFastMPCDeserializeFuzz: random corruption of serialized tables must
// be rejected with an error, never a panic or a silently wrong table.
func TestFastMPCDeserializeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		blob := make([]byte, rng.Intn(200))
		rng.Read(blob)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Deserialize panicked on %d random bytes: %v", len(blob), r)
				}
			}()
			_, _ = fastmpc.Deserialize(blob)
			_, _ = fastmpc.DeserializeCompressed(blob)
		}()
	}
}

// TestMPDDecodeFuzz: malformed manifests must error out, not panic.
func TestMPDDecodeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seeds := []string{
		"<MPD>",
		"<MPD><Period></Period></MPD>",
		"<?xml version=\"1.0\"?><MPD type=\"static\"><Period><AdaptationSet segmentCount=\"-1\"/></Period></MPD>",
	}
	for i := 0; i < 500; i++ {
		base := seeds[i%len(seeds)]
		// Random mutation: flip a byte.
		b := []byte(base)
		if len(b) > 0 {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %q: %v", string(b), r)
				}
			}()
			_, _ = mpd.Decode(b)
		}()
	}
}

// TestTraceReadFuzz: arbitrary text never panics the trace parser.
func TestTraceReadFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []byte("0123456789. -#ab\n\t")
	for i := 0; i < 1000; i++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trace.Read panicked on %q: %v", string(buf), r)
				}
			}()
			_, _ = trace.Read(bytesReader(buf), "fuzz")
			_, _ = trace.ReadMahimahi(bytesReader(buf), "fuzz", 500)
		}()
	}
}

// TestNormalizedQoEAtMostOne across a sample of sessions and datasets: the
// offline optimum really does bound the online algorithms.
func TestNormalizedQoEAtMostOne(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	for _, kind := range []mpcdash.Dataset{mpcdash.DatasetFCC, mpcdash.DatasetSynthetic} {
		traces := mpcdash.GenerateDataset(kind, 3, video.Duration()+120, 55)
		for _, a := range []mpcdash.Algorithm{mpcdash.BB, mpcdash.RobustMPC} {
			for _, tr := range traces {
				res, err := mpcdash.Run(video, tr, a, mpcdash.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				if res.NormQoE > 1.05 {
					t.Errorf("%s on %s: n-QoE %v > 1", a, tr.Name(), res.NormQoE)
				}
				if math.IsNaN(res.NormQoE) {
					t.Errorf("%s on %s: n-QoE NaN", a, tr.Name())
				}
			}
		}
	}
}

// bytesReader adapts a byte slice to io.Reader without importing bytes at
// every call site.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
