// Solver hot-path benchmarks (the tentpole budget): per-chunk decision
// latency and allocations for the exact MPC solver, and cold-vs-warm
// FastMPC table acquisition through the content-addressed cache.
// TestSolverPerformance writes the measured numbers to BENCH_solver.json
// (see `make bench-solver`) and asserts the two hard budgets: the
// steady-state scratch path allocates nothing, and a warm disk cache is
// faster than an offline rebuild.
package mpcdash_test

import (
	"encoding/json"
	"os"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
)

// raceEnabled is set by race_enabled_test.go under `go test -race`.
var raceEnabled bool

func solverOptimizer(b testing.TB) *core.Optimizer {
	opt, err := core.NewOptimizer(model.EnvivioManifest(), model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	return opt
}

// solverSpec is the paper's full 100×100 binning over the Envivio ladder.
func solverSpec() fastmpc.BinSpec {
	return fastmpc.DefaultBins(30, 3000)
}

func solverState() abr.State {
	return abr.State{Chunk: 30, Buffer: 14.2, Prev: 2, Forecast: []float64{1740, 1740, 1740, 1740, 1740}}
}

// BenchmarkSolver_PlanScratchSteadyState is the per-chunk decision with an
// explicit warmed Scratch — the zero-allocation contract.
func BenchmarkSolver_PlanScratchSteadyState(b *testing.B) {
	opt := solverOptimizer(b)
	st := solverState()
	var s core.Scratch
	opt.PlanScratch(&s, st.Chunk, st.Buffer, st.Prev, st.Forecast, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.PlanScratch(&s, st.Chunk, st.Buffer, st.Prev, st.Forecast, false)
	}
}

// BenchmarkSolver_PlanPooled is the same decision through the pooled Plan
// entry point (callers without their own Scratch).
func BenchmarkSolver_PlanPooled(b *testing.B) {
	opt := solverOptimizer(b)
	st := solverState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Plan(st.Chunk, st.Buffer, st.Prev, st.Forecast, false)
	}
}

// BenchmarkSolver_MPCDecide is the full controller hot path every
// simulated session takes per chunk.
func BenchmarkSolver_MPCDecide(b *testing.B) {
	ctrl := core.NewMPC(model.Balanced, model.QIdentity, 30, 5)(model.EnvivioManifest())
	st := solverState()
	ctrl.Decide(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(st)
	}
}

// BenchmarkSolver_TableBuildCold is the offline enumeration a cold start
// pays: the full 100×L×100 state space solved exactly.
func BenchmarkSolver_TableBuildCold(b *testing.B) {
	opt := solverOptimizer(b)
	spec := solverSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fastmpc.Build(opt, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver_TableCacheMemoryWarm is a registry hit after the first
// population built the table: the path N fleet populations share.
func BenchmarkSolver_TableCacheMemoryWarm(b *testing.B) {
	reg := fastmpc.NewRegistry()
	opt := solverOptimizer(b)
	spec := solverSpec()
	if _, err := reg.Table(opt, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Table(opt, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver_TableCacheDiskWarm is a fresh process finding the table
// on disk: header-validated read + deserialize instead of the build.
func BenchmarkSolver_TableCacheDiskWarm(b *testing.B) {
	dir := b.TempDir()
	opt := solverOptimizer(b)
	spec := solverSpec()
	prime := fastmpc.NewRegistry()
	prime.SetDir(dir)
	if _, err := prime.Table(opt, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := fastmpc.NewRegistry()
		reg.SetDir(dir)
		if _, err := reg.Table(opt, spec); err != nil {
			b.Fatal(err)
		}
		if reg.Stats().DiskHits != 1 {
			b.Fatal("disk cache missed")
		}
	}
}

// TestSolverPerformance measures the solver budgets and writes
// BENCH_solver.json. Asserted: the steady-state scratch path is
// allocation-free, and loading a warm disk cache beats rebuilding.
func TestSolverPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark report; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the timings; BENCH_solver.json is generated without -race")
	}
	scratch := testing.Benchmark(BenchmarkSolver_PlanScratchSteadyState)
	pooled := testing.Benchmark(BenchmarkSolver_PlanPooled)
	decide := testing.Benchmark(BenchmarkSolver_MPCDecide)
	cold := testing.Benchmark(BenchmarkSolver_TableBuildCold)
	memWarm := testing.Benchmark(BenchmarkSolver_TableCacheMemoryWarm)
	diskWarm := testing.Benchmark(BenchmarkSolver_TableCacheDiskWarm)

	t.Logf("PlanScratch %d ns/op %d allocs/op; Plan (pooled) %d ns/op; Decide %d ns/op %d allocs/op",
		scratch.NsPerOp(), scratch.AllocsPerOp(), pooled.NsPerOp(), decide.NsPerOp(), decide.AllocsPerOp())
	t.Logf("table: cold build %d ns/op, memory-warm %d ns/op, disk-warm %d ns/op",
		cold.NsPerOp(), memWarm.NsPerOp(), diskWarm.NsPerOp())

	if scratch.AllocsPerOp() != 0 {
		t.Errorf("steady-state PlanScratch allocates %d objects/op, want 0", scratch.AllocsPerOp())
	}
	if decide.AllocsPerOp() != 0 {
		t.Errorf("steady-state MPC.Decide allocates %d objects/op, want 0", decide.AllocsPerOp())
	}
	if diskWarm.NsPerOp() >= cold.NsPerOp() {
		t.Errorf("warm disk cache (%d ns/op) is not faster than a cold build (%d ns/op)",
			diskWarm.NsPerOp(), cold.NsPerOp())
	}

	report, err := json.MarshalIndent(map[string]any{
		"benchmark":               "Envivio manifest, horizon 5, paper 100×100 bins",
		"plan_scratch_ns_op":      scratch.NsPerOp(),
		"plan_scratch_allocs_op":  scratch.AllocsPerOp(),
		"plan_pooled_ns_op":       pooled.NsPerOp(),
		"mpc_decide_ns_op":        decide.NsPerOp(),
		"mpc_decide_allocs_op":    decide.AllocsPerOp(),
		"table_build_cold_ns_op":  cold.NsPerOp(),
		"table_memory_warm_ns_op": memWarm.NsPerOp(),
		"table_disk_warm_ns_op":   diskWarm.NsPerOp(),
		"table_disk_warm_speedup": float64(cold.NsPerOp()) / float64(diskWarm.NsPerOp()),
		"budget":                  "plan_scratch_allocs_op == 0 && mpc_decide_allocs_op == 0 && disk warm < cold build",
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_solver.json", append(report, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
