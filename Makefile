GO ?= go

.PHONY: build test race vet verify trace-demo fleet-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrent emulation/runner/metrics paths under the race
# detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/emu/... ./internal/runner/... ./internal/multiplayer/... ./internal/fleet/...

# verify is the full pre-merge gate: build, vet, and the whole test suite
# under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# trace-demo plays the loopback emulation and writes a Chrome trace-event
# timeline; open trace_demo.json in chrome://tracing or ui.perfetto.dev.
trace-demo:
	$(GO) run ./examples/emulation -trace-out trace_demo.json

# fleet-demo drives the built-in 10k-session scenario (RobustMPC vs
# buffer-based populations over an fcc+hsdpa trace mix) on the simulated
# backend and writes the per-population JSON report.
fleet-demo:
	$(GO) run ./cmd/fleet -sessions 10000 -report fleet_report.json
