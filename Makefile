GO ?= go

.PHONY: build test race vet lint lint-alloc lint-fixtures fuzz verify bench-solver bench-svc trace-demo fleet-demo svc-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mpclint, the project-specific static analyzers enforcing the
# determinism / float-safety / map-order / stdlib-only / ctx-leak /
# lock-scope / no-alloc / atomic-discipline / HTTP-contract invariants
# (DESIGN.md §4e, §4h). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/mpclint ./...

# lint-alloc cross-checks every //mpc:noalloc annotation against the
# compiler's escape analysis (go build -gcflags=-m): an escape or
# heap-move site inside an annotated function fails the build.
lint-alloc:
	$(GO) run ./cmd/mpclint -alloccheck ./...

# lint-fixtures runs the analyzer golden-fixture tests (testdata trees with
# `// want "..."` expectations) and the mpclint CLI smoke tests.
lint-fixtures:
	$(GO) test ./internal/lint/... ./cmd/mpclint/...

# fuzz smoke-runs every fuzz target (the binary table decoders and the
# /v1 JSON decode paths) for FUZZTIME each, seeded from the committed
# corpora under testdata/fuzz.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDeserializeTable$$' -fuzztime $(FUZZTIME) ./internal/fastmpc/
	$(GO) test -run '^$$' -fuzz '^FuzzDeserializeCompressed$$' -fuzztime $(FUZZTIME) ./internal/fastmpc/
	$(GO) test -run '^$$' -fuzz '^FuzzCacheFile$$' -fuzztime $(FUZZTIME) ./internal/fastmpc/
	$(GO) test -run '^$$' -fuzz '^FuzzSessionRequestJSON$$' -fuzztime $(FUZZTIME) ./internal/abrsvc/
	$(GO) test -run '^$$' -fuzz '^FuzzDecideRequestJSON$$' -fuzztime $(FUZZTIME) ./internal/abrsvc/

test:
	$(GO) test ./...

# race runs the entire test suite under the race detector.
race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: build, vet, lint (including the
# escape-analysis reconciliation), and the whole test suite under the race
# detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/mpclint ./...
	$(GO) run ./cmd/mpclint -alloccheck ./...
	$(GO) test -race ./...

# bench-solver measures the MPC solver hot path (ns/op, allocs/op) and the
# cold vs warm FastMPC table cache, writes BENCH_solver.json, and fails if
# the zero-allocation or warm-beats-cold budget is blown.
bench-solver:
	$(GO) test -run TestSolverPerformance -count=1 -v .

# bench-svc load-tests a self-hosted abrd decision service over loopback,
# writes BENCH_svc.json (decisions/sec, server-side p99), and fails if the
# 1 ms lookup-path p99 budget is blown.
bench-svc:
	$(GO) test -run TestSvcPerformance -count=1 -v .

# trace-demo plays the loopback emulation and writes a Chrome trace-event
# timeline; open trace_demo.json in chrome://tracing or ui.perfetto.dev.
trace-demo:
	$(GO) run ./examples/emulation -trace-out trace_demo.json

# fleet-demo drives the built-in 10k-session scenario (RobustMPC vs
# buffer-based populations over an fcc+hsdpa trace mix) on the simulated
# backend and writes the per-population JSON report.
fleet-demo:
	$(GO) run ./cmd/fleet -sessions 10000 -report fleet_report.json

# svc-demo drives 1,200 concurrent sessions (FastMPC and RobustMPC
# populations) against a self-hosted abrd decision service over loopback
# HTTP — every per-chunk decision is a /v1/decide round trip — and writes
# the per-population JSON report.
svc-demo:
	$(GO) run ./cmd/fleet -backend svc -sessions 1200 -max-inflight 1200 -report svc_report.json
