module mpcdash

go 1.22
