// Benchmarks regenerating the paper's evaluation (Sec 7): one benchmark per
// table and figure, wrapping internal/experiments with a reduced trace
// count so `go test -bench=.` completes in minutes, plus the Sec 7.4
// controller-overhead microbenchmarks. For paper-scale runs use
// cmd/experiments with -traces 1000.
package mpcdash_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/experiments"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// benchConfig keeps benchmark iterations affordable while exercising the
// full experiment pipeline.
func benchConfig() experiments.Config {
	return experiments.Config{TraceCount: 12, Seed: 42, Out: io.Discard}
}

func BenchmarkFig7_DatasetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_NormalizedQoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_FCCDetail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_HSDPADetail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11a_PredictionError(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6 // 8 error levels × 4 algorithms inside
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11b_QoEPreferences(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11c_BufferSize(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11d_StartupTime(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11d(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a_Discretization(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12b_Horizon(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_TableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevelsSweep_Extension(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LevelsSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sec 7.4 overhead microbenchmarks ---

// benchState is a representative steady-state decision point.
var benchState = abr.State{
	Chunk:    30,
	Buffer:   14.2,
	Prev:     2,
	Forecast: []float64{1740, 1740, 1740, 1740, 1740},
	Lower:    []float64{1450, 1450, 1450, 1450, 1450},
}

func BenchmarkOverhead_RBDecision(b *testing.B) {
	ctrl := abr.NewRB(1)(model.EnvivioManifest())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(benchState)
	}
}

func BenchmarkOverhead_BBDecision(b *testing.B) {
	ctrl := abr.NewBB(5, 10)(model.EnvivioManifest())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(benchState)
	}
}

func BenchmarkOverhead_FESTIVEDecision(b *testing.B) {
	ctrl := abr.NewFESTIVE(12, 1, 5)(model.EnvivioManifest())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(benchState)
	}
}

func BenchmarkOverhead_ExactMPCDecision(b *testing.B) {
	ctrl := core.NewMPC(model.Balanced, model.QIdentity, 30, 5)(model.EnvivioManifest())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(benchState)
	}
}

func BenchmarkOverhead_FastMPCLookup(b *testing.B) {
	m := model.EnvivioManifest()
	ctrl := fastmpc.NewController(model.Balanced, model.QIdentity, 30, 5, nil, false, "")(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Decide(benchState)
	}
}

func BenchmarkOverhead_FastMPCTableBuild(b *testing.B) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	spec := fastmpc.DefaultBins(30, m.Ladder.Max())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fastmpc.Build(opt, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatedSession_RobustMPC(b *testing.B) {
	m := model.EnvivioManifest()
	tr := trace.GenHSDPA(4, m.Duration()+120)
	factory := core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5)
		if _, err := sim.Run(m, tr, factory(m), pred, sim.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDownloadTime(b *testing.B) {
	tr := trace.GenHSDPA(4, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DownloadTime(float64(i%350), 4000)
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// BenchmarkAblation_PruningOn/Off quantify the branch-and-bound cut in the
// horizon enumeration (identical results, different node counts).
func BenchmarkAblation_PruningOn(b *testing.B) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Plan(10, 14.2, 2, benchState.Forecast, false)
	}
}

func BenchmarkAblation_PruningOff(b *testing.B) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	opt.DisablePruning = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Plan(10, 14.2, 2, benchState.Forecast, false)
	}
}

// BenchmarkAblation_FlatLookup vs CompressedLookup: the Sec 5.2 trade —
// binary search over RLE runs versus direct indexing into the full table.
func BenchmarkAblation_FlatLookup(b *testing.B) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	table, err := fastmpc.Build(opt, fastmpc.DefaultBins(30, m.Ladder.Max()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(14.2, 2, 1740)
	}
}

func BenchmarkAblation_CompressedLookup(b *testing.B) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		b.Fatal(err)
	}
	table, err := fastmpc.Build(opt, fastmpc.DefaultBins(30, m.Ladder.Max()))
	if err != nil {
		b.Fatal(err)
	}
	compressed := fastmpc.Compress(table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compressed.Lookup(14.2, 2, 1740)
	}
}

// BenchmarkAblation_RobustWindow sweeps the error-tracking window that
// feeds RobustMPC's lower bound (paper default 5).
func BenchmarkAblation_RobustWindow(b *testing.B) {
	m := model.EnvivioManifest()
	tr := trace.GenHSDPA(9, m.Duration()+120)
	for _, window := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			factory := core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)
			for i := 0; i < b.N; i++ {
				pred := predictor.NewErrorTracked(predictor.NewHarmonicMean(5), window)
				if _, err := sim.Run(m, tr, factory(m), pred, sim.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPredictorSweep_Extension(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PredictorSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDPComparison_Extension(b *testing.B) {
	cfg := benchConfig()
	cfg.TraceCount = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MDPComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead (tentpole acceptance: disabled obs is free) ---

// benchObsSession runs one simulated BB session per iteration with the
// recorder built by mk (nil = observability off). BB keeps the controller
// cheap so per-chunk instrumentation cost is maximally visible.
func benchObsSession(b *testing.B, mk func() *obs.Recorder) {
	b.Helper()
	m := model.EnvivioManifest()
	tr := trace.GenFCC(7, m.Duration()+120)
	factory := abr.NewBB(5, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		var rec *obs.Recorder
		if mk != nil {
			rec = mk()
		}
		cfg.Obs = rec
		if _, err := sim.Run(m, tr, factory(m), predictor.NewHarmonicMean(5), cfg); err != nil {
			b.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObs_SessionBaseline(b *testing.B) {
	benchObsSession(b, nil)
}

func BenchmarkObs_SessionNilSink(b *testing.B) {
	benchObsSession(b, func() *obs.Recorder { return obs.NewRecorder(nil, nil) })
}

func BenchmarkObs_SessionInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	benchObsSession(b, func() *obs.Recorder {
		return obs.NewRecorder(reg, obs.NewChromeTrace(io.Discard))
	})
}

// TestObsOverheadBudget enforces the zero-overhead-when-disabled contract:
// a session carrying a disabled (nil-registry, nil-sink) recorder must run
// within 2% of one carrying no recorder at all. The asserted pair is
// measured back-to-back and compared per trial — a paired ratio, not a
// ratio of pooled bests — so CPU-load epochs (e.g. other test packages
// running in parallel) inflate both sides together and cancel; the
// assertion takes the best paired ratio. The metrics-only and fully
// traced ratios are reported in BENCH_obs.json but not asserted (they buy
// metrics and a trace, so they are allowed to cost something).
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the timings; BENCH_obs.json is generated without -race")
	}
	const trials = 4
	best := [4]float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}
	makers := []func() *obs.Recorder{
		nil,
		func() *obs.Recorder { return obs.NewRecorder(nil, nil) },
		func() *obs.Recorder { return obs.NewRecorder(obs.NewRegistry(), nil) },
		func() *obs.Recorder {
			return obs.NewRecorder(obs.NewRegistry(), obs.NewChromeTrace(io.Discard))
		},
	}
	measure := func(i int) float64 {
		mk := makers[i]
		r := testing.Benchmark(func(b *testing.B) { benchObsSession(b, mk) })
		v := float64(r.NsPerOp())
		if v < best[i] {
			best[i] = v
		}
		return v
	}
	nilRatio := math.Inf(1)
	pair := func() {
		base := measure(0)
		if ratio := measure(1) / base; ratio < nilRatio {
			nilRatio = ratio
		}
	}
	for trial := 0; trial < trials; trial++ {
		pair()
		if trial < 2 {
			measure(2)
			measure(3)
		}
	}
	// Escape hatch: only conclude the budget is blown after extra paired
	// trials agree.
	for extra := 0; extra < 3 && nilRatio > 1.02; extra++ {
		pair()
	}
	metricsRatio := best[2] / best[0]
	tracedRatio := best[3] / best[0]
	t.Logf("baseline %.0f ns/op, nil-sink ×%.4f, metrics ×%.4f, metrics+trace ×%.4f",
		best[0], nilRatio, metricsRatio, tracedRatio)
	if nilRatio > 1.02 {
		t.Errorf("nil-sink overhead ×%.4f exceeds the 2%% budget", nilRatio)
	}

	report, err := json.MarshalIndent(map[string]any{
		"benchmark":           "simulated BB session, Envivio manifest, FCC trace",
		"trials":              trials,
		"baseline_ns_op":      best[0],
		"nil_sink_ns_op":      best[1],
		"metrics_ns_op":       best[2],
		"metrics_trace_ns_op": best[3],
		"nil_sink_ratio":      nilRatio,
		"metrics_ratio":       metricsRatio,
		"metrics_trace_ratio": tracedRatio,
		"budget":              "nil_sink_ratio < 1.02",
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(report, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
