// Command multiplayer simulates several adaptive players sharing one
// bottleneck link (the Sec 8 multi-player discussion) and reports fairness,
// utilization, stability and per-player QoE.
//
// Usage:
//
//	multiplayer [-players 3] [-alg RobustMPC] [-link 6000] [-chunks 30]
//	            [-stagger 5] [-dataset ""]
//
// With -dataset set (fcc/hsdpa/synthetic) the bottleneck follows a
// generated trace instead of a constant -link rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/multiplayer"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

func main() {
	var (
		players = flag.Int("players", 3, "number of competing players")
		algName = flag.String("alg", "RobustMPC", "RB, BB, FESTIVE, dash.js, MPC, RobustMPC, FastMPC")
		link    = flag.Float64("link", 6000, "constant bottleneck capacity in kbps")
		chunks  = flag.Int("chunks", 30, "video length in 4-second chunks")
		stagger = flag.Float64("stagger", 5, "seconds between player arrivals")
		dataset = flag.String("dataset", "", "trace-driven bottleneck: fcc, hsdpa or synthetic")
		seed    = flag.Int64("seed", 1, "trace seed when -dataset is set")
	)
	flag.Parse()

	if *players < 1 {
		fatal(fmt.Errorf("need at least one player"))
	}
	m, err := model.NewCBRManifest(model.EnvivioLadder(), *chunks, 4)
	if err != nil {
		fatal(err)
	}

	var bottleneck *trace.Trace
	if *dataset == "" {
		bottleneck, err = trace.FromRates("const", 1e6, []float64{*link})
		if err != nil {
			fatal(err)
		}
	} else {
		var kind trace.DatasetKind
		switch strings.ToLower(*dataset) {
		case "fcc":
			kind = trace.FCC
		case "hsdpa":
			kind = trace.HSDPA
		case "synthetic":
			kind = trace.Synthetic
		default:
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		// Generous length: N staggered sessions can far outlast one.
		bottleneck = trace.Dataset(kind, 1, float64(*players)*m.Duration()*3, *seed)[0]
	}

	mk, err := playerFactory(*algName, m)
	if err != nil {
		fatal(err)
	}
	ps := make([]multiplayer.Player, *players)
	for i := range ps {
		ps[i] = mk(i)
		ps[i].StartOffset = float64(i) * *stagger
	}

	res, err := multiplayer.Run(m, bottleneck, ps, multiplayer.Config{BufferMax: 30, Horizon: 5})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%d × %s over %s (mean %.0f kbps)\n\n", *players, *algName, bottleneck.Name, bottleneck.Mean())
	fmt.Printf("Jain fairness   %.3f\n", res.JainIndex)
	fmt.Printf("utilization     %.3f\n", res.Utilization)
	fmt.Printf("instability     %.3f switches/chunk\n\n", res.Instability)
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "player", "avg kbps", "switches", "rebuffer(s)", "QoE")
	for i, s := range res.Sessions {
		met := s.ComputeMetrics(model.QIdentity)
		fmt.Printf("%-10s %10.0f %10d %12.2f %10.0f\n",
			ps[i].Name, met.AvgBitrate, met.Switches, met.RebufferTime,
			s.QoE(model.Balanced, model.QIdentity))
	}
}

// playerFactory builds same-algorithm players with fresh state per slot.
func playerFactory(name string, m *model.Manifest) (func(i int) multiplayer.Player, error) {
	lower := strings.ToLower(name)
	mk := func(factory abr.Factory, pred func() predictor.Predictor) func(int) multiplayer.Player {
		return func(i int) multiplayer.Player {
			return multiplayer.Player{
				Name:       fmt.Sprintf("p%d", i),
				Controller: factory(m),
				Predictor:  pred(),
			}
		}
	}
	harmonic := func() predictor.Predictor { return predictor.NewHarmonicMean(5) }
	switch lower {
	case "rb":
		return mk(abr.NewRB(1), harmonic), nil
	case "bb":
		return mk(abr.NewBB(5, 10), harmonic), nil
	case "festive":
		return mk(abr.NewFESTIVE(12, 1, 5), harmonic), nil
	case "dash.js", "dashjs":
		return mk(abr.NewDashJS(0, 0), func() predictor.Predictor { return &predictor.LastSample{} }), nil
	case "mpc":
		return mk(core.NewMPC(model.Balanced, model.QIdentity, 30, 5), harmonic), nil
	case "robustmpc":
		return mk(core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5),
			func() predictor.Predictor { return predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5) }), nil
	case "fastmpc":
		return mk(fastmpc.NewController(model.Balanced, model.QIdentity, 30, 5, nil, false, "FastMPC"), harmonic), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "multiplayer: %v\n", err)
	os.Exit(1)
}
