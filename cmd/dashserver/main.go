// Command dashserver runs the shaped HTTP chunk origin: it serves the DASH
// manifest and media segments of a synthetic test video over a link whose
// throughput follows a trace, standing in for the paper's node.js server
// plus `tc` throttling. Point any HTTP client (or the examples/emulation
// player) at it.
//
// Usage:
//
//	dashserver [-addr 127.0.0.1:8080] [-dataset hsdpa] [-seed 1]
//	           [-chunks 65] [-scale 1] [-metrics-addr 127.0.0.1:9090]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcdash/internal/emu"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		dataset     = flag.String("dataset", "fcc", "link trace model: fcc, hsdpa, synthetic")
		seed        = flag.Int64("seed", 1, "trace seed")
		chunks      = flag.Int("chunks", 65, "video length in 4-second chunks")
		scale       = flag.Float64("scale", 1, "time-compression factor (media s per wall s)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = disabled)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight downloads on SIGINT/SIGTERM")
	)
	flag.Parse()

	m, err := model.NewCBRManifest(model.EnvivioLadder(), *chunks, 4)
	if err != nil {
		fatal(err)
	}

	var kind trace.DatasetKind
	switch strings.ToLower(*dataset) {
	case "fcc":
		kind = trace.FCC
	case "hsdpa":
		kind = trace.HSDPA
	case "synthetic":
		kind = trace.Synthetic
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	tr := trace.Dataset(kind, 1, m.Duration()+120, *seed)[0]

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := emu.NewServer(m)
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.Instrument(reg)
		obs.PublishExpvar("mpcdash", reg)
		dbg, err := obs.ServeDebug(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dashserver: metrics at http://%s/metrics, profiles at http://%s/debug/pprof/\n", dbg, dbg)
	}
	shaped := emu.NewListener(ln, emu.NewShaper(tr.Scale(*scale, *scale)))

	fmt.Printf("dashserver: serving %d-chunk video at http://%s/manifest.mpd\n", *chunks, ln.Addr())
	fmt.Printf("dashserver: link shaped by %s (mean %.0f kbps), time scale %gx\n", tr.Name, tr.Mean(), *scale)

	// SIGINT/SIGTERM drains gracefully: stop accepting, let in-flight chunk
	// downloads finish (bounded by -drain), then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ServeOn(shaped) }()
	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("dashserver: %v received, draining (deadline %s)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		<-done
		fmt.Println("dashserver: drained cleanly")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dashserver: %v\n", err)
	os.Exit(1)
}
