// Command dashclient plays a video from a dashserver (or any server
// exposing the same manifest + segment layout) through a chosen adaptation
// algorithm, over real HTTP, and prints the session summary. Together with
// dashserver it forms the two-machine emulation setup of Sec 7.2.
//
// Usage:
//
//	dashclient [-url http://127.0.0.1:8080] [-alg RobustMPC] [-scale 1]
//	           [-csv session.csv] [-trace-out session.trace.json]
//	           [-metrics-addr 127.0.0.1:9091]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/emu"
	"mpcdash/internal/export"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
)

func main() {
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "dashserver base URL")
		algName     = flag.String("alg", "RobustMPC", "RB, BB, FESTIVE, dash.js, MPC, RobustMPC, FastMPC")
		scale       = flag.Float64("scale", 1, "time-compression factor; must match the server's")
		bmax        = flag.Float64("buffer", 30, "playout buffer cap in media seconds")
		horizon     = flag.Int("horizon", 5, "MPC look-ahead chunks")
		timeout     = flag.Duration("timeout", 30*time.Minute, "session wall-clock timeout")
		csvOut      = flag.String("csv", "", "write the per-chunk log as CSV to this file")
		retries     = flag.Int("retries", emu.DefaultRetries, "extra download attempts per chunk (0 = fail on first error)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of the session to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the session runs (empty = disabled)")
	)
	flag.Parse()

	factory, pred, err := pick(*algName, *bmax, *horizon)
	if err != nil {
		fatal(err)
	}

	// Observability: a live metrics endpoint and/or a Chrome trace sink.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.PublishExpvar("mpcdash", reg)
		dbg, err := obs.ServeDebug(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics at http://%s/metrics, profiles at http://%s/debug/pprof/\n", dbg, dbg)
	}
	var sink obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		sink = obs.NewChromeTrace(traceFile)
	}
	var rec *obs.Recorder
	if reg != nil || sink != nil {
		rec = obs.NewRecorder(reg, sink)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := &emu.Client{
		BaseURL:   *baseURL,
		Predictor: pred,
		BufferMax: *bmax,
		Horizon:   *horizon,
		TimeScale: *scale,
		Retries:   *retries,
		Obs:       rec,
	}
	// The controller needs the manifest, which the client fetches; use the
	// deferred-binding helper.
	res, err := client.RunWithController(ctx, factory)
	if err != nil {
		fatal(err)
	}
	if err := rec.Close(); err != nil {
		fatal(err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s — open in chrome://tracing or https://ui.perfetto.dev\n", *traceOut)
	}

	metrics := res.ComputeMetrics(model.QIdentity)
	fmt.Printf("algorithm     %s\n", res.Algorithm)
	fmt.Printf("QoE           %.0f\n", res.QoE(model.Balanced, model.QIdentity))
	fmt.Printf("avg bitrate   %.0f kbps\n", metrics.AvgBitrate)
	fmt.Printf("switches      %d\n", metrics.Switches)
	fmt.Printf("rebuffer      %.2f media-s in %d events\n", metrics.RebufferTime, metrics.RebufferEvents)
	fmt.Printf("startup       %.2f media-s\n", res.StartupDelay)
	fmt.Printf("transport     %d retries, %d range resumes, %d lowest-level fallbacks\n",
		metrics.Retries, metrics.Resumes, metrics.Fallbacks)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := export.WriteCSV(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("per-chunk CSV written to %s\n", *csvOut)
	}
}

// pick maps an algorithm name to its factory and predictor.
func pick(name string, bmax float64, horizon int) (abr.Factory, predictor.Predictor, error) {
	switch strings.ToLower(name) {
	case "rb":
		return abr.NewRB(1), predictor.NewHarmonicMean(5), nil
	case "bb":
		return abr.NewBB(5, 10), predictor.NewHarmonicMean(5), nil
	case "festive":
		return abr.NewFESTIVE(12, 1, 5), predictor.NewHarmonicMean(5), nil
	case "dash.js", "dashjs":
		return abr.NewDashJS(0, 0), &predictor.LastSample{}, nil
	case "mpc":
		return core.NewMPC(model.Balanced, model.QIdentity, bmax, horizon), predictor.NewHarmonicMean(5), nil
	case "robustmpc":
		return core.NewRobustMPC(model.Balanced, model.QIdentity, bmax, horizon),
			predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5), nil
	case "fastmpc":
		return fastmpc.NewController(model.Balanced, model.QIdentity, bmax, horizon, nil, false, "FastMPC"),
			predictor.NewHarmonicMean(5), nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dashclient: %v\n", err)
	os.Exit(1)
}
