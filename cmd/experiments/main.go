// Command experiments regenerates the paper's evaluation tables and
// figures (Sec 7). Each figure prints its plotted series as aligned text
// rows; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments [-traces N] [-seed S] [-fig 8|9|10|11a|11b|11c|11d|12a|12b|levels] [-table 1] [-overhead] [-all]
//
// With no selection flags, -all is implied.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpcdash/internal/experiments"
)

func main() {
	var (
		traces   = flag.Int("traces", 100, "traces per dataset")
		seed     = flag.Int64("seed", 42, "base workload seed")
		fig      = flag.String("fig", "", "figure to regenerate (7, 8, 9, 10, 11a, 11b, 11c, 11d, 12a, 12b, levels)")
		table    = flag.Int("table", 0, "table to regenerate (1)")
		overhead = flag.Bool("overhead", false, "run the Sec 7.4 overhead microbenchmark")
		all      = flag.Bool("all", false, "run every experiment")
	)
	flag.Parse()

	cfg := experiments.Config{TraceCount: *traces, Seed: *seed, Out: os.Stdout}
	if *fig == "" && *table == 0 && !*overhead {
		*all = true
	}

	type job struct {
		name string
		run  func() error
	}
	wrap := func(f func(experiments.Config) error) func() error {
		return func() error { return f(cfg) }
	}
	jobs := map[string]job{
		"7":   {"Figure 7", wrap(func(c experiments.Config) error { _, err := experiments.Fig7(c); return err })},
		"8":   {"Figure 8", wrap(func(c experiments.Config) error { _, err := experiments.Fig8(c); return err })},
		"9":   {"Figure 9", wrap(func(c experiments.Config) error { _, err := experiments.Fig9(c); return err })},
		"10":  {"Figure 10", wrap(func(c experiments.Config) error { _, err := experiments.Fig10(c); return err })},
		"11a": {"Figure 11a", wrap(func(c experiments.Config) error { _, err := experiments.Fig11a(c); return err })},
		"11b": {"Figure 11b", wrap(func(c experiments.Config) error { _, err := experiments.Fig11b(c); return err })},
		"11c": {"Figure 11c", wrap(func(c experiments.Config) error { _, err := experiments.Fig11c(c); return err })},
		"11d": {"Figure 11d", wrap(func(c experiments.Config) error { _, err := experiments.Fig11d(c); return err })},
		"12a": {"Figure 12a", wrap(func(c experiments.Config) error { _, err := experiments.Fig12a(c); return err })},
		"12b": {"Figure 12b", wrap(func(c experiments.Config) error { _, err := experiments.Fig12b(c); return err })},
		"levels": {"Bitrate levels extension", wrap(func(c experiments.Config) error {
			_, err := experiments.LevelsSweep(c)
			return err
		})},
		"predictors": {"Predictor comparison extension", wrap(func(c experiments.Config) error {
			_, err := experiments.PredictorSweep(c)
			return err
		})},
		"mdp": {"MDP vs MPC extension", wrap(func(c experiments.Config) error {
			_, err := experiments.MDPComparison(c)
			return err
		})},
		"quality": {"Quality-function extension", wrap(func(c experiments.Config) error {
			_, err := experiments.MultiQoESweep(c)
			return err
		})},
		"table1": {"Table 1", wrap(func(c experiments.Config) error { _, err := experiments.Table1(c); return err })},
		"overhead": {"Overhead", wrap(func(c experiments.Config) error {
			_, err := experiments.Overhead(c)
			return err
		})},
	}
	order := []string{"7", "8", "9", "10", "11a", "11b", "11c", "11d", "12a", "12b", "table1", "levels", "predictors", "mdp", "quality", "overhead"}

	var selected []string
	switch {
	case *all:
		selected = order
	default:
		if *fig != "" {
			selected = append(selected, *fig)
		}
		if *table == 1 {
			selected = append(selected, "table1")
		} else if *table != 0 {
			fmt.Fprintf(os.Stderr, "experiments: unknown table %d (the paper has one table)\n", *table)
			os.Exit(2)
		}
		if *overhead {
			selected = append(selected, "overhead")
		}
	}

	for _, key := range selected {
		j, ok := jobs[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", key)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("=== %s (traces=%d seed=%d) ===\n", j.name, *traces, *seed)
		if err := j.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %s ---\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
}
