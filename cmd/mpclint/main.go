// Command mpclint runs the repo's project-specific static analyzers: the
// determinism, float-safety, map-order, stdlib-only, goroutine-leak,
// lock-scope, no-alloc, atomic-discipline and HTTP-contract invariants the
// paper reproduction depends on (DESIGN.md §4e, §4h).
//
// Usage:
//
//	mpclint [-json] [-checks list] [-list] [-alloccheck] [packages...]
//
// Packages default to ./... relative to the enclosing module root. With
// -alloccheck, instead of running the analyzers, the //mpc:noalloc
// annotation inventory is reconciled against `go build -gcflags=-m`
// escape-analysis output (the compiler side of the no-alloc contract;
// `make lint-alloc`). Exit status: 0 clean, 1 findings, 2 usage or load
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpcdash/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	allocCheck := fs.Bool("alloccheck", false, "reconcile //mpc:noalloc annotations against go build -gcflags=-m escape output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.AnalyzersByName(*checks)
	if err != nil {
		// An unknown name must be a loud usage error, never a silent run
		// of zero analyzers.
		fmt.Fprintln(stderr, "mpclint:", err)
		names := make([]string, 0, len(lint.Analyzers()))
		for _, a := range lint.Analyzers() {
			names = append(names, a.Name)
		}
		fmt.Fprintf(stderr, "usage: mpclint [-json] [-checks list] [-list] [-alloccheck] [packages...]\nknown checks: %s\n", strings.Join(names, ", "))
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mpclint:", err)
		return 2
	}
	root, module, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "mpclint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Resolve cwd-relative patterns to absolute so running from a subdir
	// works; Load maps them back to import paths under the module root.
	for i, p := range patterns {
		trimmed := strings.TrimSuffix(p, "/...")
		if !filepath.IsAbs(trimmed) {
			patterns[i] = filepath.Join(cwd, p)
		}
	}

	pkgs, err := lint.Load(lint.LoadConfig{Dir: root, ModulePath: module, Patterns: patterns})
	if err != nil {
		fmt.Fprintln(stderr, "mpclint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for i, terr := range pkg.TypeErrors {
			if i == 3 {
				fmt.Fprintf(stderr, "mpclint: note: %s: further type errors omitted\n", pkg.Path)
				break
			}
			fmt.Fprintf(stderr, "mpclint: note: %s: %v\n", pkg.Path, terr)
		}
	}

	if *allocCheck {
		return runAllocCheck(pkgs, root, patterns, cwd, *jsonOut, stdout, stderr)
	}

	diags := lint.Run(pkgs, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "mpclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runAllocCheck is the -alloccheck mode: collect the //mpc:noalloc
// inventory from the loaded packages, run the same patterns through
// `go build -gcflags=-m`, and report every compiler heap-allocation site
// that lands inside an annotated function.
func runAllocCheck(pkgs []*lint.Package, root string, patterns []string, cwd string, jsonOut bool, stdout, stderr io.Writer) int {
	inventory := lint.NoAllocInventory(pkgs)
	if len(inventory) == 0 {
		fmt.Fprintln(stderr, "mpclint: -alloccheck found no //mpc:noalloc annotations in the loaded packages")
		return 2
	}
	buildPatterns := make([]string, len(patterns))
	for i, p := range patterns {
		rel, err := filepath.Rel(root, p)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			fmt.Fprintf(stderr, "mpclint: pattern %s is outside module root %s\n", p, root)
			return 2
		}
		buildPatterns[i] = "./" + filepath.ToSlash(rel)
	}
	sites, raw, err := lint.BuildEscapes(root, buildPatterns)
	if err != nil {
		fmt.Fprintln(stderr, "mpclint:", err)
		io.WriteString(stderr, raw)
		return 2
	}
	diags := lint.AllocCheck(inventory, sites)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "mpclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) == 0 {
			fmt.Fprintf(stdout, "alloccheck: %d //mpc:noalloc functions, %d compiler escape sites, 0 inside annotated ranges\n", len(inventory), len(sites))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
