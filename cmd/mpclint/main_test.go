package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smokeDir(t *testing.T, parts ...string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join(append([]string{"..", "..", "internal", "lint", "testdata", "smoke"}, parts...)...))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestSmokeCleanTree asserts exit 0 and empty output on a violation-free
// fixture tree.
func TestSmokeCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{smokeDir(t, "clean") + "/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("clean tree: exit %d, stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree: unexpected output %q", out.String())
	}
}

// TestSmokeDirtyTree asserts exit 1 and that the documented -json schema
// names the file, line, and check for each finding.
func TestSmokeDirtyTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", smokeDir(t, "dirty") + "/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("dirty tree: exit %d, stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, out.String())
	}
	checks := map[string]bool{}
	for _, d := range diags {
		if !strings.HasSuffix(d.File, filepath.Join("dirty", "core", "a.go")) || d.Line == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		checks[d.Check] = true
	}
	if !checks["nodeterminism"] || !checks["floateq"] {
		t.Errorf("dirty tree should trip nodeterminism and floateq, got %v", checks)
	}
}

// TestHumanOutput pins the file:line:col: [check] message format.
func TestHumanOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{smokeDir(t, "dirty") + "/..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d", code)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, "a.go:") || !strings.Contains(first, "[") {
		t.Fatalf("unexpected human format: %q", first)
	}
}

// TestListChecks asserts -list names every analyzer.
func TestListChecks(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{
		"nodeterminism", "floateq", "maporder", "stdlibonly", "ctxleak",
		"lockscope", "noalloc", "atomicmix", "httpcontract",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}

// TestListGolden pins the exact -list output — name column plus one-line
// description per check — so the suite roster and its docs cannot drift
// silently. Regenerate with: go run ./cmd/mpclint -list > testdata/list.golden
func TestListGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr=%q", code, errb.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "list.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("-list output drifted from testdata/list.golden:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestChecksFlag asserts an unknown check is a usage error (exit 2) with a
// usage message naming the known checks — never a silent run of zero
// analyzers.
func TestChecksFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check: exit %d", code)
	}
	if !strings.Contains(errb.String(), `unknown check "bogus"`) {
		t.Errorf("stderr should name the unknown check, got %q", errb.String())
	}
	if !strings.Contains(errb.String(), "usage: mpclint") || !strings.Contains(errb.String(), "known checks: nodeterminism") {
		t.Errorf("stderr should carry a usage message listing known checks, got %q", errb.String())
	}
}

// TestChecksFlagEmpty asserts a selector that nets zero analyzers is a
// usage error, not a vacuous clean exit.
func TestChecksFlagEmpty(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", " , ,"}, &out, &errb); code != 2 {
		t.Fatalf("empty selector: exit %d, stderr=%q", code, errb.String())
	}
}

// TestAllocCheckClean runs the -alloccheck mode against the real module:
// the //mpc:noalloc inventory must be non-empty and free of compiler
// escape sites. This is the same reconciliation `make lint-alloc` runs.
func TestAllocCheckClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full go build -gcflags=-m of the module")
	}
	var out, errb bytes.Buffer
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-alloccheck", root + "/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("alloccheck: exit %d\nstdout=%s\nstderr=%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 inside annotated ranges") {
		t.Errorf("expected the clean summary line, got %q", out.String())
	}
}
