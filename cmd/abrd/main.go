// Command abrd runs the ABR decision service: FastMPC as a control plane.
// Players (or the fleet's svc backend) register sessions, then ask for
// each chunk's bitrate over the /v1 JSON API; the server answers at
// table-lookup cost, sharing one decision table across every session with
// an equal configuration. SIGINT/SIGTERM drains gracefully: the listener
// closes, in-flight decisions complete (bounded by -drain), and the trace
// sink is flushed before exit.
//
// Usage:
//
//	abrd [-addr 127.0.0.1:8404] [-max-sessions 65536] [-session-ttl 5m]
//	     [-max-inflight 0] [-queue-depth 0] [-queue-wait 100ms]
//	     [-fairness] [-table-cache DIR] [-trace-out FILE] [-drain 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcdash/internal/abrsvc"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8404", "listen address")
		maxSessions = flag.Int("max-sessions", 0, "max resident sessions (0 = default 65536)")
		sessionTTL  = flag.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = default 5m)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing decide requests (0 = 4×GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 0, "decide queue depth before immediate shedding (0 = 8×max-inflight)")
		queueWait   = flag.Duration("queue-wait", 0, "max time a decide request may queue before shedding (0 = default 100ms)")
		fairness    = flag.Bool("fairness", false, "enable link-group fair-share throughput capping")
		tableCache  = flag.String("table-cache", "", "directory for the persistent FastMPC table cache (empty = memory only)")
		traceOut    = flag.String("trace-out", "", "write per-decision Chrome trace events to this file (empty = disabled)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	)
	flag.Parse()

	if *tableCache != "" {
		fastmpc.SetTableCacheDir(*tableCache)
	}

	var sink obs.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = obs.NewChromeTrace(f)
	}

	reg := obs.NewRegistry()
	obs.PublishExpvar("mpcdash_abrsvc", reg)
	svc := abrsvc.New(abrsvc.Config{
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		MaxInFlight: *maxInflight,
		QueueDepth:  *queueDepth,
		QueueWait:   *queueWait,
		Fairness:    *fairness,
		Registry:    reg,
		Sink:        sink,
	})
	srv, err := svc.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("abrd: decision API at %s/v1, metrics at %s/metrics\n", srv.URL(), srv.URL())
	if *fairness {
		fmt.Println("abrd: link-group fairness enabled")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("abrd: %v received, draining (deadline %s)\n", s, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Println("abrd: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "abrd: %v\n", err)
	os.Exit(1)
}
