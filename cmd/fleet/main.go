// Command fleet drives large populations of simulated or emulated player
// sessions from a scenario file and streams their outcomes into compact
// per-population aggregates.
//
// Usage:
//
//	fleet [-scenario scenario.json | -sessions N] [-backend sim|emu|svc]
//	      [-svc-url http://host:8404] [-max-inflight N]
//	      [-seed N] [-workers N] [-report out.json]
//	      [-metrics-addr 127.0.0.1:9090] [-print-scenario]
//
// Without -scenario a built-in two-population demo scenario sized by
// -sessions is used; -print-scenario writes that scenario as JSON to
// stdout (a starting point for custom files) and exits. SIGINT drains
// gracefully: launching stops, in-flight sessions finish and are
// aggregated, and the partial report is still printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mpcdash/internal/fastmpc"
	"mpcdash/internal/fleet"
	"mpcdash/internal/obs"
)

func main() {
	var (
		scenarioFile  = flag.String("scenario", "", "scenario JSON file (empty = built-in demo scenario)")
		sessions      = flag.Int("sessions", 10000, "total sessions for the built-in scenario (ignored with -scenario)")
		backend       = flag.String("backend", fleet.BackendSim, "session backend: sim (scales to 100k), emu (real loopback HTTP) or svc (decisions from a live abrd decision service)")
		svcURL        = flag.String("svc-url", "", "svc backend: external abrd base URL (empty = self-host one on 127.0.0.1:0 for the run)")
		maxInflight   = flag.Int("max-inflight", 0, "override the scenario's max concurrently playing sessions (0 = keep the scenario's value)")
		seed          = flag.Int64("seed", 0, "override the scenario seed (0 = keep the file's seed)")
		workers       = flag.Int("workers", 0, "worker goroutines per population (0 = auto)")
		emuTimeScale  = flag.Float64("emu-timescale", 0, "wall-clock compression for the emu backend (0 = default)")
		tableCache    = flag.String("table-cache", "", "directory for the content-addressed FastMPC table cache; warm runs skip the table build (empty = disabled)")
		reportOut     = flag.String("report", "", "write the JSON report to this file")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (empty = disabled)")
		printScenario = flag.Bool("print-scenario", false, "print the effective scenario as JSON and exit")
	)
	flag.Parse()

	sc := fleet.DefaultScenario(*sessions)
	if *backend == fleet.BackendSvc {
		// The built-in demo has a buffer-based population the decision
		// service cannot serve; the svc demo is all table-lookup MPC.
		sc = fleet.SvcDemoScenario(*sessions)
	}
	if *scenarioFile != "" {
		var err error
		sc, err = fleet.LoadScenario(*scenarioFile)
		if err != nil {
			fatal(err)
		}
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *maxInflight > 0 {
		sc.MaxInFlight = *maxInflight
	}
	if *printScenario {
		if err := sc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	opt := fleet.Options{
		Backend:       *backend,
		Workers:       *workers,
		EmuTimeScale:  *emuTimeScale,
		TableCacheDir: *tableCache,
		SvcURL:        *svcURL,
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.PublishExpvar("fleet", reg)
		dbg, err := obs.ServeDebug(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics at http://%s/metrics, profiles at http://%s/debug/pprof/\n", dbg, dbg)
		opt.Registry = reg
	}

	f, err := fleet.New(sc, opt)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var total int
	for _, p := range sc.Populations {
		total += p.Sessions
	}
	fmt.Printf("scenario %q: %d sessions in %d populations on the %s backend (seed %d)\n",
		sc.Name, total, len(sc.Populations), *backend, sc.Seed)

	start := time.Now()
	rep, runErr := f.Run(ctx)
	elapsed := time.Since(start)
	if runErr == context.Canceled {
		fmt.Println("interrupted: drained in-flight sessions, reporting the partial run")
	} else if runErr != nil {
		fatal(runErr)
	}

	fmt.Println()
	if err := rep.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	var completed int64
	for _, p := range rep.Populations {
		completed += p.Completed
	}
	fmt.Printf("\n%d sessions in %.2f s (%.0f sessions/s)\n",
		completed, elapsed.Seconds(), float64(completed)/elapsed.Seconds())
	if st := fastmpc.TableCacheStats(); st.Builds+st.DiskHits+st.MemoryHits > 0 {
		fmt.Printf("fastmpc tables: %d built, %d loaded from %s, %d shared in-process\n",
			st.Builds, st.DiskHits, cacheName(*tableCache), st.MemoryHits)
	}

	if *reportOut != "" {
		b, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportOut, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportOut)
	}
	if runErr != nil {
		os.Exit(130)
	}
}

func cacheName(dir string) string {
	if dir == "" {
		return "disk (disabled)"
	}
	return dir
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
	os.Exit(1)
}
