// Command mpcdash plays one video session over a throughput trace with a
// chosen adaptation algorithm and prints the per-chunk log and QoE summary.
//
// Usage:
//
//	mpcdash [-alg RobustMPC] [-dataset fcc|hsdpa|synthetic] [-seed N]
//	        [-trace file.txt] [-chunks N] [-verbose]
//	        [-trace-out session.trace.json] [-metrics-addr 127.0.0.1:9090]
//
// The trace comes either from -trace (text format: "duration kbps" per
// line) or from a synthetic dataset generator selected by -dataset/-seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpcdash"
	"mpcdash/internal/obs"
	"mpcdash/internal/trace"
	"mpcdash/internal/viz"
)

func main() {
	var (
		algName     = flag.String("alg", "RobustMPC", "algorithm: RB, BB, FESTIVE, dash.js, MPC, RobustMPC, FastMPC, MPC-OPT")
		dataset     = flag.String("dataset", "fcc", "synthetic dataset when no -trace: fcc, hsdpa, synthetic")
		seed        = flag.Int64("seed", 1, "trace generator seed")
		file        = flag.String("trace", "", "trace file (text format) instead of a generated trace")
		chunks      = flag.Int("chunks", 65, "video length in 4-second chunks")
		verbose     = flag.Bool("verbose", false, "print the per-chunk log")
		jsonOut     = flag.String("json", "", "write the full session log as JSON to this file")
		csvOut      = flag.String("csv", "", "write the per-chunk log as CSV to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of the session to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (empty = disabled)")
	)
	flag.Parse()

	video, err := mpcdash.NewVideo([]float64{350, 600, 1000, 2000, 3000}, *chunks, 4)
	if err != nil {
		fatal(err)
	}

	var alg mpcdash.Algorithm
	found := false
	for _, a := range mpcdash.Algorithms() {
		if strings.EqualFold(a.String(), *algName) {
			alg, found = a, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown algorithm %q", *algName))
	}

	tr, err := loadTrace(*file, *dataset, *seed, video.Duration())
	if err != nil {
		fatal(err)
	}

	cfg := mpcdash.DefaultConfig()
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.PublishExpvar("mpcdash", reg)
		dbg, err := obs.ServeDebug(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics at http://%s/metrics, profiles at http://%s/debug/pprof/\n", dbg, dbg)
		cfg.Obs = obs.NewRecorder(reg, nil)
	}

	res, err := mpcdash.Run(video, tr, alg, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm     %s\n", res.Algorithm)
	fmt.Printf("trace         %s (mean %.0f kbps, stddev %.0f kbps)\n", tr.Name(), tr.Mean(), tr.Stddev())
	fmt.Printf("QoE           %.0f\n", res.QoE)
	fmt.Printf("normalized    %.3f\n", res.NormQoE)
	fmt.Printf("avg bitrate   %.0f kbps\n", res.Metrics.AvgBitrate)
	fmt.Printf("avg change    %.0f kbps/chunk (%d switches)\n", res.Metrics.AvgBitrateChange, res.Metrics.Switches)
	fmt.Printf("rebuffer      %.2f s in %d events\n", res.Metrics.RebufferTime, res.Metrics.RebufferEvents)
	fmt.Printf("startup       %.2f s\n", res.Metrics.StartupDelay)
	fmt.Printf("pred error    %.1f%%\n", res.PredError*100)

	series := func(f func(mpcdash.ChunkStat) float64) []float64 {
		out := make([]float64, len(res.Chunks))
		for i, c := range res.Chunks {
			out[i] = f(c)
		}
		return out
	}
	fmt.Printf("bitrate       %s\n", viz.Sparkline(series(func(c mpcdash.ChunkStat) float64 { return c.Bitrate })))
	fmt.Printf("buffer        %s\n", viz.Sparkline(series(func(c mpcdash.ChunkStat) float64 { return c.Buffer })))
	fmt.Printf("throughput    %s\n", viz.Sparkline(series(func(c mpcdash.ChunkStat) float64 { return c.Throughput })))

	if *verbose {
		fmt.Printf("\n%5s %9s %8s %9s %9s %9s\n", "chunk", "bitrate", "dl(s)", "thpt", "buf(s)", "rebuf(s)")
		for _, c := range res.Chunks {
			fmt.Printf("%5d %9.0f %8.2f %9.0f %9.2f %9.2f\n",
				c.Index, c.Bitrate, c.DownloadTime, c.Throughput, c.Buffer, c.Rebuffer)
		}
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, res.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("session JSON written to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, res.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("per-chunk CSV written to %s\n", *csvOut)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, res.WriteTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s — open in chrome://tracing or https://ui.perfetto.dev\n", *traceOut)
	}
}

// writeFile streams an export method into a freshly created file.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadTrace reads the trace file or generates one.
func loadTrace(file, dataset string, seed int64, videoDur float64) (*mpcdash.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		raw, err := trace.Read(f, file)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, len(raw.Samples))
		// Preserve sample durations exactly when uniform; otherwise expose
		// through the generic constructor sample by sample.
		uniform := true
		for i, s := range raw.Samples {
			rates[i] = s.Kbps
			if s.Duration != raw.Samples[0].Duration { //lint:allow floateq parsed durations compared verbatim, not arithmetic results
				uniform = false
			}
		}
		if !uniform {
			return nil, fmt.Errorf("trace %s: non-uniform sample durations are not supported by the CLI", file)
		}
		return mpcdash.NewTrace(file, raw.Samples[0].Duration, rates)
	}
	var kind mpcdash.Dataset
	switch strings.ToLower(dataset) {
	case "fcc":
		kind = mpcdash.DatasetFCC
	case "hsdpa":
		kind = mpcdash.DatasetHSDPA
	case "synthetic":
		kind = mpcdash.DatasetSynthetic
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	traces := mpcdash.GenerateDataset(kind, 1, videoDur+120, seed)
	return traces[0], nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpcdash: %v\n", err)
	os.Exit(1)
}
