// Command tracegen synthesizes throughput-trace datasets in the text format
// (one "duration kbps" sample per line) and prints their statistics, or
// inspects an existing trace file.
//
// Usage:
//
//	tracegen -dataset hsdpa -count 10 -duration 380 -out traces/   # generate
//	tracegen -inspect traces/hsdpa-3.txt                           # inspect
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

func main() {
	var (
		dataset  = flag.String("dataset", "fcc", "fcc, hsdpa or synthetic")
		count    = flag.Int("count", 10, "number of traces")
		duration = flag.Float64("duration", 380, "trace duration in seconds")
		seed     = flag.Int64("seed", 42, "base seed")
		out      = flag.String("out", "", "output directory (default: print stats only)")
		inspect  = flag.String("inspect", "", "inspect an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectFile(*inspect); err != nil {
			fatal(err)
		}
		return
	}

	var kind trace.DatasetKind
	switch strings.ToLower(*dataset) {
	case "fcc":
		kind = trace.FCC
	case "hsdpa":
		kind = trace.HSDPA
	case "synthetic":
		kind = trace.Synthetic
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	traces := trace.Dataset(kind, *count, *duration, *seed)
	var means, stds []float64
	for _, tr := range traces {
		means = append(means, tr.Mean())
		stds = append(stds, tr.Stddev())
		if *out != "" {
			if err := writeTrace(*out, tr); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("%s dataset: %d traces × %.0fs\n", kind, len(traces), *duration)
	fmt.Printf("  mean throughput: %s\n", stats.Summarize(means))
	fmt.Printf("  stddev:          %s\n", stats.Summarize(stds))
	if *out != "" {
		fmt.Printf("  written to %s/\n", *out)
	}
}

func writeTrace(dir string, tr *trace.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tr.Name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Write(f, tr)
}

func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f, filepath.Base(path))
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n", tr.Name)
	fmt.Printf("  samples:   %d\n", len(tr.Samples))
	fmt.Printf("  duration:  %.1f s\n", tr.Duration())
	fmt.Printf("  mean:      %.0f kbps\n", tr.Mean())
	fmt.Printf("  stddev:    %.0f kbps\n", tr.Stddev())
	fmt.Printf("  min/max:   %.0f / %.0f kbps\n", tr.MinRate(), tr.MaxRate())
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
