package mpcdash_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"mpcdash"
	"mpcdash/internal/obs"
)

func TestPublicAPIRun(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	if video.Duration() != 260 || video.ChunkCount() != 65 {
		t.Fatalf("Envivio video: %v s, %d chunks", video.Duration(), video.ChunkCount())
	}
	if got := video.Ladder(); len(got) != 5 || got[0] != 350 || got[4] != 3000 {
		t.Fatalf("ladder = %v", got)
	}

	traces := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 2, video.Duration()+120, 3)
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	res, err := mpcdash.Run(video, traces[0], mpcdash.RobustMPC, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RobustMPC" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
	if len(res.Chunks) != 65 {
		t.Errorf("chunks = %d", len(res.Chunks))
	}
	if math.IsNaN(res.QoE) || math.IsNaN(res.NormQoE) {
		t.Errorf("QoE %v / NormQoE %v", res.QoE, res.NormQoE)
	}
	if res.NormQoE > 1.05 || res.NormQoE < -2 {
		t.Errorf("NormQoE %v out of plausible range", res.NormQoE)
	}
	if res.Metrics.AvgBitrate < 350 || res.Metrics.AvgBitrate > 3000 {
		t.Errorf("AvgBitrate %v outside ladder", res.Metrics.AvgBitrate)
	}
}

func TestPublicAPIEveryAlgorithm(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	tr := mpcdash.GenerateDataset(mpcdash.DatasetSynthetic, 1, video.Duration()+120, 5)[0]
	for _, a := range mpcdash.Algorithms() {
		res, err := mpcdash.Run(video, tr, a, mpcdash.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Algorithm != a.String() {
			t.Errorf("%s reported as %q", a, res.Algorithm)
		}
	}
}

func TestPublicAPICompare(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	traces := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 3, video.Duration()+120, 9)
	results, err := mpcdash.Compare(video, traces,
		[]mpcdash.Algorithm{mpcdash.BB, mpcdash.RobustMPC}, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("algorithms = %d", len(results))
	}
	for name, list := range results {
		if len(list) != 3 {
			t.Errorf("%s: %d results", name, len(list))
		}
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := mpcdash.NewVideo(nil, 10, 4); err == nil {
		t.Error("empty ladder should fail")
	}
	if _, err := mpcdash.NewVideo([]float64{100, 200}, 0, 4); err == nil {
		t.Error("zero chunks should fail")
	}
	video := mpcdash.EnvivioVideo()
	tr := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, 400, 1)[0]
	bad := mpcdash.DefaultConfig()
	bad.BufferMax = 0
	if _, err := mpcdash.Run(video, tr, mpcdash.BB, bad); err == nil {
		t.Error("zero BufferMax should fail")
	}
	bad = mpcdash.DefaultConfig()
	bad.Horizon = 0
	if _, err := mpcdash.Run(video, tr, mpcdash.BB, bad); err == nil {
		t.Error("zero Horizon should fail")
	}
	if _, err := mpcdash.Run(video, tr, mpcdash.Algorithm(99), mpcdash.DefaultConfig()); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestPublicAPIOfflineOptimal(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	tr := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, video.Duration()+120, 17)[0]
	opt, err := mpcdash.OfflineOptimal(video, tr, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpcdash.Run(video, tr, mpcdash.RB, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.QoE > opt+math.Abs(opt)*0.02+3000 {
		t.Errorf("online QoE %v exceeds offline optimum %v", res.QoE, opt)
	}
}

func TestPublicAPIVBRVideo(t *testing.T) {
	video, err := mpcdash.NewVBRVideo([]float64{350, 600, 1000, 2000, 3000}, 30, 4, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, video.Duration()+120, 2)[0]
	res, err := mpcdash.Run(video, tr, mpcdash.RobustMPC, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 30 {
		t.Errorf("chunks = %d", len(res.Chunks))
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[mpcdash.Algorithm]string{
		mpcdash.RB:        "RB",
		mpcdash.BB:        "BB",
		mpcdash.FESTIVE:   "FESTIVE",
		mpcdash.DashJS:    "dash.js",
		mpcdash.MPC:       "MPC",
		mpcdash.RobustMPC: "RobustMPC",
		mpcdash.FastMPC:   "FastMPC",
		mpcdash.MPCOpt:    "MPC-OPT",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if got := mpcdash.Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("unknown algorithm string = %q", got)
	}
}

func TestTraceAccessors(t *testing.T) {
	tr, err := mpcdash.NewTrace("t", 5, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "t" || tr.Mean() != 200 || tr.Stddev() != 100 {
		t.Errorf("accessors: %q %v %v", tr.Name(), tr.Mean(), tr.Stddev())
	}
	if _, err := mpcdash.NewTrace("bad", 0, []float64{1}); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestPublicAPIOptimalPlan(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	tr := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, video.Duration()+120, 23)[0]
	ts, rates, qoe, err := mpcdash.OptimalPlan(video, tr, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != video.ChunkCount() {
		t.Fatalf("plan rates = %d, want %d", len(rates), video.ChunkCount())
	}
	if ts < 0 || math.IsNaN(qoe) {
		t.Errorf("ts=%v qoe=%v", ts, qoe)
	}
	opt, err := mpcdash.OfflineOptimal(video, tr, mpcdash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-qoe) > 1e-6 {
		t.Errorf("plan qoe %v != optimal %v", qoe, opt)
	}
}

func TestPublicAPIObservability(t *testing.T) {
	video := mpcdash.EnvivioVideo()
	tr := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, video.Duration()+120, 11)[0]

	cfg := mpcdash.DefaultConfig()
	reg := obs.NewRegistry()
	cfg.Obs = obs.NewRecorder(reg, nil)
	res, err := mpcdash.Run(video, tr, mpcdash.RobustMPC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MetricChunksTotal, "").Value(); got != uint64(len(res.Chunks)) {
		t.Errorf("%s = %d, want %d", obs.MetricChunksTotal, got, len(res.Chunks))
	}
	if got := reg.Histogram(obs.MetricDecisionSeconds, "", obs.DefTimeBuckets).Count(); got != uint64(len(res.Chunks)) {
		t.Errorf("decision histogram count = %d, want %d", got, len(res.Chunks))
	}

	// The offline trace export must produce a valid trace-event document
	// with one download span per chunk.
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteTrace output is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Tid == 3 { // network track
			spans++
		}
	}
	if spans != len(res.Chunks) {
		t.Errorf("download spans = %d, want %d", spans, len(res.Chunks))
	}
}
