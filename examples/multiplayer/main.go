// Multiplayer: the Sec 8 discussion made concrete — three adaptive players
// share one bottleneck link. Compare how RB, FESTIVE and RobustMPC behave
// when they compete: fairness (Jain index), link utilization, stability,
// and per-player QoE.
//
//	go run ./examples/multiplayer
package main

import (
	"fmt"
	"log"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
	"mpcdash/internal/multiplayer"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

func main() {
	manifest, err := model.NewCBRManifest(model.EnvivioLadder(), 30, 4)
	if err != nil {
		log.Fatal(err)
	}
	// A 6 Mbps bottleneck: enough for three 2000 kbps streams, not enough
	// for three 3000 kbps ones — the contention regime.
	link, err := trace.FromRates("bottleneck", 1000, []float64{6000})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		mk   func(i int) multiplayer.Player
	}{
		{"3 × RB", func(i int) multiplayer.Player {
			return multiplayer.Player{
				Name:       fmt.Sprintf("rb-%d", i),
				Controller: abr.NewRB(1)(manifest),
				Predictor:  predictor.NewHarmonicMean(5),
			}
		}},
		{"3 × FESTIVE", func(i int) multiplayer.Player {
			return multiplayer.Player{
				Name:       fmt.Sprintf("festive-%d", i),
				Controller: abr.NewFESTIVE(12, 1, 5)(manifest),
				Predictor:  predictor.NewHarmonicMean(5),
			}
		}},
		{"3 × RobustMPC", func(i int) multiplayer.Player {
			return multiplayer.Player{
				Name:       fmt.Sprintf("mpc-%d", i),
				Controller: core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)(manifest),
				Predictor:  predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5),
			}
		}},
	}

	fmt.Printf("%-14s %8s %8s %12s %10s %12s\n", "players", "jain", "util", "instability", "avg kbps", "avg QoE")
	for _, cfgCase := range configs {
		players := make([]multiplayer.Player, 3)
		for i := range players {
			players[i] = cfgCase.mk(i)
			players[i].StartOffset = float64(i) * 5 // staggered joins
		}
		res, err := multiplayer.Run(manifest, link, players, multiplayer.Config{BufferMax: 30, Horizon: 5})
		if err != nil {
			log.Fatal(err)
		}
		var avgBitrate, avgQoE float64
		for _, s := range res.Sessions {
			avgBitrate += s.ComputeMetrics(model.QIdentity).AvgBitrate / float64(len(res.Sessions))
			avgQoE += s.QoE(model.Balanced, model.QIdentity) / float64(len(res.Sessions))
		}
		fmt.Printf("%-14s %8.3f %8.3f %12.3f %10.0f %12.0f\n",
			cfgCase.name, res.JainIndex, res.Utilization, res.Instability, avgBitrate, avgQoE)
	}
}
