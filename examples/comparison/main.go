// Comparison: the Fig 8 experiment in miniature — run all six algorithms
// of the paper's evaluation over a mobile (HSDPA-like) dataset and print
// median normalized QoE with the per-factor breakdown.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"sort"

	"mpcdash"
)

func main() {
	video := mpcdash.EnvivioVideo()
	const n = 20
	traces := mpcdash.GenerateDataset(mpcdash.DatasetHSDPA, n, video.Duration()+120, 21)
	fmt.Printf("comparing 6 algorithms over %d HSDPA-like traces...\n\n", n)

	algs := []mpcdash.Algorithm{
		mpcdash.RB, mpcdash.BB, mpcdash.FESTIVE,
		mpcdash.DashJS, mpcdash.FastMPC, mpcdash.RobustMPC,
	}
	results, err := mpcdash.Compare(video, traces, algs, mpcdash.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name                       string
		nqoe, bitrate, change, reb float64
	}
	var rows []row
	for name, list := range results {
		var r row
		r.name = name
		nq := make([]float64, len(list))
		for i, res := range list {
			nq[i] = res.NormQoE
			r.bitrate += res.Metrics.AvgBitrate / float64(len(list))
			r.change += res.Metrics.AvgBitrateChange / float64(len(list))
			r.reb += res.Metrics.RebufferTime / float64(len(list))
		}
		sort.Float64s(nq)
		r.nqoe = nq[len(nq)/2]
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].nqoe > rows[j].nqoe })

	fmt.Printf("%-10s %8s %12s %14s %12s\n", "algorithm", "n-QoE", "avg kbps", "change/chunk", "rebuffer(s)")
	for _, r := range rows {
		fmt.Printf("%-10s %8.3f %12.0f %14.0f %12.2f\n", r.name, r.nqoe, r.bitrate, r.change, r.reb)
	}
}
