// Emulation: the real-network half of the evaluation — start the shaped
// HTTP chunk server on loopback, then play the video through real GETs with
// a RobustMPC-driven DASH client, time-compressed 20× so the 80-second
// session finishes in about 4 seconds of wall time.
//
//	go run ./examples/emulation [-trace-out session.trace.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpcdash/internal/core"
	"mpcdash/internal/emu"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

func main() {
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the session to this file")
	flag.Parse()

	const timeScale = 20 // media seconds per wall second

	// A 20-chunk (80 s) video keeps the demo short.
	manifest, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		log.Fatal(err)
	}
	link := trace.GenHSDPA(3, manifest.Duration()+60)
	fmt.Printf("link: %s, mean %.0f kbps, stddev %.0f kbps\n", link.Name, link.Mean(), link.Stddev())

	srv := emu.NewServer(manifest)
	base, err := srv.Start(emu.NewShaper(link.Scale(timeScale, timeScale)))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("chunk server: %s/manifest.mpd\n\n", base)

	client := &emu.Client{
		BaseURL:    base,
		Controller: core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)(manifest),
		Predictor:  predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5),
		BufferMax:  30,
		Horizon:    5,
		TimeScale:  timeScale,
		Retries:    emu.RetriesDefault,
	}
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		client.Obs = obs.NewRecorder(nil, obs.NewChromeTrace(traceFile))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	res, err := client.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if traceFile != nil {
		if err := client.Obs.Close(); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s — open in chrome://tracing or https://ui.perfetto.dev\n", *traceOut)
	}
	fmt.Printf("played %d chunks (%.0f media-seconds) in %.1f wall-seconds\n\n",
		len(res.Chunks), manifest.Duration(), time.Since(start).Seconds())

	metrics := res.ComputeMetrics(model.QIdentity)
	fmt.Printf("QoE          %.0f\n", res.QoE(model.Balanced, model.QIdentity))
	fmt.Printf("avg bitrate  %.0f kbps\n", metrics.AvgBitrate)
	fmt.Printf("switches     %d\n", metrics.Switches)
	fmt.Printf("rebuffering  %.2f media-s\n", metrics.RebufferTime)
	fmt.Printf("startup      %.2f media-s\n", res.StartupDelay)
	fmt.Printf("transport    %d retries, %d range resumes, %d lowest-level fallbacks\n",
		metrics.Retries, metrics.Resumes, metrics.Fallbacks)

	fmt.Println("\nper-chunk log (media time):")
	for _, c := range res.Chunks {
		fmt.Printf("  chunk %2d: %4.0f kbps in %5.2f s at %4.0f kbps, buffer %5.1f s, rebuf %4.2f s\n",
			c.Index, c.Bitrate, c.DownloadTime, c.Throughput, c.BufferBefore, c.Rebuffer)
	}
}
