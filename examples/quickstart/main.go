// Quickstart: stream the paper's 260-second test video over one synthetic
// broadband trace with RobustMPC and print the QoE breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpcdash"
)

func main() {
	video := mpcdash.EnvivioVideo()

	// One broadband-like trace, long enough to cover a slow session.
	traces := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 1, video.Duration()+120, 7)
	tr := traces[0]
	fmt.Printf("trace %s: mean %.0f kbps, stddev %.0f kbps\n", tr.Name(), tr.Mean(), tr.Stddev())

	res, err := mpcdash.Run(video, tr, mpcdash.RobustMPC, mpcdash.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s session:\n", res.Algorithm)
	fmt.Printf("  QoE            %.0f (%.1f%% of offline optimal)\n", res.QoE, res.NormQoE*100)
	fmt.Printf("  avg bitrate    %.0f kbps\n", res.Metrics.AvgBitrate)
	fmt.Printf("  switches       %d (avg change %.0f kbps/chunk)\n", res.Metrics.Switches, res.Metrics.AvgBitrateChange)
	fmt.Printf("  rebuffering    %.2f s in %d events\n", res.Metrics.RebufferTime, res.Metrics.RebufferEvents)
	fmt.Printf("  startup delay  %.2f s\n", res.Metrics.StartupDelay)

	fmt.Println("\nfirst chunks:")
	for _, c := range res.Chunks[:8] {
		fmt.Printf("  chunk %2d: %4.0f kbps, downloaded in %.2f s at %4.0f kbps, buffer %.1f s\n",
			c.Index, c.Bitrate, c.DownloadTime, c.Throughput, c.Buffer)
	}
}
