// FastMPC table walkthrough: build the offline decision table of Sec 5,
// inspect its structure and compression, and compare its lookups against
// the exact MPC optimizer it approximates.
//
//	go run ./examples/fastmpc
package main

import (
	"fmt"
	"log"
	"time"

	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
)

func main() {
	manifest := model.EnvivioManifest()
	opt, err := core.NewOptimizer(manifest, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Offline enumeration: 100 buffer bins × 5 previous bitrates × 100
	// throughput bins, each solved exactly (the "CPLEX farm" of Fig 5).
	spec := fastmpc.DefaultBins(30, manifest.Ladder.Max())
	start := time.Now()
	table, err := fastmpc.Build(opt, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumerated %d states in %s\n", len(table.Entries), time.Since(start).Round(time.Millisecond))

	compressed := fastmpc.Compress(table)
	fmt.Printf("full table:  %6.1f kB (paper's 2 B/entry accounting: %.1f kB)\n",
		float64(len(table.Serialize()))/1000, float64(table.FullSizeBytes(2))/1000)
	fmt.Printf("RLE table:   %6.1f kB in %d runs (ratio %.2f)\n\n",
		float64(compressed.SizeBytes())/1000, compressed.Runs(),
		float64(compressed.SizeBytes())/float64(table.FullSizeBytes(2)))

	// A slice of the decision surface: what does FastMPC pick at a given
	// previous bitrate as buffer and predicted throughput vary?
	fmt.Println("decision surface at prev = 1000 kbps (rows: buffer s, cols: predicted kbps):")
	rates := []float64{300, 600, 1200, 2400, 4800}
	fmt.Printf("%8s", "")
	for _, r := range rates {
		fmt.Printf(" %6.0f", r)
	}
	fmt.Println()
	for _, buf := range []float64{2, 6, 10, 18, 28} {
		fmt.Printf("%7.0fs", buf)
		for _, r := range rates {
			lvl := compressed.Lookup(buf, 2, r)
			fmt.Printf(" %6.0f", manifest.Ladder[lvl])
		}
		fmt.Println()
	}

	// The compressed lookup must agree with the exact optimizer on the
	// bins' representative states.
	mismatches := 0
	total := 0
	for bBin := 0; bBin < spec.BufferBins; bBin += 7 {
		for rBin := 0; rBin < spec.RateBins; rBin += 7 {
			buffer, rate := spec.BufferValue(bBin), spec.RateValue(rBin)
			want, _, _ := opt.Plan(0, buffer, 2, []float64{rate}, false)
			if compressed.Lookup(buffer, 2, rate) != want {
				mismatches++
			}
			total++
		}
	}
	fmt.Printf("\nspot check vs exact optimizer: %d/%d lookups agree\n", total-mismatches, total)
}
