// Package mpcdash is a complete Go implementation of "A Control-Theoretic
// Approach for Dynamic Adaptive Video Streaming over HTTP" (Yin, Jindal,
// Sekar, Sinopoli — SIGCOMM 2015): the MPC / RobustMPC / FastMPC bitrate
// controllers, the rate-based, buffer-based, FESTIVE and dash.js baselines,
// a trace-driven playback simulator, a shaped-HTTP emulation testbed, the
// offline-optimal QoE normalizer, and the workload generators used by the
// paper's evaluation.
//
// The root package is the stable facade: construct a Video and a Trace,
// pick an Algorithm, and Run a session — or generate whole Datasets and
// Compare algorithms across them. The building blocks live in internal/
// packages and are re-wired here; see DESIGN.md for the map.
//
//	video := mpcdash.EnvivioVideo()
//	traces := mpcdash.GenerateDataset(mpcdash.DatasetFCC, 100, video.Duration()+60, 42)
//	res, err := mpcdash.Run(video, traces[0], mpcdash.RobustMPC, mpcdash.DefaultConfig())
//	fmt.Println(res.QoE, res.Metrics.RebufferTime)
package mpcdash

import (
	"fmt"
	"io"

	"mpcdash/internal/export"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/optimal"
	"mpcdash/internal/runner"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// Video describes the content being streamed: the bitrate ladder and the
// chunking. The zero value is not usable; construct via NewVideo,
// NewVBRVideo or EnvivioVideo.
type Video struct {
	manifest *model.Manifest
}

// NewVideo builds a constant-bitrate video with the given ladder (kbps,
// strictly ascending), chunk count and chunk duration in seconds.
func NewVideo(ladderKbps []float64, chunks int, chunkDur float64) (*Video, error) {
	m, err := model.NewCBRManifest(model.Ladder(ladderKbps), chunks, chunkDur)
	if err != nil {
		return nil, err
	}
	return &Video{manifest: m}, nil
}

// NewVBRVideo builds a variable-bitrate video whose chunk sizes fluctuate
// log-normally with the given coefficient of variation, deterministic in
// the seed.
func NewVBRVideo(ladderKbps []float64, chunks int, chunkDur, cv float64, seed int64) (*Video, error) {
	m, err := model.NewVBRManifest(model.Ladder(ladderKbps), chunks, chunkDur, cv, seed)
	if err != nil {
		return nil, err
	}
	return &Video{manifest: m}, nil
}

// EnvivioVideo is the paper's 260-second test video: 65 chunks × 4 s at
// {350, 600, 1000, 2000, 3000} kbps.
func EnvivioVideo() *Video {
	return &Video{manifest: model.EnvivioManifest()}
}

// Duration returns the video's play time in seconds.
func (v *Video) Duration() float64 { return v.manifest.Duration() }

// Ladder returns the bitrate levels in kbps.
func (v *Video) Ladder() []float64 {
	return append([]float64(nil), v.manifest.Ladder...)
}

// ChunkCount returns the number of segments.
func (v *Video) ChunkCount() int { return v.manifest.ChunkCount }

// Trace is a network-throughput trajectory the player streams over.
type Trace struct {
	tr *trace.Trace
}

// NewTrace builds a trace from uniform samples: each rate in kbps holds for
// interval seconds; past the end the trace repeats.
func NewTrace(name string, interval float64, kbps []float64) (*Trace, error) {
	tr, err := trace.FromRates(name, interval, kbps)
	if err != nil {
		return nil, err
	}
	return &Trace{tr: tr}, nil
}

// Name returns the trace's identifier.
func (t *Trace) Name() string { return t.tr.Name }

// Mean returns the average throughput in kbps.
func (t *Trace) Mean() float64 { return t.tr.Mean() }

// Stddev returns the throughput standard deviation in kbps.
func (t *Trace) Stddev() float64 { return t.tr.Stddev() }

// Dataset identifies one of the paper's three trace populations.
type Dataset int

// The three evaluation datasets of Sec 7.1.1.
const (
	DatasetFCC       Dataset = iota // broadband-like, 5 s samples, most stable
	DatasetHSDPA                    // 3G-mobile-like, 1 s samples, most variable
	DatasetSynthetic                // hidden-Markov bottleneck-sharing model
)

// GenerateDataset deterministically synthesizes count traces of at least
// the given duration (seconds). See internal/trace for the generator
// models and DESIGN.md for how they substitute the measured datasets.
func GenerateDataset(kind Dataset, count int, duration float64, seed int64) []*Trace {
	var k trace.DatasetKind
	switch kind {
	case DatasetFCC:
		k = trace.FCC
	case DatasetHSDPA:
		k = trace.HSDPA
	case DatasetSynthetic:
		k = trace.Synthetic
	default:
		return nil
	}
	raw := trace.Dataset(k, count, duration, seed)
	out := make([]*Trace, len(raw))
	for i, tr := range raw {
		out[i] = &Trace{tr: tr}
	}
	return out
}

// Weights are the QoE preference parameters of Eq. (5): λ weighs quality
// variation, µ rebuffer seconds, µs startup seconds (all in kbps-equivalent
// units).
type Weights struct {
	Lambda float64
	Mu     float64
	MuS    float64
}

// The preference sets evaluated in the paper (Fig 11b).
var (
	BalancedWeights         = Weights{1, 3000, 3000}
	AvoidInstabilityWeights = Weights{3, 3000, 3000}
	AvoidRebufferingWeights = Weights{1, 6000, 6000}
)

func (w Weights) internal() model.Weights {
	return model.Weights{Lambda: w.Lambda, Mu: w.Mu, MuS: w.MuS}
}

// Config parameterizes a playback session.
type Config struct {
	BufferMax float64 // playout buffer cap in seconds (paper: 30)
	Horizon   int     // MPC look-ahead in chunks (paper: 5)
	Weights   Weights // QoE preference

	// Obs attaches the observability layer (metrics registry and/or
	// decision-trace sink) to every session run with this config. The
	// field is typed on the module-internal obs package: it is wired by
	// this module's commands (via -metrics-addr / -trace-out); external
	// importers observe sessions through Result.WriteTrace instead.
	Obs *obs.Recorder
}

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{BufferMax: 30, Horizon: 5, Weights: BalancedWeights}
}

func (c Config) validate() error {
	if c.BufferMax <= 0 {
		return fmt.Errorf("mpcdash: BufferMax must be positive, got %v", c.BufferMax)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("mpcdash: Horizon must be positive, got %d", c.Horizon)
	}
	return nil
}

// Algorithm selects a bitrate-adaptation algorithm.
type Algorithm int

// The algorithms of Sec 7.1.2 plus the exact-MPC variants.
const (
	RB        Algorithm = iota // rate-based: highest level under predicted throughput
	BB                         // buffer-based (Huang et al.), reservoir 5 s / cushion 10 s
	FESTIVE                    // Jiang et al., single-player configuration
	DashJS                     // dash.js v1.2 rule-based heuristic
	MPC                        // exact receding-horizon MPC, harmonic-mean predictor
	RobustMPC                  // MPC on the error-tracked throughput lower bound
	FastMPC                    // table-enumerated MPC (100×5×100 bins, RLE)
	MPCOpt                     // MPC with a perfect throughput oracle (upper line)
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case RB:
		return "RB"
	case BB:
		return "BB"
	case FESTIVE:
		return "FESTIVE"
	case DashJS:
		return "dash.js"
	case MPC:
		return "MPC"
	case RobustMPC:
		return "RobustMPC"
	case FastMPC:
		return "FastMPC"
	case MPCOpt:
		return "MPC-OPT"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists every selectable algorithm in display order.
func Algorithms() []Algorithm {
	return []Algorithm{RB, BB, FESTIVE, DashJS, MPC, RobustMPC, FastMPC, MPCOpt}
}

// runnerAlgorithm wires an Algorithm to its controller, predictor and
// startup policy.
func runnerAlgorithm(a Algorithm, cfg Config, chunkDur float64) (runner.Algorithm, error) {
	w := cfg.Weights.internal()
	set := runner.StandardSet(w, model.QIdentity, cfg.BufferMax, cfg.Horizon)
	switch a {
	case RB:
		return set[0], nil
	case BB:
		return set[1], nil
	case FastMPC:
		return set[2], nil
	case RobustMPC:
		return set[3], nil
	case DashJS:
		return set[4], nil
	case FESTIVE:
		return set[5], nil
	case MPC:
		return runner.MPCAlgorithm(w, model.QIdentity, cfg.BufferMax, cfg.Horizon), nil
	case MPCOpt:
		return runner.MPCOptAlgorithm(w, model.QIdentity, cfg.BufferMax, cfg.Horizon, chunkDur), nil
	default:
		return runner.Algorithm{}, fmt.Errorf("mpcdash: unknown algorithm %d", int(a))
	}
}

// ChunkStat is the per-chunk outcome of a session.
type ChunkStat struct {
	Index        int
	Bitrate      float64 // kbps chosen
	Level        int     // ladder index chosen
	DownloadTime float64 // seconds
	Throughput   float64 // measured kbps
	Buffer       float64 // seconds, when the download started
	Rebuffer     float64 // stall seconds attributable to this chunk
}

// Metrics are the aggregate QoE factors of a session.
type Metrics struct {
	AvgBitrate       float64
	AvgBitrateChange float64
	Switches         int
	RebufferTime     float64
	RebufferEvents   int
	StartupDelay     float64
}

// Result is a completed playback session.
type Result struct {
	Algorithm string
	TraceName string
	QoE       float64 // Eq. (5) value
	NormQoE   float64 // QoE / offline-optimal QoE (NaN if not computed)
	PredError float64 // session-average throughput prediction error
	Metrics   Metrics
	Chunks    []ChunkStat

	session *model.SessionResult // full log, for the export methods
	weights model.Weights
}

// WriteJSON writes the complete session log (per-chunk records, metrics,
// QoE) as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	return export.WriteJSON(w, r.session, r.weights, model.QIdentity)
}

// WriteCSV writes the per-chunk log as CSV with a header row.
func (r *Result) WriteCSV(w io.Writer) error {
	return export.WriteCSV(w, r.session)
}

// WriteTrace writes the session as a Chrome trace-event JSON document:
// open the file in chrome://tracing or https://ui.perfetto.dev to see the
// full timeline — one span per chunk download, the controller's solver
// time, stalls, buffer-full waits, and counter tracks for buffer level
// and predicted vs. actual throughput.
func (r *Result) WriteTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, obs.EventsFromSession(r.session))
}

func toResult(o runner.Outcome, w Weights) *Result {
	r := &Result{
		Algorithm: o.Algorithm,
		TraceName: o.TraceName,
		QoE:       o.QoE,
		NormQoE:   o.NormQoE,
		PredError: o.PredError,
		Metrics: Metrics{
			AvgBitrate:       o.Metrics.AvgBitrate,
			AvgBitrateChange: o.Metrics.AvgBitrateChange,
			Switches:         o.Metrics.Switches,
			RebufferTime:     o.Metrics.RebufferTime,
			RebufferEvents:   o.Metrics.RebufferEvents,
			StartupDelay:     o.Metrics.StartupDelay,
		},
		Chunks:  make([]ChunkStat, len(o.Result.Chunks)),
		session: o.Result,
		weights: w.internal(),
	}
	for i, c := range o.Result.Chunks {
		r.Chunks[i] = ChunkStat{
			Index:        c.Index,
			Bitrate:      c.Bitrate,
			Level:        c.Level,
			DownloadTime: c.DownloadTime,
			Throughput:   c.Throughput,
			Buffer:       c.BufferBefore,
			Rebuffer:     c.Rebuffer,
		}
	}
	return r
}

// newRunner assembles the session runner for a config.
func newRunner(v *Video, cfg Config, normalize bool) *runner.Runner {
	r := runner.New(v.manifest)
	r.Weights = cfg.Weights.internal()
	r.Sim = sim.Config{BufferMax: cfg.BufferMax, Horizon: cfg.Horizon}
	r.Normalize = normalize
	r.Obs = cfg.Obs
	return r
}

// Run plays one session of the video over the trace with the chosen
// algorithm and returns its full result, including the normalized QoE.
func Run(v *Video, t *Trace, a Algorithm, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alg, err := runnerAlgorithm(a, cfg, v.manifest.ChunkDuration)
	if err != nil {
		return nil, err
	}
	out, err := newRunner(v, cfg, true).RunSession(alg, t.tr)
	if err != nil {
		return nil, err
	}
	return toResult(out, cfg.Weights), nil
}

// Compare runs every algorithm over every trace and returns per-algorithm
// result lists keyed by Algorithm.String(). The offline optimum is computed
// once per trace and shared.
func Compare(v *Video, traces []*Trace, algs []Algorithm, cfg Config) (map[string][]*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := newRunner(v, cfg, true)
	raw := make([]*trace.Trace, len(traces))
	for i, t := range traces {
		raw[i] = t.tr
	}
	out := make(map[string][]*Result, len(algs))
	for _, a := range algs {
		alg, err := runnerAlgorithm(a, cfg, v.manifest.ChunkDuration)
		if err != nil {
			return nil, err
		}
		outs, err := r.RunDataset(alg, raw)
		if err != nil {
			return nil, err
		}
		results := make([]*Result, len(outs))
		for i, o := range outs {
			results[i] = toResult(o, cfg.Weights)
		}
		out[a.String()] = results
	}
	return out, nil
}

// OfflineOptimal returns QoE(OPT) for the trace: the best Eq. (5) value
// attainable with perfect knowledge of the whole trace (continuous-bitrate
// relaxation, as in the paper's footnote 6).
func OfflineOptimal(v *Video, t *Trace, cfg Config) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	s, err := optimal.NewSolver(v.manifest, cfg.Weights.internal(), model.QIdentity, cfg.BufferMax)
	if err != nil {
		return 0, err
	}
	return s.Solve(t.tr), nil
}

// OptimalPlan reconstructs one offline-optimal schedule for the trace: the
// startup delay and the per-chunk rate sequence (kbps; the relaxation may
// pick rates between ladder rungs) achieving OfflineOptimal's QoE.
func OptimalPlan(v *Video, t *Trace, cfg Config) (startupDelay float64, rates []float64, qoe float64, err error) {
	if err := cfg.validate(); err != nil {
		return 0, nil, 0, err
	}
	s, err := optimal.NewSolver(v.manifest, cfg.Weights.internal(), model.QIdentity, cfg.BufferMax)
	if err != nil {
		return 0, nil, 0, err
	}
	plan := s.SolvePlan(t.tr)
	return plan.StartupDelay, plan.Rates, plan.QoE, nil
}
