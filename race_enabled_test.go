//go:build race

package mpcdash_test

func init() { raceEnabled = true }
