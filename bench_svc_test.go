// Decision-service benchmarks (the PR 7 budget): steady-state decide
// throughput against a live abrd over loopback HTTP, and the lookup-path
// decision latency distribution measured server-side. TestSvcPerformance
// writes the numbers to BENCH_svc.json (see `make bench-svc`) and asserts
// the hard budget: p99 of the lookup-path decision (predictor update +
// table lookup, excluding HTTP) stays under a millisecond.
package mpcdash_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"mpcdash/internal/abrsvc"
	"mpcdash/internal/fastmpc"
)

// histQuantile extracts quantile q from an obs.Registry histogram
// snapshot ({count, sum, buckets}); buckets map formatted upper bounds to
// cumulative counts. Returns the upper bound of the first bucket covering
// the quantile — a conservative (pessimistic) estimate.
func histQuantile(snap any, q float64) (float64, error) {
	m, ok := snap.(map[string]any)
	if !ok {
		return 0, fmt.Errorf("snapshot is %T, not a histogram", snap)
	}
	count, _ := m["count"].(uint64)
	if count == 0 {
		return 0, fmt.Errorf("histogram is empty")
	}
	buckets, _ := m["buckets"].(map[string]uint64)
	type bkt struct {
		bound float64
		cum   uint64
	}
	var bs []bkt
	for k, cum := range buckets {
		if k == "+Inf" {
			continue
		}
		b, err := strconv.ParseFloat(k, 64)
		if err != nil {
			return 0, fmt.Errorf("bucket bound %q: %w", k, err)
		}
		bs = append(bs, bkt{b, cum})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].bound < bs[j].bound })
	need := uint64(q * float64(count))
	for _, b := range bs {
		if b.cum >= need {
			return b.bound, nil
		}
	}
	if len(bs) == 0 {
		return 0, fmt.Errorf("histogram has no finite buckets")
	}
	// Quantile landed in +Inf: report beyond the last finite bound.
	return bs[len(bs)-1].bound * 2, nil
}

// TestSvcPerformance load-tests a self-hosted decision service and writes
// BENCH_svc.json. Asserted: server-side lookup-path decision p99 under
// 1 ms, and a sane end-to-end throughput floor.
func TestSvcPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark report; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the timings; BENCH_svc.json is generated without -race")
	}

	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > 32 {
		workers = 32
	}
	const decidesPerWorker = 2000

	svc := abrsvc.New(abrsvc.Config{
		MaxSessions: workers + 1,
		MaxInFlight: workers,
		QueueDepth:  4 * workers,
		QueueWait:   time.Second,
		Tables:      fastmpc.NewRegistry(),
	})
	srv, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	client := abrsvc.NewClient(srv.URL())
	defer client.CloseIdle()
	ctx := context.Background()

	// One session per worker: decide traffic for a session is serialized
	// server-side, so this measures uncontended lookup-path latency at
	// full transport concurrency. Robust sessions ride the same table.
	sessions := make([]string, workers)
	for w := range sessions {
		ack, err := client.Register(ctx, abrsvc.SessionRequest{
			Config: abrsvc.SessionConfig{Robust: w%2 == 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[w] = ack.Session
	}

	decide := func(w, chunk, prev int) (int, error) {
		var samples []float64
		if chunk > 0 {
			samples = []float64{800 + 120*float64((w*13+chunk*7)%25)}
		}
		resp, err := client.Decide(ctx, abrsvc.DecideRequest{
			Session: sessions[w], Chunk: chunk,
			Buffer:            float64((w + chunk*3) % 28),
			PrevLevel:         prev,
			ThroughputSamples: samples,
		})
		if err != nil {
			return 0, err
		}
		return resp.Level, nil
	}

	// Warm up transports and predictor windows before the timed section.
	for w := 0; w < workers; w++ {
		prev := -1
		for chunk := 0; chunk < 10; chunk++ {
			if prev, err = decide(w, chunk, prev); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prev := 0
			for i := 0; i < decidesPerWorker; i++ {
				lvl, err := decide(w, 10+i, prev)
				if err != nil {
					errs[w] = err
					return
				}
				prev = lvl
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	total := workers * decidesPerWorker
	perSec := float64(total) / elapsed.Seconds()
	snap := svc.Registry().Snapshot()
	p99Decide, err := histQuantile(snap[abrsvc.MetricDecideSeconds], 0.99)
	if err != nil {
		t.Fatalf("decide histogram: %v", err)
	}
	p99Request, err := histQuantile(snap[abrsvc.MetricRequestSeconds], 0.99)
	if err != nil {
		t.Fatalf("request histogram: %v", err)
	}

	t.Logf("%d decisions across %d workers in %.2fs: %.0f decisions/s", total, workers, elapsed.Seconds(), perSec)
	t.Logf("server-side p99: lookup path %.1f µs, end-to-end request %.1f µs", p99Decide*1e6, p99Request*1e6)

	if p99Decide > 1e-3 {
		t.Errorf("lookup-path decision p99 = %.3f ms, budget is 1 ms", p99Decide*1e3)
	}
	if perSec < 1000 {
		t.Errorf("throughput %.0f decisions/s, floor is 1000/s", perSec)
	}

	report, err := json.MarshalIndent(map[string]any{
		"benchmark":           "loopback abrd, Envivio config, one session per worker",
		"workers":             workers,
		"decisions":           total,
		"decisions_per_sec":   perSec,
		"p99_decide_seconds":  p99Decide,
		"p99_request_seconds": p99Request,
		"decide_count":        snap[abrsvc.MetricDecisionsTotal],
		"shed_total":          snap[abrsvc.MetricShedTotal],
		"elapsed_seconds":     elapsed.Seconds(),
		"decides_per_worker":  decidesPerWorker,
		"budget":              "p99_decide_seconds <= 0.001 && decisions_per_sec >= 1000",
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_svc.json", append(report, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
