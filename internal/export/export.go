// Package export serializes session results for offline analysis: JSON for
// programmatic consumers and CSV for spreadsheets/plotting, mirroring the
// logging the paper's modified dash.js player records (Sec 6: "a complete
// log of the state of the player, including buffer level, bitrates,
// rebuffer time, predicted/actual throughput").
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mpcdash/internal/model"
)

// SessionJSON is the stable JSON shape of one session.
type SessionJSON struct {
	Algorithm    string      `json:"algorithm"`
	StartupDelay float64     `json:"startup_delay_s"`
	QoE          float64     `json:"qoe"`
	Metrics      MetricsJSON `json:"metrics"`
	Chunks       []ChunkJSON `json:"chunks"`
}

// MetricsJSON mirrors model.Metrics.
type MetricsJSON struct {
	AvgBitrate       float64 `json:"avg_bitrate_kbps"`
	AvgBitrateChange float64 `json:"avg_bitrate_change_kbps"`
	Switches         int     `json:"switches"`
	RebufferTime     float64 `json:"rebuffer_s"`
	RebufferEvents   int     `json:"rebuffer_events"`
	StartupDelay     float64 `json:"startup_delay_s"`
	Retries          int     `json:"retries"`
	Resumes          int     `json:"resumes"`
	Fallbacks        int     `json:"fallbacks"`
}

// ChunkJSON mirrors model.ChunkRecord.
type ChunkJSON struct {
	Index        int     `json:"index"`
	Level        int     `json:"level"`
	Bitrate      float64 `json:"bitrate_kbps"`
	SizeKbits    float64 `json:"size_kbits"`
	StartTime    float64 `json:"start_s"`
	DownloadTime float64 `json:"download_s"`
	Throughput   float64 `json:"throughput_kbps"`
	BufferBefore float64 `json:"buffer_before_s"`
	BufferAfter  float64 `json:"buffer_after_s"`
	Rebuffer     float64 `json:"rebuffer_s"`
	Wait         float64 `json:"wait_s"`
	Predicted    float64 `json:"predicted_kbps"`
	DecisionTime float64 `json:"decision_s,omitempty"`
	Retries      int     `json:"retries,omitempty"`
	Resumes      int     `json:"resumes,omitempty"`
	Fallback     bool    `json:"fallback,omitempty"`

	// Attempts is the per-attempt transport timing recorded by the
	// emulated client's download engine; empty for simulator sessions.
	Attempts []AttemptJSON `json:"attempts,omitempty"`
}

// AttemptJSON mirrors model.AttemptRecord.
type AttemptJSON struct {
	Start    float64 `json:"start_s"`
	Duration float64 `json:"duration_s"`
	Backoff  float64 `json:"backoff_s,omitempty"`
	Level    int     `json:"level"`
	Resumed  bool    `json:"resumed,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// toJSON converts a session under the given QoE configuration.
func toJSON(res *model.SessionResult, w model.Weights, q model.QualityFunc) SessionJSON {
	m := res.ComputeMetrics(q)
	out := SessionJSON{
		Algorithm:    res.Algorithm,
		StartupDelay: res.StartupDelay,
		QoE:          res.QoE(w, q),
		Metrics: MetricsJSON{
			AvgBitrate:       m.AvgBitrate,
			AvgBitrateChange: m.AvgBitrateChange,
			Switches:         m.Switches,
			RebufferTime:     m.RebufferTime,
			RebufferEvents:   m.RebufferEvents,
			StartupDelay:     m.StartupDelay,
			Retries:          m.Retries,
			Resumes:          m.Resumes,
			Fallbacks:        m.Fallbacks,
		},
		Chunks: make([]ChunkJSON, len(res.Chunks)),
	}
	for i, c := range res.Chunks {
		out.Chunks[i] = ChunkJSON{
			Index:        c.Index,
			Level:        c.Level,
			Bitrate:      c.Bitrate,
			SizeKbits:    c.SizeKbits,
			StartTime:    c.StartTime,
			DownloadTime: c.DownloadTime,
			Throughput:   c.Throughput,
			BufferBefore: c.BufferBefore,
			BufferAfter:  c.BufferAfter,
			Rebuffer:     c.Rebuffer,
			Wait:         c.Wait,
			Predicted:    c.Predicted,
			DecisionTime: c.DecisionTime,
			Retries:      c.Retries,
			Resumes:      c.Resumes,
			Fallback:     c.Fallback,
		}
		for _, a := range c.Attempts {
			out.Chunks[i].Attempts = append(out.Chunks[i].Attempts, AttemptJSON{
				Start:    a.Start,
				Duration: a.Duration,
				Backoff:  a.Backoff,
				Level:    a.Level,
				Resumed:  a.Resumed,
				Error:    a.Error,
			})
		}
	}
	return out
}

// WriteJSON writes one session as indented JSON.
func WriteJSON(w io.Writer, res *model.SessionResult, weights model.Weights, q model.QualityFunc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toJSON(res, weights, q)); err != nil {
		return fmt.Errorf("export: json: %w", err)
	}
	return nil
}

// ReadJSON parses a session written by WriteJSON.
func ReadJSON(r io.Reader) (*SessionJSON, error) {
	var s SessionJSON
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("export: json: %w", err)
	}
	return &s, nil
}

// csvHeader is the per-chunk CSV column order.
var csvHeader = []string{
	"index", "level", "bitrate_kbps", "size_kbits", "start_s", "download_s",
	"throughput_kbps", "buffer_before_s", "buffer_after_s", "rebuffer_s",
	"wait_s", "predicted_kbps", "decision_s", "retries", "resumes", "fallback",
}

// WriteCSV writes the per-chunk log as CSV with a header row.
func WriteCSV(w io.Writer, res *model.SessionResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("export: csv: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range res.Chunks {
		row := []string{
			strconv.Itoa(c.Index), strconv.Itoa(c.Level), f(c.Bitrate), f(c.SizeKbits),
			f(c.StartTime), f(c.DownloadTime), f(c.Throughput), f(c.BufferBefore),
			f(c.BufferAfter), f(c.Rebuffer), f(c.Wait), f(c.Predicted), f(c.DecisionTime),
			strconv.Itoa(c.Retries), strconv.Itoa(c.Resumes), strconv.FormatBool(c.Fallback),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("export: csv: %w", err)
	}
	return nil
}

// ReadCSV parses a per-chunk CSV back into chunk records.
func ReadCSV(r io.Reader) ([]model.ChunkRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("export: csv: empty input")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("export: csv: %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	out := make([]model.ChunkRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		var c model.ChunkRecord
		var err error
		if c.Index, err = strconv.Atoi(row[0]); err != nil {
			return nil, fmt.Errorf("export: csv row %d: bad index: %w", i+1, err)
		}
		if c.Level, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("export: csv row %d: bad level: %w", i+1, err)
		}
		floats := []*float64{
			&c.Bitrate, &c.SizeKbits, &c.StartTime, &c.DownloadTime,
			&c.Throughput, &c.BufferBefore, &c.BufferAfter, &c.Rebuffer,
			&c.Wait, &c.Predicted, &c.DecisionTime,
		}
		for j, dst := range floats {
			if *dst, err = strconv.ParseFloat(row[2+j], 64); err != nil {
				return nil, fmt.Errorf("export: csv row %d col %d: %w", i+1, 2+j, err)
			}
		}
		if c.Retries, err = strconv.Atoi(row[13]); err != nil {
			return nil, fmt.Errorf("export: csv row %d: bad retries: %w", i+1, err)
		}
		if c.Resumes, err = strconv.Atoi(row[14]); err != nil {
			return nil, fmt.Errorf("export: csv row %d: bad resumes: %w", i+1, err)
		}
		if c.Fallback, err = strconv.ParseBool(row[15]); err != nil {
			return nil, fmt.Errorf("export: csv row %d: bad fallback: %w", i+1, err)
		}
		out = append(out, c)
	}
	return out, nil
}
