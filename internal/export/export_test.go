package export

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

func sampleSession(t *testing.T) *model.SessionResult {
	t.Helper()
	m := model.EnvivioManifest()
	tr := trace.GenFCC(9, m.Duration()+60)
	res, err := sim.Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJSONRoundTrip(t *testing.T) {
	res := sampleSession(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res, model.Balanced, model.QIdentity); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "BB" {
		t.Errorf("Algorithm = %q", back.Algorithm)
	}
	if len(back.Chunks) != len(res.Chunks) {
		t.Fatalf("chunks = %d, want %d", len(back.Chunks), len(res.Chunks))
	}
	if math.Abs(back.QoE-res.QoE(model.Balanced, model.QIdentity)) > 1e-9 {
		t.Errorf("QoE = %v", back.QoE)
	}
	for i, c := range back.Chunks {
		orig := res.Chunks[i]
		if c.Bitrate != orig.Bitrate || c.Index != orig.Index ||
			math.Abs(c.DownloadTime-orig.DownloadTime) > 1e-12 {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, c, orig)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res := sampleSession(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Chunks)+1 {
		t.Fatalf("lines = %d, want %d", len(lines), len(res.Chunks)+1)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Chunks) {
		t.Fatalf("chunks = %d, want %d", len(back), len(res.Chunks))
	}
	for i, c := range back {
		orig := res.Chunks[i]
		// The flat CSV cannot carry the nested per-attempt log; compare
		// everything else.
		orig.Attempts = nil
		c.Attempts = nil
		if !reflect.DeepEqual(c, orig) {
			t.Fatalf("chunk %d differs:\n got %+v\nwant %+v", i, c, orig)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1,2\n",
		strings.Join(csvHeader, ",") + "\nnot-an-int,0,0,0,0,0,0,0,0,0,0,0,0,0,0,false\n",
		strings.Join(csvHeader, ",") + "\n0,zero,0,0,0,0,0,0,0,0,0,0,0,0,0,false\n",
		strings.Join(csvHeader, ",") + "\n0,0,x,0,0,0,0,0,0,0,0,0,0,0,0,false\n",
		strings.Join(csvHeader, ",") + "\n0,0,0,0,0,0,0,0,0,0,0,0,0,x,0,false\n",
		strings.Join(csvHeader, ",") + "\n0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,maybe\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON should fail")
	}
}
