package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the debug endpoint surface: Prometheus text at
// /metrics, the process expvar map at /debug/vars, and the full
// net/http/pprof suite at /debug/pprof/ — profile the hot MPC enumeration
// loop of a live session with
//
//	go tool pprof http://<addr>/debug/pprof/profile
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug mux on addr in a background goroutine and
// returns the bound address (useful with ":0"). The server lives for the
// rest of the process; CLI commands have no shutdown path shorter than
// exit.
func ServeDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (conventionally "mpcdash"), alongside the stdlib's memstats and
// cmdline vars at /debug/vars. Publishing the same name twice is a no-op
// rather than the stdlib's panic, so tests and long-lived processes can
// call it freely.
func PublishExpvar(name string, reg *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}
