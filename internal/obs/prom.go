package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers per family, cumulative
// `_bucket{le="..."}` lines plus `_sum` / `_count` for histograms. The
// output is deterministic — families sorted by name, label sets sorted
// within a family — so it can be golden-tested byte for byte.

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric to w in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.sorted() {
		var d desc
		var kind string
		switch m := m.(type) {
		case *Counter:
			d, kind = m.d, "counter"
		case *Gauge:
			d, kind = m.d, "gauge"
		case *Histogram:
			d, kind = m.d, "histogram"
		}
		if d.name != lastFamily {
			r.mu.RLock()
			help := r.help[d.name]
			r.mu.RUnlock()
			if help != "" {
				bw.WriteString("# HELP " + d.name + " " + help + "\n")
			}
			bw.WriteString("# TYPE " + d.name + " " + kind + "\n")
			lastFamily = d.name
		}
		switch m := m.(type) {
		case *Counter:
			bw.WriteString(d.id() + " " + strconv.FormatUint(m.Value(), 10) + "\n")
		case *Gauge:
			bw.WriteString(d.id() + " " + fmtFloat(m.Value()) + "\n")
		case *Histogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series, sum and count of one
// histogram.
func writeHistogram(bw *bufio.Writer, h *Histogram) {
	counts := h.snapshotBuckets()
	// The le label joins any existing labels; it must be part of the same
	// brace group.
	series := func(le string) string {
		if h.d.labels == "" {
			return h.d.name + `_bucket{le="` + le + `"}`
		}
		return h.d.name + "_bucket{" + h.d.labels + `,le="` + le + `"}`
	}
	suffix := func(s string) string {
		if h.d.labels == "" {
			return h.d.name + s
		}
		return h.d.name + s + "{" + h.d.labels + "}"
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		bw.WriteString(series(fmtFloat(b)) + " " + strconv.FormatUint(cum, 10) + "\n")
	}
	// Derive count from the same bucket snapshot so the series stays
	// self-consistent under concurrent Observe calls.
	cum += counts[len(h.bounds)]
	bw.WriteString(series("+Inf") + " " + strconv.FormatUint(cum, 10) + "\n")
	bw.WriteString(suffix("_sum") + " " + fmtFloat(h.Sum()) + "\n")
	bw.WriteString(suffix("_count") + " " + strconv.FormatUint(cum, 10) + "\n")
}

// Handler serves the registry at GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
