// Package obs is the observability layer of the repro: a stdlib-only,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) exposed over expvar and Prometheus text format, plus
// structured per-chunk decision tracing with a Chrome trace-event
// exporter. The paper's evaluation (Sec 7) and its FastMPC deployment
// argument both rest on measured behaviour — per-chunk bitrate decisions,
// rebuffer events, predictor error — and this package makes that
// behaviour visible while a session runs, not only in end-of-session
// aggregates.
//
// Every instrument method is safe on a nil receiver, so instrumented code
// never branches on "is observability on": a disabled layer is a nil
// *Recorder (or nil instrument) and each call collapses to a pointer test.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// desc identifies one metric: a family name plus an optional, rendered
// label set (`k="v",k2="v2"` — no braces).
type desc struct {
	name   string
	labels string
}

// id is the registry key: name plus rendered labels.
func (d desc) id() string {
	if d.labels == "" {
		return d.name
	}
	return d.name + "{" + d.labels + "}"
}

// renderLabels turns alternating key/value pairs into the canonical
// rendered form, sorted by key so the same set always produces the same
// registry id.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing count. All methods are safe on a
// nil receiver (no-ops), and safe for concurrent use.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value. All methods are safe on a nil
// receiver (no-ops), and safe for concurrent use.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds with `le` (less-or-equal) semantics as in Prometheus; an implicit
// +Inf bucket catches everything else. All methods are safe on a nil
// receiver (no-ops), and safe for concurrent use.
type Histogram struct {
	d       desc
	bounds  []float64 // strictly ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample. NaN samples are dropped: they carry no
// ordering information and would poison the sum forever.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound >= v; linear scan is faster than sort.Search for the
	// short bucket lists used here and allocation-free either way.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshotBuckets returns the per-bucket (non-cumulative) counts,
// including the +Inf overflow bucket as the final element.
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds starting at start
// with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obs: LinearBuckets needs width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Default bucket layouts for the session metrics: download/decision wall
// times from 1 ms to ~65 s, throughputs from 100 kbps to ~100 Mbps.
var (
	DefTimeBuckets = ExpBuckets(0.001, 2, 17)
	DefKbpsBuckets = ExpBuckets(100, 2, 11)
)

// Registry holds a process's metrics. Instrument constructors are
// idempotent: asking twice for the same name+labels returns the same
// instrument, so callers may re-create handles freely (e.g. once per
// session). The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any // *Counter | *Gauge | *Histogram, keyed by desc.id()
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]any),
		help:    make(map[string]string),
	}
}

// lookup returns the existing metric for d, or registers the one built by
// mk. The help string is recorded per family name (first writer wins).
func (r *Registry) lookup(d desc, help string, mk func() any) any {
	r.mu.RLock()
	m, ok := r.metrics[d.id()]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[d.id()]; ok {
		return m
	}
	m = mk()
	r.metrics[d.id()] = m
	if _, ok := r.help[d.name]; !ok {
		r.help[d.name] = help
	}
	return m
}

// Counter returns the counter with the given name, help text and optional
// alternating key/value label pairs, creating it on first use. It panics
// if the name is already registered as a different metric kind — that is
// a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	d := desc{name: name, labels: renderLabels(labels)}
	m := r.lookup(d, help, func() any { return &Counter{d: d} })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: metric " + d.id() + " already registered with a different kind")
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	d := desc{name: name, labels: renderLabels(labels)}
	m := r.lookup(d, help, func() any { return &Gauge{d: d} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: metric " + d.id() + " already registered with a different kind")
	}
	return g
}

// Histogram returns the histogram with the given name and bucket upper
// bounds (ascending; +Inf is implicit), creating it on first use. The
// bucket layout of an existing histogram wins: callers asking again with
// different buckets get the registered instrument unchanged.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	d := desc{name: name, labels: renderLabels(labels)}
	m := r.lookup(d, help, func() any {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic("obs: histogram " + name + " buckets must be strictly ascending")
			}
		}
		bounds := append([]float64(nil), buckets...)
		return &Histogram{
			d:      d,
			bounds: bounds,
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: metric " + d.id() + " already registered with a different kind")
	}
	return h
}

// sortedIDs returns all metric ids, ordered by family name then labels so
// exposition output is deterministic and families stay contiguous.
func (r *Registry) sorted() []any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.metrics))
	for id := range r.metrics {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]any, len(ids))
	for i, id := range ids {
		out[i] = r.metrics[id]
	}
	return out
}

// Snapshot returns a plain-data view of every metric, suitable for expvar
// (JSON) export: counters and gauges map to their values, histograms to
// {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, m := range r.sorted() {
		switch m := m.(type) {
		case *Counter:
			out[m.d.id()] = m.Value()
		case *Gauge:
			out[m.d.id()] = m.Value()
		case *Histogram:
			buckets := make(map[string]uint64, len(m.bounds)+1)
			counts := m.snapshotBuckets()
			cum := uint64(0)
			for i, b := range m.bounds {
				cum += counts[i]
				buckets[fmtFloat(b)] = cum
			}
			cum += counts[len(m.bounds)]
			buckets["+Inf"] = cum
			out[m.d.id()] = map[string]any{
				"count":   cum,
				"sum":     m.Sum(),
				"buckets": buckets,
			}
		}
	}
	return out
}
