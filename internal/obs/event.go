package obs

import (
	"time"

	"mpcdash/internal/model"
)

// DecisionEvent is one controller step with everything needed to explain
// it after the fact: the state the controller saw, what it chose, how
// long choosing took, and how the download it caused actually went. It is
// the structured analogue of the paper's Sec 6 player log ("a complete
// log of the state of the player, including buffer level, bitrates,
// rebuffer time, predicted/actual throughput"). All times are
// media-seconds since session start except SolverWall, which is the real
// wall-clock cost of the decision — the quantity the FastMPC table
// exists to shrink.
type DecisionEvent struct {
	Algorithm string // controller name
	Session   int    // session index when many sessions share a sink (0 for single runs)
	Chunk     int    // chunk index, 0-based

	// Controller input.
	Time       float64   // media-s when the controller was invoked
	Buffer     float64   // B_k, media-s of buffered video at decision time
	Prev       int       // previous level, -1 before the first chunk
	Predicted  float64   // first-step throughput forecast, kbps (0 = none)
	Candidates []float64 // ladder bitrates the controller chose among, kbps

	// Controller output.
	Level      int           // chosen (served) ladder level
	Bitrate    float64       // kbps of Level
	SolverWall time.Duration // wall-clock time spent inside Decide

	// Download outcome.
	DownloadStart float64 // media-s when the GET was issued
	DownloadDur   float64 // media-s the download took
	Actual        float64 // realized average throughput, kbps
	SizeKbits     float64 // chunk size delivered
	Rebuffer      float64 // media-s of stall incurred by this chunk
	Wait          float64 // media-s of buffer-full idling after this chunk
	BufferAfter   float64 // B_{k+1}, media-s

	// Transport recovery (PR 1 counters) and its per-attempt timing.
	Retries  int
	Resumes  int
	Fallback bool
	Attempts []model.AttemptRecord
}

// Sink receives decision events. Implementations must be safe for
// concurrent use: the runner fans sessions out across workers that share
// one sink.
type Sink interface {
	// Decision is called once per controller step, after the chunk the
	// decision produced has finished downloading.
	Decision(DecisionEvent)
	// Close flushes any buffered output. The sink must not be used after
	// Close.
	Close() error
}

// Standard session metric names. They are exported so dashboards, tests
// and documentation agree on the spelling.
const (
	MetricDownloadSeconds = "mpcdash_download_seconds"
	MetricThroughputKbps  = "mpcdash_chunk_throughput_kbps"
	MetricDecisionSeconds = "mpcdash_decision_seconds"
	MetricRebufferSeconds = "mpcdash_rebuffer_seconds"
	MetricChunksTotal     = "mpcdash_chunks_total"
	MetricRebufferEvents  = "mpcdash_rebuffer_events_total"
	MetricRetriesTotal    = "mpcdash_retries_total"
	MetricResumesTotal    = "mpcdash_resumes_total"
	MetricFallbacksTotal  = "mpcdash_fallbacks_total"
	MetricBufferSeconds   = "mpcdash_buffer_seconds"
	MetricPredictedKbps   = "mpcdash_predicted_kbps"
)

// Recorder fans one session's decision events into a metrics registry
// and/or a trace sink. A nil *Recorder is the disabled layer: every
// method is a no-op behind a single pointer test, so instrumented code
// pays nothing when observability is off (benchmarked in
// TestObsOverheadBudget at the repo root).
type Recorder struct {
	reg     *Registry
	sink    Sink
	session int

	download   *Histogram
	throughput *Histogram
	decision   *Histogram
	rebuffer   *Histogram
	chunks     *Counter
	rebufEvts  *Counter
	retries    *Counter
	resumes    *Counter
	fallbacks  *Counter
	buffer     *Gauge
	predicted  *Gauge
}

// NewRecorder wires a recorder to a registry (may be nil: no metrics) and
// a sink (may be nil: no tracing). NewRecorder(nil, nil) is a valid
// "nil-sink" recorder that drops everything; it is distinct from a nil
// *Recorder only in that callers can hold it unconditionally.
func NewRecorder(reg *Registry, sink Sink) *Recorder {
	r := &Recorder{reg: reg, sink: sink}
	if reg != nil {
		r.download = reg.Histogram(MetricDownloadSeconds, "Per-chunk download latency in media seconds.", DefTimeBuckets)
		r.throughput = reg.Histogram(MetricThroughputKbps, "Realized per-chunk download throughput in kbps.", DefKbpsBuckets)
		r.decision = reg.Histogram(MetricDecisionSeconds, "Controller wall-clock time per decision in seconds.", DefTimeBuckets)
		r.rebuffer = reg.Histogram(MetricRebufferSeconds, "Stall duration per rebuffering chunk in media seconds.", DefTimeBuckets)
		r.chunks = reg.Counter(MetricChunksTotal, "Chunks downloaded.")
		r.rebufEvts = reg.Counter(MetricRebufferEvents, "Chunks whose download stalled playback.")
		r.retries = reg.Counter(MetricRetriesTotal, "Extra download attempts beyond each chunk's first.")
		r.resumes = reg.Counter(MetricResumesTotal, "Attempts that resumed a truncated body via HTTP Range.")
		r.fallbacks = reg.Counter(MetricFallbacksTotal, "Chunks served at the lowest level after exhausting retries.")
		r.buffer = reg.Gauge(MetricBufferSeconds, "Most recent post-chunk buffer level in media seconds.")
		r.predicted = reg.Gauge(MetricPredictedKbps, "Most recent first-step throughput forecast in kbps.")
	}
	return r
}

// Registry returns the registry the recorder writes metrics to, or nil.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// WithSession returns a shallow copy of the recorder that stamps the
// given session index on every event, for fan-out over shared sinks. It
// is nil-safe.
func (r *Recorder) WithSession(id int) *Recorder {
	if r == nil {
		return nil
	}
	c := *r
	c.session = id
	return &c
}

// Enabled reports whether recording does anything at all; hot paths may
// use it to skip assembling an event.
func (r *Recorder) Enabled() bool {
	return r != nil && (r.reg != nil || r.sink != nil)
}

// Decision records one controller step: histogram/counter updates when a
// registry is attached, then the full event to the sink when one is
// attached. Safe on a nil receiver.
func (r *Recorder) Decision(ev DecisionEvent) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.download.Observe(ev.DownloadDur)
		r.throughput.Observe(ev.Actual)
		r.decision.Observe(ev.SolverWall.Seconds())
		r.chunks.Inc()
		if ev.Rebuffer > 0 {
			r.rebuffer.Observe(ev.Rebuffer)
			r.rebufEvts.Inc()
		}
		if ev.Retries > 0 {
			r.retries.Add(uint64(ev.Retries))
		}
		if ev.Resumes > 0 {
			r.resumes.Add(uint64(ev.Resumes))
		}
		if ev.Fallback {
			r.fallbacks.Inc()
		}
		r.buffer.Set(ev.BufferAfter)
		r.predicted.Set(ev.Predicted)
	}
	if r.sink != nil {
		if ev.Session == 0 {
			ev.Session = r.session
		}
		r.sink.Decision(ev)
	}
}

// Close flushes the sink, if any. Safe on a nil receiver.
func (r *Recorder) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

// EventsFromSession reconstructs the decision-event stream of a finished
// session from its per-chunk log — the offline path to a trace when no
// live sink was attached (e.g. `mpcdash -trace-out` after a simulator
// run). Candidate sets are not recorded in ChunkRecord and are left nil.
func EventsFromSession(res *model.SessionResult) []DecisionEvent {
	evs := make([]DecisionEvent, len(res.Chunks))
	prev := -1
	for i, c := range res.Chunks {
		evs[i] = DecisionEvent{
			Algorithm:     res.Algorithm,
			Chunk:         c.Index,
			Time:          c.StartTime,
			Buffer:        c.BufferBefore,
			Prev:          prev,
			Predicted:     c.Predicted,
			Level:         c.Level,
			Bitrate:       c.Bitrate,
			SolverWall:    time.Duration(c.DecisionTime * float64(time.Second)),
			DownloadStart: c.StartTime,
			DownloadDur:   c.DownloadTime,
			Actual:        c.Throughput,
			SizeKbits:     c.SizeKbits,
			Rebuffer:      c.Rebuffer,
			Wait:          c.Wait,
			BufferAfter:   c.BufferAfter,
			Retries:       c.Retries,
			Resumes:       c.Resumes,
			Fallback:      c.Fallback,
			Attempts:      c.Attempts,
		}
		prev = c.Level
	}
	return evs
}
