package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exposition format byte for byte: family
// ordering, HELP/TYPE headers, label rendering, cumulative buckets and the
// derived _sum/_count. Observations are exactly representable in binary so
// the golden sum is stable.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "A histogram.", []float64{0.1, 1, 10})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(100)
	r.Counter("test_requests_total", "Requests served.", "path", "/a").Add(3)
	r.Gauge("test_temp", "Current temperature.").Set(2.5)

	want := `# HELP test_hist A histogram.
# TYPE test_hist histogram
test_hist_bucket{le="0.1"} 0
test_hist_bucket{le="1"} 2
test_hist_bucket{le="10"} 2
test_hist_bucket{le="+Inf"} 3
test_hist_sum 100.75
test_hist_count 3
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{path="/a"} 3
# HELP test_temp Current temperature.
# TYPE test_temp gauge
test_temp 2.5
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPrometheusLabelFamilies: several label sets of one family must share
// a single HELP/TYPE header and stay contiguous and sorted.
func TestPrometheusLabelFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", "Fam.", "alg", "RB").Inc()
	r.Counter("fam_total", "Fam.", "alg", "MPC").Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fam_total Fam.
# TYPE fam_total counter
fam_total{alg="MPC"} 2
fam_total{alg="RB"} 1
`
	if b.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelRendering(t *testing.T) {
	// Keys sort, so order of the pairs does not matter.
	a := renderLabels([]string{"b", "2", "a", "1"})
	if a != `a="1",b="2"` {
		t.Errorf("renderLabels = %q", a)
	}
	// Backslash, quote and newline escape per the text format.
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd label count should panic")
		}
	}()
	renderLabels([]string{"only-key"})
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1\n") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// TestHistogramBuckets covers the bucket-assignment edge cases: a sample
// exactly on a bound lands in that bound's bucket (le semantics), negative
// samples land in the first bucket, overflow goes to +Inf, NaN is dropped.
func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []float64{1, 2, 4})
	h.Observe(1) // exactly on a bound: belongs to le="1"
	h.Observe(-5)
	h.Observe(1e12)
	h.Observe(math.NaN())
	if got := h.snapshotBuckets(); got[0] != 2 || got[1] != 0 || got[2] != 0 || got[3] != 1 {
		t.Errorf("buckets = %v, want [2 0 0 1]", got)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3 (NaN dropped)", h.Count())
	}
	if h.Sum() != 1-5+1e12 {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.5, 2, 3)
	if len(exp) != 3 || exp[0] != 0.5 || exp[1] != 1 || exp[2] != 2 {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(10, 5, 3)
	if len(lin) != 3 || lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	for _, f := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { LinearBuckets(0, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("degenerate bucket parameters should panic")
				}
			}()
			f()
		}()
	}
}

// TestRegistryIdempotent: the same name+labels returns the same instrument;
// a kind clash panics; differing buckets on re-registration keep the first
// layout.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "first help wins", "k", "v")
	c2 := r.Counter("same_total", "ignored", "k", "v")
	if c1 != c2 {
		t.Error("same counter name+labels produced distinct instruments")
	}
	if r.Counter("same_total", "", "k", "other") == c1 {
		t.Error("different labels must produce a distinct instrument")
	}
	h1 := r.Histogram("hist", "", []float64{1, 2})
	h2 := r.Histogram("hist", "", []float64{7, 8, 9})
	if h1 != h2 || len(h2.bounds) != 2 {
		t.Error("histogram re-registration must keep the first bucket layout")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("same_total", "", "k", "v")
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending buckets should panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{1, 1})
}

// TestNilSafety: every instrument and registry method must be a no-op on a
// nil receiver — that is the entire disabled-observability contract.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", DefTimeBuckets)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if reg.Snapshot() != nil {
		t.Error("nil registry Snapshot should be nil")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	var rec *Recorder
	if rec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	rec.Decision(DecisionEvent{})
	if rec.WithSession(3) != nil {
		t.Error("nil recorder WithSession should stay nil")
	}
	if err := rec.Close(); err != nil {
		t.Errorf("nil recorder Close: %v", err)
	}
	if rec.Registry() != nil {
		t.Error("nil recorder Registry should be nil")
	}
}

// TestConcurrentAccess hammers registration and observation from many
// goroutines; run with -race. Totals must balance exactly.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const n = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Re-create handles every iteration: registration must be
				// cheap and idempotent under contention.
				r.Counter("cc_total", "").Inc()
				r.Gauge("cg", "").Add(1)
				r.Histogram("ch", "", []float64{0.5, 1}).Observe(float64(i%3) / 2)
				r.Counter("cl_total", "", "worker", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("cc_total", "").Value(); got != workers*n {
		t.Errorf("counter = %d, want %d", got, workers*n)
	}
	if got := r.Gauge("cg", "").Value(); got != workers*n {
		t.Errorf("gauge = %v, want %d", got, workers*n)
	}
	h := r.Histogram("ch", "", []float64{0.5, 1})
	if h.Count() != workers*n {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*n)
	}
	// Samples cycle 0, 0.5, 1 — all <= 1, so the overflow bucket is empty
	// and buckets must sum to the count.
	b := h.snapshotBuckets()
	if b[2] != 0 || b[0]+b[1] != workers*n {
		t.Errorf("buckets = %v", b)
	}
	var total uint64
	for w := 0; w < workers; w++ {
		total += r.Counter("cl_total", "", "worker", string(rune('a'+w))).Value()
	}
	if total != workers*n {
		t.Errorf("labelled counters sum to %d, want %d", total, workers*n)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "").Add(4)
	r.Gauge("s_gauge", "").Set(1.5)
	h := r.Histogram("s_hist", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)
	snap := r.Snapshot()
	if snap["s_total"] != uint64(4) {
		t.Errorf("counter snapshot = %v", snap["s_total"])
	}
	if snap["s_gauge"] != 1.5 {
		t.Errorf("gauge snapshot = %v", snap["s_gauge"])
	}
	hs, ok := snap["s_hist"].(map[string]any)
	if !ok {
		t.Fatalf("histogram snapshot = %T", snap["s_hist"])
	}
	if hs["count"] != uint64(2) || hs["sum"] != 100.5 {
		t.Errorf("histogram snapshot = %v", hs)
	}
	buckets := hs["buckets"].(map[string]uint64)
	if buckets["1"] != 1 || buckets["10"] != 1 || buckets["+Inf"] != 2 {
		t.Errorf("buckets = %v", buckets)
	}
}

// captureSink records events for recorder tests.
type captureSink struct {
	mu     sync.Mutex
	events []DecisionEvent
	closed int
}

func (s *captureSink) Decision(ev DecisionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

func (s *captureSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed++
	return nil
}

// TestRecorderDecision: one event must update every relevant metric and
// reach the sink with the recorder's session stamped on it.
func TestRecorderDecision(t *testing.T) {
	reg := NewRegistry()
	sink := &captureSink{}
	rec := NewRecorder(reg, sink).WithSession(7)
	if !rec.Enabled() {
		t.Fatal("recorder with registry+sink should be enabled")
	}
	rec.Decision(DecisionEvent{
		Algorithm: "RobustMPC", Chunk: 3,
		Buffer: 12, Predicted: 1800,
		Level: 2, Bitrate: 1000, SolverWall: 2 * time.Millisecond,
		DownloadDur: 1.5, Actual: 2100, Rebuffer: 0.25,
		Retries: 2, Resumes: 1, Fallback: true, BufferAfter: 14,
	})
	rec.Decision(DecisionEvent{DownloadDur: 0.5, Actual: 900, BufferAfter: 10})

	checkCounter := func(name string, want uint64) {
		t.Helper()
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	checkCounter(MetricChunksTotal, 2)
	checkCounter(MetricRebufferEvents, 1)
	checkCounter(MetricRetriesTotal, 2)
	checkCounter(MetricResumesTotal, 1)
	checkCounter(MetricFallbacksTotal, 1)
	if got := reg.Histogram(MetricDownloadSeconds, "", DefTimeBuckets).Count(); got != 2 {
		t.Errorf("download histogram count = %d", got)
	}
	if got := reg.Histogram(MetricRebufferSeconds, "", DefTimeBuckets).Count(); got != 1 {
		t.Errorf("rebuffer histogram count = %d (only stalling chunks observe)", got)
	}
	if got := reg.Gauge(MetricBufferSeconds, "").Value(); got != 10 {
		t.Errorf("buffer gauge = %v, want last BufferAfter", got)
	}
	if len(sink.events) != 2 {
		t.Fatalf("sink got %d events", len(sink.events))
	}
	if sink.events[0].Session != 7 || sink.events[1].Session != 7 {
		t.Errorf("session not stamped: %d, %d", sink.events[0].Session, sink.events[1].Session)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closed != 1 {
		t.Errorf("sink closed %d times", sink.closed)
	}
}

// TestRecorderNilParts: registry-only and sink-only recorders must both
// work, and the nil-sink recorder must be enabled-false but still safe.
func TestRecorderNilParts(t *testing.T) {
	regOnly := NewRecorder(NewRegistry(), nil)
	if !regOnly.Enabled() {
		t.Error("registry-only recorder should be enabled")
	}
	regOnly.Decision(DecisionEvent{DownloadDur: 1})
	if err := regOnly.Close(); err != nil {
		t.Fatal(err)
	}

	sink := &captureSink{}
	sinkOnly := NewRecorder(nil, sink)
	if !sinkOnly.Enabled() {
		t.Error("sink-only recorder should be enabled")
	}
	sinkOnly.Decision(DecisionEvent{Chunk: 1})
	if len(sink.events) != 1 {
		t.Errorf("sink-only recorder dropped the event")
	}

	neither := NewRecorder(nil, nil)
	if neither.Enabled() {
		t.Error("NewRecorder(nil, nil) should report disabled")
	}
	neither.Decision(DecisionEvent{})
	if err := neither.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_total", "").Inc()
	// Publishing twice under the same name must not panic (expvar panics on
	// duplicate Publish; the wrapper guards it).
	PublishExpvar("obs_test_registry", r)
	PublishExpvar("obs_test_registry", r)
}
