package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpcdash/internal/model"
)

// traceDoc mirrors the written document for test-side decoding.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeTrace(t *testing.T, buf *bytes.Buffer) traceDoc {
	t.Helper()
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return doc
}

// sampleEvents builds a two-chunk session with a stall, a buffer-full wait
// and a retried download.
func sampleEvents() []DecisionEvent {
	return []DecisionEvent{
		{
			Algorithm: "RobustMPC", Chunk: 0,
			Time: 0, Buffer: 0, Prev: -1, Predicted: 1200,
			Candidates: []float64{350, 600, 1000},
			Level:      1, Bitrate: 600, SolverWall: 400 * time.Microsecond,
			DownloadStart: 0, DownloadDur: 3, Actual: 800, SizeKbits: 2400,
			Rebuffer: 3, BufferAfter: 4,
		},
		{
			Algorithm: "RobustMPC", Chunk: 1,
			Time: 3, Buffer: 4, Prev: 1, Predicted: 900,
			Candidates: []float64{350, 600, 1000},
			Level:      0, Bitrate: 350, SolverWall: 250 * time.Microsecond,
			DownloadStart: 3, DownloadDur: 1, Actual: 1400, SizeKbits: 1400,
			Wait: 0.5, BufferAfter: 6.5,
			Retries: 1, Resumes: 1,
			Attempts: []model.AttemptRecord{
				{Start: 3, Duration: 0.4, Level: 0, Error: "unexpected EOF"},
				{Start: 3.5, Duration: 0.5, Backoff: 0.1, Level: 0, Resumed: true},
			},
		},
	}
}

// TestChromeTraceStructure is the acceptance check for the exporter: the
// document must be valid JSON with one decide and one download span per
// chunk, stall/wait spans where the session stalled/idled, per-attempt
// transport spans, counter samples for buffer and throughput, and the
// metadata naming tracks.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, &buf)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	count := func(ph, name string, tid int) int {
		n := 0
		for _, e := range doc.TraceEvents {
			if e.Ph == ph && e.Name == name && (tid < 0 || e.Tid == tid) {
				n++
			}
		}
		return n
	}
	if got := count("X", "decide", tidController); got != 2 {
		t.Errorf("decide spans = %d, want one per chunk", got)
	}
	for i := 0; i < 2; i++ {
		if got := count("X", fmt.Sprintf("chunk %d", i), tidNetwork); got != 1 {
			t.Errorf("chunk %d download spans = %d, want 1", i, got)
		}
	}
	if got := count("X", "stall", tidPlayback); got != 1 {
		t.Errorf("stall spans = %d, want 1", got)
	}
	if got := count("X", "wait (buffer full)", tidPlayback); got != 1 {
		t.Errorf("wait spans = %d, want 1", got)
	}
	// Chunk 1's attempt log: one failed plain attempt, one Range resume
	// preceded by a backoff.
	if got := count("X", "attempt", tidTransport); got != 1 {
		t.Errorf("attempt spans = %d, want 1", got)
	}
	if got := count("X", "resume", tidTransport); got != 1 {
		t.Errorf("resume spans = %d, want 1", got)
	}
	if got := count("X", "backoff", tidTransport); got != 1 {
		t.Errorf("backoff spans = %d, want 1", got)
	}
	if got := count("C", "buffer_s", -1); got != 4 {
		t.Errorf("buffer counter samples = %d, want 2 per chunk", got)
	}
	if got := count("C", "throughput_kbps", -1); got != 2 {
		t.Errorf("throughput counter samples = %d, want 1 per chunk", got)
	}
	if got := count("M", "process_name", -1); got != 1 {
		t.Errorf("process_name metadata = %d, want 1 for a single session", got)
	}
	if got := count("M", "thread_name", -1); got != 4 {
		t.Errorf("thread_name metadata = %d, want 4 tracks", got)
	}

	// Span timing: the stall starts when the buffer runs dry (Buffer
	// media-seconds into chunk 0's download — here immediately) and lasts
	// the rebuffer time; a sub-µs solver still gets a visible span.
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "stall":
			if e.Ts != 0 || e.Dur != 3*usPerS {
				t.Errorf("stall span ts=%v dur=%v", e.Ts, e.Dur)
			}
		case e.Ph == "X" && e.Name == "decide":
			if e.Dur < 1 {
				t.Errorf("decide span dur=%v, want >= 1 µs", e.Dur)
			}
		case e.Ph == "X" && e.Name == "chunk 1":
			if e.Ts != 3*usPerS || e.Dur != 1*usPerS {
				t.Errorf("chunk 1 span ts=%v dur=%v", e.Ts, e.Dur)
			}
		case e.Ph == "X" && e.Name == "backoff":
			if e.Ts != 3.4*usPerS || e.Dur != 0.1*usPerS {
				t.Errorf("backoff span ts=%v dur=%v", e.Ts, e.Dur)
			}
		}
	}

	// Metadata sorts first; the rest is time-ordered.
	lastMeta := -1
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if i != lastMeta+1 {
				t.Fatalf("metadata event at index %d after non-metadata", i)
			}
			lastMeta = i
		}
	}
	for i := lastMeta + 2; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].Ts < doc.TraceEvents[i-1].Ts {
			t.Fatalf("events out of time order at index %d", i)
		}
	}
}

// TestChromeTraceSessions: events from different sessions map to distinct
// pids, each with its own process/thread naming.
func TestChromeTraceSessions(t *testing.T) {
	evs := sampleEvents()
	evs[1].Session = 1
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, &buf)
	pids := map[int]bool{}
	procNames := 0
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		if e.Ph == "M" && e.Name == "process_name" {
			procNames++
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("pids = %v, want sessions 0 and 1 as pids 1 and 2", pids)
	}
	if procNames != 2 {
		t.Errorf("process_name metadata = %d, want one per session", procNames)
	}
}

// TestChromeTraceSinkConcurrent: the sink must accept concurrent Decision
// calls (runner workers share it) and Close must be idempotent, writing
// exactly one document.
func TestChromeTraceSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink.Decision(DecisionEvent{Session: s, Chunk: i, Time: float64(i), DownloadDur: 1})
			}
		}(s)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != size {
		t.Error("second Close wrote more output")
	}
	// Dropped after close.
	sink.Decision(DecisionEvent{})

	doc := decodeTrace(t, &buf)
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Tid == tidNetwork {
			spans++
		}
	}
	if spans != 200 {
		t.Errorf("download spans = %d, want 200", spans)
	}
}

// TestEventsFromSession: the offline reconstruction used by `mpcdash
// -trace-out` must track previous levels across chunks and carry the
// transport counters through.
func TestEventsFromSession(t *testing.T) {
	res := &model.SessionResult{
		Algorithm: "BB",
		Chunks: []model.ChunkRecord{
			{Index: 0, Level: 2, Bitrate: 1000, StartTime: 0, DownloadTime: 2, BufferBefore: 0, BufferAfter: 2, DecisionTime: 0.001},
			{Index: 1, Level: 1, Bitrate: 600, StartTime: 2, DownloadTime: 1, BufferBefore: 2, BufferAfter: 5, Retries: 3},
		},
	}
	evs := EventsFromSession(res)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Prev != -1 || evs[1].Prev != 2 {
		t.Errorf("prev levels = %d, %d; want -1, 2", evs[0].Prev, evs[1].Prev)
	}
	if evs[0].SolverWall != time.Millisecond {
		t.Errorf("SolverWall = %v", evs[0].SolverWall)
	}
	if evs[1].Retries != 3 || evs[1].Algorithm != "BB" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}
