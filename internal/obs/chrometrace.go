package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file exports decision events in the Chrome trace-event JSON format
// so a full session timeline opens directly in chrome://tracing or
// Perfetto (ui.perfetto.dev): one complete span per chunk on the network
// track, the controller's solver time on its own track, stalls and
// buffer-full waits on the playback track, per-attempt transport activity
// (retries, backoff, Range resumes) on the transport track, and counter
// tracks for buffer level and predicted vs. actual throughput.
//
// The timeline is in media time (the session clock every other number in
// the repo uses); ts/dur are microseconds as the format requires. The one
// exception is the decide span, whose duration is real solver wall time —
// it answers "how expensive was this decision", not "when did the next
// chunk start".

// Trace-event thread ids, one per track.
const (
	tidPlayback   = 1 // stalls and buffer-full waits
	tidController = 2 // decide spans
	tidNetwork    = 3 // one span per chunk download
	tidTransport  = 4 // per-attempt spans: backoff, attempt, resume
)

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const usPerS = 1e6

// eventsToTrace flattens decision events into trace events, including the
// metadata that names each process (session) and thread (track).
func eventsToTrace(evs []DecisionEvent) []traceEvent {
	out := make([]traceEvent, 0, 8*len(evs))
	named := make(map[int]bool)
	for _, ev := range evs {
		pid := ev.Session + 1
		if !named[pid] {
			named[pid] = true
			name := ev.Algorithm
			if name == "" {
				name = "session"
			}
			out = append(out,
				metaEvent(pid, 0, "process_name", fmt.Sprintf("%s session %d", name, ev.Session)),
				metaEvent(pid, tidPlayback, "thread_name", "playback"),
				metaEvent(pid, tidController, "thread_name", "controller"),
				metaEvent(pid, tidNetwork, "thread_name", "network"),
				metaEvent(pid, tidTransport, "thread_name", "transport"),
			)
		}
		out = append(out, chunkEvents(pid, ev)...)
	}
	// Stable presentation: trace viewers sort internally, but a
	// time-ordered file is diffable and easier to eyeball.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ph == "M" != (out[j].Ph == "M") {
			return out[i].Ph == "M"
		}
		return out[i].Ts < out[j].Ts
	})
	return out
}

func metaEvent(pid, tid int, name, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// chunkEvents renders one decision event: decide span, download span,
// attempt sub-spans, stall/wait spans and the counter samples.
func chunkEvents(pid int, ev DecisionEvent) []traceEvent {
	out := make([]traceEvent, 0, 8)

	// Controller decision. Duration is real wall time (µs); a sub-µs
	// decision is floored so the span stays visible.
	decideDur := ev.SolverWall.Seconds() * usPerS
	if decideDur < 1 {
		decideDur = 1
	}
	out = append(out, traceEvent{
		Name: "decide", Cat: "controller", Ph: "X",
		Ts: ev.Time * usPerS, Dur: decideDur, Pid: pid, Tid: tidController,
		Args: map[string]any{
			"chunk":           ev.Chunk,
			"buffer_s":        ev.Buffer,
			"prev_level":      ev.Prev,
			"chosen_level":    ev.Level,
			"chosen_kbps":     ev.Bitrate,
			"candidates_kbps": ev.Candidates,
			"predicted_kbps":  ev.Predicted,
			"solver_us":       ev.SolverWall.Seconds() * usPerS,
		},
	})

	// The chunk download: one complete span per chunk.
	out = append(out, traceEvent{
		Name: fmt.Sprintf("chunk %d", ev.Chunk), Cat: "network", Ph: "X",
		Ts: ev.DownloadStart * usPerS, Dur: ev.DownloadDur * usPerS, Pid: pid, Tid: tidNetwork,
		Args: map[string]any{
			"level":           ev.Level,
			"bitrate_kbps":    ev.Bitrate,
			"size_kbits":      ev.SizeKbits,
			"throughput_kbps": ev.Actual,
			"predicted_kbps":  ev.Predicted,
			"retries":         ev.Retries,
			"resumes":         ev.Resumes,
			"fallback":        ev.Fallback,
		},
	})

	// Transport attempts, with the backoff that preceded each.
	for i, a := range ev.Attempts {
		if a.Backoff > 0 {
			out = append(out, traceEvent{
				Name: "backoff", Cat: "transport", Ph: "X",
				Ts: (a.Start - a.Backoff) * usPerS, Dur: a.Backoff * usPerS,
				Pid: pid, Tid: tidTransport,
			})
		}
		name := "attempt"
		if a.Resumed {
			name = "resume"
		}
		out = append(out, traceEvent{
			Name: name, Cat: "transport", Ph: "X",
			Ts: a.Start * usPerS, Dur: a.Duration * usPerS, Pid: pid, Tid: tidTransport,
			Args: map[string]any{"n": i + 1, "level": a.Level, "error": a.Error},
		})
	}

	// Playback interruptions: the stall begins once the buffer runs dry,
	// i.e. Buffer media-seconds into the download.
	if ev.Rebuffer > 0 {
		out = append(out, traceEvent{
			Name: "stall", Cat: "playback", Ph: "X",
			Ts: (ev.DownloadStart + ev.Buffer) * usPerS, Dur: ev.Rebuffer * usPerS,
			Pid: pid, Tid: tidPlayback,
			Args: map[string]any{"chunk": ev.Chunk, "stall_s": ev.Rebuffer},
		})
	}
	if ev.Wait > 0 {
		out = append(out, traceEvent{
			Name: "wait (buffer full)", Cat: "playback", Ph: "X",
			Ts: (ev.DownloadStart + ev.DownloadDur) * usPerS, Dur: ev.Wait * usPerS,
			Pid: pid, Tid: tidPlayback,
			Args: map[string]any{"chunk": ev.Chunk},
		})
	}

	// Counter tracks: buffer level at decision and after the chunk,
	// predicted vs. actual throughput per chunk.
	out = append(out,
		traceEvent{
			Name: "buffer_s", Ph: "C", Ts: ev.Time * usPerS, Pid: pid, Tid: 0,
			Args: map[string]any{"media_s": ev.Buffer},
		},
		traceEvent{
			Name: "buffer_s", Ph: "C", Ts: (ev.DownloadStart + ev.DownloadDur + ev.Wait) * usPerS, Pid: pid, Tid: 0,
			Args: map[string]any{"media_s": ev.BufferAfter},
		},
		traceEvent{
			Name: "throughput_kbps", Ph: "C", Ts: ev.DownloadStart * usPerS, Pid: pid, Tid: 0,
			Args: map[string]any{"predicted": ev.Predicted, "actual": ev.Actual},
		},
	)
	return out
}

// chromeFile is the object form of the trace-event format; Perfetto and
// chrome://tracing both accept it.
type chromeFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the events as one trace-event JSON document.
func WriteChromeTrace(w io.Writer, evs []DecisionEvent) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeFile{TraceEvents: eventsToTrace(evs), DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}

// ChromeTrace is a Sink that buffers decision events and writes them as a
// Chrome trace-event JSON document on Close. Safe for concurrent use; it
// does not close the underlying writer.
type ChromeTrace struct {
	mu     sync.Mutex
	w      io.Writer
	events []DecisionEvent
	closed bool
}

// NewChromeTrace returns a sink writing to w on Close.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	return &ChromeTrace{w: w}
}

// Decision implements Sink.
func (c *ChromeTrace) Decision(ev DecisionEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.events = append(c.events, ev)
	}
}

// Close renders and writes the buffered events. Subsequent events are
// dropped; Close is idempotent (the second call writes nothing). The
// buffer is detached under the lock but rendered and written outside it —
// serializing the trace can mean megabytes of file I/O, and concurrent
// Decision callers must not stall behind it (they observe closed and drop,
// the lockscope discipline for every sink in this package).
func (c *ChromeTrace) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	events := c.events
	c.events = nil
	c.mu.Unlock()
	return WriteChromeTrace(c.w, events)
}
