package abr

import (
	"testing"

	"mpcdash/internal/model"
)

func envivio(t *testing.T) *model.Manifest {
	t.Helper()
	return model.EnvivioManifest()
}

func steadyState(buffer float64, prev int, rate float64) State {
	return State{Chunk: 10, Buffer: buffer, Prev: prev, Forecast: []float64{rate, rate, rate, rate, rate}}
}

func TestRB(t *testing.T) {
	m := envivio(t)
	rb := NewRB(1)(m)
	if rb.Name() != "RB" {
		t.Errorf("Name = %q", rb.Name())
	}
	cases := []struct {
		rate float64
		want int
	}{
		{0, 0},    // unknown → lowest
		{100, 0},  // below min → lowest
		{350, 0},  // exactly min
		{999, 1},  // below 1000
		{2500, 3}, // between 2000 and 3000
		{9999, 4}, // above max
	}
	for _, c := range cases {
		if got := rb.Decide(steadyState(15, 2, c.rate)).Level; got != c.want {
			t.Errorf("RB(rate=%v) = %d, want %d", c.rate, got, c.want)
		}
	}
	// RB ignores the buffer entirely.
	a := rb.Decide(steadyState(1, 2, 2500)).Level
	b := rb.Decide(steadyState(29, 2, 2500)).Level
	if a != b {
		t.Errorf("RB should ignore buffer: %d vs %d", a, b)
	}
}

func TestRBSafetyFactor(t *testing.T) {
	m := envivio(t)
	rb := NewRB(0.5)(m)
	// 0.5 × 2500 = 1250 → level 2 (1000).
	if got := rb.Decide(steadyState(15, 2, 2500)).Level; got != 2 {
		t.Errorf("RB p=0.5 = %d, want 2", got)
	}
}

func TestBBRateMap(t *testing.T) {
	m := envivio(t)
	bb := NewBB(5, 10)(m).(*BB)
	if got := bb.RateMap(0); got != 350 {
		t.Errorf("RateMap(0) = %v, want 350", got)
	}
	if got := bb.RateMap(5); got != 350 {
		t.Errorf("RateMap(reservoir) = %v, want 350", got)
	}
	if got := bb.RateMap(15); got != 3000 {
		t.Errorf("RateMap(reservoir+cushion) = %v, want 3000", got)
	}
	if got := bb.RateMap(30); got != 3000 {
		t.Errorf("RateMap(full) = %v, want 3000", got)
	}
	mid := bb.RateMap(10) // halfway: 350 + 0.5·2650 = 1675
	if mid <= 350 || mid >= 3000 {
		t.Errorf("RateMap(mid) = %v, want interior", mid)
	}
}

func TestBBDecide(t *testing.T) {
	m := envivio(t)
	bb := NewBB(5, 10)(m)
	if bb.Name() != "BB" {
		t.Errorf("Name = %q", bb.Name())
	}
	// Low buffer → lowest level regardless of (ignored) throughput.
	if got := bb.Decide(steadyState(2, 4, 99999)).Level; got != 0 {
		t.Errorf("BB(low buffer) = %d, want 0", got)
	}
	// Full buffer → top level even with zero forecast.
	if got := bb.Decide(steadyState(30, 0, 0)).Level; got != 4 {
		t.Errorf("BB(full buffer) = %d, want 4", got)
	}
	// Monotone in buffer.
	prev := -1
	for b := 0.0; b <= 30; b += 1 {
		lvl := bb.Decide(steadyState(b, 2, 0)).Level
		if lvl < prev {
			t.Fatalf("BB not monotone in buffer at %v: %d < %d", b, lvl, prev)
		}
		prev = lvl
	}
}

func TestFixed(t *testing.T) {
	m := envivio(t)
	f := NewFixed(3)(m)
	for b := 0.0; b < 30; b += 7 {
		if got := f.Decide(steadyState(b, 0, 100)).Level; got != 3 {
			t.Errorf("Fixed = %d, want 3", got)
		}
	}
	over := NewFixed(99)(m)
	if got := over.Decide(steadyState(5, 0, 100)).Level; got != 4 {
		t.Errorf("Fixed out-of-range should clamp, got %d", got)
	}
}

func TestFESTIVEGradualSwitching(t *testing.T) {
	m := envivio(t)
	f := NewFESTIVE(12, 1, 5)(m)
	if f.Name() != "FESTIVE" {
		t.Errorf("Name = %q", f.Name())
	}
	// First chunk goes straight to the rate-based target.
	first := f.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{2500}})
	if first.Level != 3 {
		t.Fatalf("first chunk = %d, want 3", first.Level)
	}
	// From level 0 with plenty of bandwidth, FESTIVE must not jump straight
	// to the top: at most one rung per decision.
	g := NewFESTIVE(12, 1, 5)(m)
	g.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{350}})
	lvl := 0
	for k := 1; k < 30; k++ {
		d := g.Decide(State{Chunk: k, Buffer: 20, Prev: lvl, Forecast: []float64{3000}})
		if d.Level > lvl+1 {
			t.Fatalf("chunk %d: jumped from %d to %d", k, lvl, d.Level)
		}
		lvl = d.Level
	}
	if lvl == 0 {
		t.Error("FESTIVE never switched up with abundant bandwidth")
	}
}

func TestFESTIVEDelayedUpswitch(t *testing.T) {
	m := envivio(t)
	f := NewFESTIVE(12, 1, 5)(m)
	f.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{1000}}) // start at level 2
	// Bandwidth jumps; the first post-jump decision at level 2 must wait
	// (patience = level+1 = 3 consecutive wants).
	up := 0
	lvl := 2
	for k := 1; k <= 3; k++ {
		d := f.Decide(State{Chunk: k, Buffer: 20, Prev: lvl, Forecast: []float64{3000}})
		if d.Level > lvl {
			up = k
			lvl = d.Level
			break
		}
	}
	if up != 0 && up < 3 {
		t.Errorf("up-switch after %d decisions, want ≥3 (delayed update)", up)
	}
}

func TestFESTIVEDownswitchImmediate(t *testing.T) {
	m := envivio(t)
	f := NewFESTIVE(12, 1, 5)(m)
	f.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{3000}})
	d := f.Decide(State{Chunk: 1, Buffer: 10, Prev: 4, Forecast: []float64{400}})
	if d.Level >= 4 {
		t.Errorf("FESTIVE should step down on bandwidth collapse, got %d", d.Level)
	}
}

func TestDashJSRules(t *testing.T) {
	m := envivio(t)
	d := NewDashJS(0, 0)(m)
	if d.Name() != "dash.js" {
		t.Errorf("Name = %q", d.Name())
	}
	// First chunk: no history → lowest.
	if got := d.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{0}}).Level; got != 0 {
		t.Errorf("first chunk = %d, want 0", got)
	}
	// InsufficientBufferRule trips below one chunk duration.
	d2 := NewDashJS(0, 0)(m)
	if got := d2.Decide(State{Chunk: 5, Buffer: 2, Prev: 4, Forecast: []float64{9000}}).Level; got != 0 {
		t.Errorf("low buffer = %d, want 0", got)
	}
	// ...and stays tripped until the buffer recovers past 2 chunks.
	if got := d2.Decide(State{Chunk: 6, Buffer: 6, Prev: 0, Forecast: []float64{9000}}).Level; got != 0 {
		t.Errorf("hysteresis should hold at 6s, got %d", got)
	}
	if got := d2.Decide(State{Chunk: 7, Buffer: 9, Prev: 0, Forecast: []float64{9000}}).Level; got == 0 {
		t.Error("recovered buffer should clear the trip")
	}
}

func TestDashJSDownloadRatio(t *testing.T) {
	m := envivio(t)
	// Mild dip at level 3 (2000): rate 1800 → ratio 0.9 ≥ 1000/2000 → one rung down.
	d := NewDashJS(0, 0)(m)
	if got := d.Decide(State{Chunk: 5, Buffer: 20, Prev: 3, Forecast: []float64{1800}}).Level; got != 2 {
		t.Errorf("mild dip = %d, want 2", got)
	}
	// Severe dip: rate 600 at level 3 → ratio 0.3 < 0.5 → bail to 0.
	if got := d.Decide(State{Chunk: 6, Buffer: 20, Prev: 3, Forecast: []float64{600}}).Level; got != 0 {
		t.Errorf("severe dip = %d, want 0", got)
	}
	// Fast download can jump several rungs: at level 0 (350) with rate
	// 3000, ratio 8.57 affords level 3 (2000/350 = 5.7) but not 4 exactly
	// (3000/350 = 8.57, need ratio > 8.57).
	if got := d.Decide(State{Chunk: 7, Buffer: 20, Prev: 0, Forecast: []float64{3000}}).Level; got != 3 {
		t.Errorf("fast chunk jump = %d, want 3", got)
	}
}

func TestDefaultStartup(t *testing.T) {
	m := envivio(t)
	rb := NewRB(1)(m)
	d := rb.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{700}, Startup: true})
	// Level 1 (600 kbps), chunk size 2400 kbits, rate 700 → ≈3.43 s.
	want := m.ChunkSize(0, d.Level) / 700
	if diff := d.Startup - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Startup = %v, want %v", d.Startup, want)
	}
	// Unknown rate falls back to one chunk duration.
	d = rb.Decide(State{Chunk: 0, Prev: -1, Forecast: []float64{0}, Startup: true})
	if d.Startup != m.ChunkDuration {
		t.Errorf("Startup fallback = %v, want %v", d.Startup, m.ChunkDuration)
	}
	// Steady state reports zero.
	if got := rb.Decide(steadyState(10, 1, 700)).Startup; got != 0 {
		t.Errorf("steady-state Startup = %v, want 0", got)
	}
}

func TestPredictedRate(t *testing.T) {
	if got := (State{}).PredictedRate(); got != 0 {
		t.Errorf("empty forecast rate = %v, want 0", got)
	}
	if got := (State{Forecast: []float64{123, 456}}).PredictedRate(); got != 123 {
		t.Errorf("rate = %v, want 123", got)
	}
}
