package abr

import (
	"math"

	"mpcdash/internal/model"
)

// FESTIVE implements the single-player variant of Jiang et al.'s algorithm
// as evaluated in Sec 7.1.2 (no randomized scheduling, no wait between
// chunks): a gradual-switching candidate set, a delayed up-switch whose
// patience grows with the current level, and a combined score
//
//	score(b) = stability(b) + α·efficiency(b), α = 12
//
// minimized over the candidates, where efficiency(b) = |b/(p·Ĉ) − 1| and
// stability(b) = 2^(switches among the last 5 chunks, counting the
// hypothetical switch to b).
type FESTIVE struct {
	Manifest *model.Manifest
	Alpha    float64 // α weighting efficiency against stability (paper: 12)
	P        float64 // throughput safety factor (paper: 1)
	Window   int     // switch-history window (paper: 5)

	levels  []int // chosen level history (last Window)
	upCount int   // consecutive decisions wanting a higher level
}

// NewFESTIVE returns a Factory for the FESTIVE controller; non-positive
// parameters select the paper's α=12, p=1, window=5.
func NewFESTIVE(alpha, p float64, window int) Factory {
	if alpha <= 0 {
		alpha = 12
	}
	if p <= 0 {
		p = 1
	}
	if window <= 0 {
		window = 5
	}
	return func(m *model.Manifest) Controller {
		return &FESTIVE{Manifest: m, Alpha: alpha, P: p, Window: window}
	}
}

// Name implements Controller.
func (f *FESTIVE) Name() string { return "FESTIVE" }

// Decide implements Controller.
func (f *FESTIVE) Decide(s State) Decision {
	rate := s.PredictedRate()
	target := 0
	if rate > 0 {
		target = f.Manifest.Ladder.HighestBelow(f.P * rate)
	}
	cur := s.Prev
	if cur < 0 {
		// First chunk: start at the rate-based target like the reference
		// implementation (there is no stability history to protect yet).
		f.record(target)
		return Decision{Level: target, Startup: defaultStartup(f.Manifest, target, s)}
	}

	// Gradual switching: the only reachable candidate is one rung toward
	// the target, and up-switches wait longer at higher levels.
	candidate := cur
	switch {
	case target > cur:
		f.upCount++
		if f.upCount >= cur+1 { // delayed update: patience grows with level
			candidate = cur + 1
		}
	case target < cur:
		f.upCount = 0
		candidate = cur - 1
	default:
		f.upCount = 0
	}

	best := cur
	if candidate != cur {
		// Ties (up to rounding) break toward the candidate: it is the
		// move toward the rate-based target.
		if f.score(candidate, cur, rate) <= f.score(cur, cur, rate)+1e-9 {
			best = candidate
			if candidate > cur {
				f.upCount = 0
			}
		}
	}
	f.record(best)
	return Decision{Level: best, Startup: defaultStartup(f.Manifest, best, s)}
}

// score is stability + α·efficiency for hypothetically choosing level b.
func (f *FESTIVE) score(b, cur int, rate float64) float64 {
	switches := 0
	prev := -1
	for _, l := range f.levels {
		if prev >= 0 && l != prev {
			switches++
		}
		prev = l
	}
	if prev >= 0 && b != prev {
		switches++
	}
	stability := math.Pow(2, float64(switches))

	efficiency := 0.0
	if rate > 0 {
		efficiency = math.Abs(f.Manifest.Ladder[b]/(f.P*rate) - 1)
	} else if b != cur {
		efficiency = 1 // unknown bandwidth: any move is unjustified
	}
	return stability + f.Alpha*efficiency
}

// record appends a chosen level to the sliding history window.
func (f *FESTIVE) record(level int) {
	f.levels = append(f.levels, level)
	if len(f.levels) > f.Window {
		f.levels = f.levels[len(f.levels)-f.Window:]
	}
}
