// Package abr defines the bitrate-adaptation Controller interface — the
// function f(·) of Eq. (12) — and implements the baseline algorithms the
// paper compares against (Sec 7.1.2): the rate-based rule (RB), the
// buffer-based rule of Huang et al. (BB), FESTIVE, the dash.js heuristic
// rules, and a fixed-bitrate control. The MPC family lives in
// mpcdash/internal/core.
package abr

import (
	"fmt"

	"mpcdash/internal/model"
)

// State is everything a controller may observe when choosing the bitrate of
// the next chunk: buffer occupancy (known exactly), the previous decision,
// and the throughput forecast (Eq. 12). Rate-based controllers ignore
// Buffer; buffer-based controllers ignore Forecast.
type State struct {
	Chunk    int       // index of the chunk being chosen, 0-based
	Buffer   float64   // B_k, seconds of video in the buffer
	Prev     int       // previous level index, -1 before the first chunk
	Time     float64   // t_k, session time in seconds
	Forecast []float64 // predicted kbps per future chunk; empty or ≤0 means unknown
	Lower    []float64 // robust lower bounds aligned with Forecast; may be nil
	Startup  bool      // true while the controller may also pick the startup delay
}

// PredictedRate returns the scalar first-step forecast, or 0 when unknown.
func (s State) PredictedRate() float64 {
	if len(s.Forecast) == 0 {
		return 0
	}
	return s.Forecast[0]
}

// Decision is a controller's output: the ladder level for the next chunk
// and, during startup, the chosen startup delay Ts in seconds.
type Decision struct {
	Level   int
	Startup float64
}

// Controller selects bitrates for one playback session. Implementations
// may keep per-session state and are not safe for concurrent use; create
// one controller per session via a Factory.
type Controller interface {
	// Name identifies the algorithm in logs and experiment output.
	Name() string
	// Decide picks the level for chunk s.Chunk.
	Decide(s State) Decision
}

// Factory builds a fresh controller for each session.
type Factory func(m *model.Manifest) Controller

// Fixed always picks the same ladder level; the trivial strawman of Sec 2.
type Fixed struct {
	Manifest *model.Manifest
	Level    int
}

// NewFixed returns a Factory for a fixed-level controller.
func NewFixed(level int) Factory {
	return func(m *model.Manifest) Controller {
		return &Fixed{Manifest: m, Level: level}
	}
}

// Name implements Controller.
func (f *Fixed) Name() string { return fmt.Sprintf("Fixed(%d)", f.Level) }

// Decide implements Controller.
func (f *Fixed) Decide(s State) Decision {
	lvl := f.Manifest.Ladder.Clamp(f.Level)
	return Decision{Level: lvl, Startup: defaultStartup(f.Manifest, lvl, s)}
}

// defaultStartup is the startup delay non-MPC controllers report: the
// expected download time of the first chunk at the chosen level, i.e. the
// "play as soon as the first chunk arrives" policy every production player
// uses. With no throughput estimate it falls back to one chunk duration.
func defaultStartup(m *model.Manifest, level int, s State) float64 {
	if !s.Startup {
		return 0
	}
	rate := s.PredictedRate()
	if rate <= 0 {
		return m.ChunkDuration
	}
	return m.ChunkSize(s.Chunk, level) / rate
}
