package abr

import "mpcdash/internal/model"

// BB is the buffer-based algorithm of Huang et al. as configured in
// Sec 7.1.2: the bitrate map f(B) rises linearly from R_min to R_max as the
// buffer moves across a cushion above a safety reservoir, and the chosen
// level is the highest one whose bitrate does not exceed f(B_k). Throughput
// information is deliberately ignored.
type BB struct {
	Manifest  *model.Manifest
	Reservoir float64 // r, seconds of buffer kept as a rebuffer guard (paper: 5)
	Cushion   float64 // c, seconds over which the map spans the ladder (paper: 10)
}

// NewBB returns a Factory for the buffer-based controller; non-positive
// parameters select the paper's reservoir of 5 s and cushion of 10 s.
func NewBB(reservoir, cushion float64) Factory {
	if reservoir <= 0 {
		reservoir = 5
	}
	if cushion <= 0 {
		cushion = 10
	}
	return func(m *model.Manifest) Controller {
		return &BB{Manifest: m, Reservoir: reservoir, Cushion: cushion}
	}
}

// Name implements Controller.
func (b *BB) Name() string { return "BB" }

// RateMap evaluates f(B) in kbps.
func (b *BB) RateMap(buffer float64) float64 {
	ladder := b.Manifest.Ladder
	switch {
	case buffer <= b.Reservoir:
		return ladder.Min()
	case buffer >= b.Reservoir+b.Cushion:
		return ladder.Max()
	default:
		frac := (buffer - b.Reservoir) / b.Cushion
		return ladder.Min() + frac*(ladder.Max()-ladder.Min())
	}
}

// Decide implements Controller.
func (b *BB) Decide(s State) Decision {
	level := b.Manifest.Ladder.HighestBelow(b.RateMap(s.Buffer))
	return Decision{Level: level, Startup: defaultStartup(b.Manifest, level, s)}
}
