package abr

import "mpcdash/internal/model"

// RB is the canonical rate-based algorithm (Sec 7.1.2): pick the highest
// level whose bitrate does not exceed p times the predicted throughput
// (harmonic mean of the past 5 chunks, supplied via State.Forecast).
type RB struct {
	Manifest *model.Manifest
	P        float64 // safety factor p; the paper trains p = 1
}

// NewRB returns a Factory for the rate-based controller with safety factor
// p (p ≤ 0 selects the paper's value of 1).
func NewRB(p float64) Factory {
	if p <= 0 {
		p = 1
	}
	return func(m *model.Manifest) Controller {
		return &RB{Manifest: m, P: p}
	}
}

// Name implements Controller.
func (r *RB) Name() string { return "RB" }

// Decide implements Controller.
func (r *RB) Decide(s State) Decision {
	level := 0
	if rate := s.PredictedRate(); rate > 0 {
		level = r.Manifest.Ladder.HighestBelow(r.P * rate)
	}
	return Decision{Level: level, Startup: defaultStartup(r.Manifest, level, s)}
}
