package abr

import "mpcdash/internal/model"

// DashJS ports the rule-based decision logic of the dash.js v1.2 reference
// player described in Sec 6, restricted (as in the paper's evaluation) to
// chunk-boundary decisions and sequential downloads:
//
//   - DownloadRatioRule: compare the play time of the last chunk to its
//     download time. A ratio below 1 means the download could not keep up,
//     so drop to the highest level sustainable at the implied throughput;
//     a ratio comfortably above the next level's relative cost switches up
//     one rung. Reacting to a single chunk sample is what makes the
//     original player oscillate.
//   - InsufficientBufferRule: if the buffer recently touched a low-water
//     mark, force the lowest level until it recovers.
//
// InsufficientBufferRule has priority, mirroring the rule priorities in the
// original code.
type DashJS struct {
	Manifest *model.Manifest
	LowWater float64 // buffer level that trips InsufficientBufferRule (s)
	Recover  float64 // buffer level at which the trip clears (s)

	tripped bool
}

// NewDashJS returns a Factory for the dash.js heuristic; non-positive
// water marks select 4 s / 8 s, one and two chunk durations of the
// reference configuration.
func NewDashJS(lowWater, recover float64) Factory {
	return func(m *model.Manifest) Controller {
		lw, rc := lowWater, recover
		if lw <= 0 {
			lw = m.ChunkDuration
		}
		if rc <= 0 {
			rc = 2 * m.ChunkDuration
		}
		return &DashJS{Manifest: m, LowWater: lw, Recover: rc}
	}
}

// Name implements Controller.
func (d *DashJS) Name() string { return "dash.js" }

// Decide implements Controller. State.Forecast carries the last chunk's
// measured throughput (the simulator feeds measurements through the
// predictor layer); the download ratio of the last chunk at level i is
// throughput/R_i.
func (d *DashJS) Decide(s State) Decision {
	// InsufficientBufferRule with hysteresis.
	if s.Buffer < d.LowWater {
		d.tripped = true
	} else if s.Buffer >= d.Recover {
		d.tripped = false
	}
	if d.tripped {
		return Decision{Level: 0, Startup: defaultStartup(d.Manifest, 0, s)}
	}

	cur := s.Prev
	rate := s.PredictedRate()
	if cur < 0 || rate <= 0 {
		return Decision{Level: 0, Startup: defaultStartup(d.Manifest, 0, s)}
	}

	ladder := d.Manifest.Ladder
	ratio := rate / ladder[cur] // play-time / download-time of the last chunk
	level := cur
	if ratio < 1 {
		// Could not sustain the current level. The original rule drops a
		// single rung when the dip is mild, but bails out to the lowest
		// quality whenever the ratio is below even the next level down's
		// relative cost — a single slow chunk sends the player to the
		// bottom of the ladder.
		switch {
		case cur == 0:
			level = 0
		case ratio < ladder[cur-1]/ladder[cur]:
			level = 0
		default:
			level = cur - 1
		}
	} else {
		// Switch up to the highest level whose relative cost the last
		// chunk's download ratio appears to afford. Jumping several rungs
		// on a single-chunk sample is what makes the original player
		// oscillate (Sec 7.2: "incurs many unnecessary switches").
		for j := cur + 1; j < len(ladder); j++ {
			if ratio > ladder[j]/ladder[cur] {
				level = j
			}
		}
	}
	return Decision{Level: level, Startup: defaultStartup(d.Manifest, level, s)}
}
