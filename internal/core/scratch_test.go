package core

import (
	"math"
	"math/rand"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
)

// stateForBench is a representative steady-state decision point.
func stateForBench() abr.State {
	return abr.State{Chunk: 30, Buffer: 14.2, Prev: 2, Forecast: []float64{1740, 1740, 1740, 1740, 1740}}
}

// refSearch is the original recursive closure formulation of the horizon
// enumeration, kept verbatim as the behavioural reference: the iterative
// scratch-based solver must visit the same nodes in the same order and
// return bit-identical results.
func refSearch(o *Optimizer, k int, buffer float64, prev int, rates []float64, steps int) (int, float64) {
	levels := o.Manifest.Levels()
	qMax := math.Inf(-1)
	for lvl := 0; lvl < levels; lvl++ {
		qMax = math.Max(qMax, o.Quality(o.Manifest.Ladder[lvl]))
	}
	optimistic := make([]float64, steps+1)
	optimistic[steps] = o.TerminalBufferWeight * o.BufferMax
	for d := steps - 1; d >= 0; d-- {
		optimistic[d] = optimistic[d+1] + qMax
	}
	bestFirst, bestQoE := 0, math.Inf(-1)
	var dfs func(d int, buf float64, prevLvl int, acc float64, first int)
	dfs = func(d int, buf float64, prevLvl int, acc float64, first int) {
		if d == steps {
			acc += o.TerminalBufferWeight * buf
			if acc > bestQoE {
				bestQoE = acc
				bestFirst = first
			}
			return
		}
		if !o.DisablePruning && acc+optimistic[d] <= bestQoE {
			return
		}
		for lvl := 0; lvl < levels; lvl++ {
			size := o.Manifest.ChunkSize(k+d, lvl)
			dl := size / rates[d]
			rebuffer := math.Max(dl-buf, 0)
			afterDrain := math.Max(buf-dl, 0) + o.Manifest.ChunkDuration
			wait := math.Max(afterDrain-o.BufferMax, 0)
			gain := o.Quality(o.Manifest.Ladder[lvl]) - o.Weights.Mu*rebuffer
			if prevLvl >= 0 {
				gain -= o.Weights.Lambda * math.Abs(o.Quality(o.Manifest.Ladder[lvl])-o.Quality(o.Manifest.Ladder[prevLvl]))
			}
			f := first
			if d == 0 {
				f = lvl
			}
			dfs(d+1, afterDrain-wait, lvl, acc+gain, f)
		}
	}
	dfs(0, buffer, prev, 0, 0)
	return bestFirst, bestQoE
}

// refPlan wraps refSearch with the original padding logic for steady-state
// solves.
func refPlan(o *Optimizer, k int, buffer float64, prev int, forecast []float64) (int, float64) {
	steps := o.Horizon
	if rem := o.Manifest.ChunkCount - k; rem < steps {
		steps = rem
	}
	rates := make([]float64, steps)
	last := minRate
	for i := 0; i < steps; i++ {
		if i < len(forecast) && forecast[i] > 0 {
			last = forecast[i]
		}
		rates[i] = math.Max(last, minRate)
	}
	return refSearch(o, k, buffer, prev, rates, steps)
}

// TestIterativeSearchMatchesRecursive: the explicit-stack DFS is a
// mechanical transformation of the recursion, so on a large random state
// sweep both must agree exactly — same level, same QoE bits.
func TestIterativeSearchMatchesRecursive(t *testing.T) {
	m := model.EnvivioManifest()
	rng := rand.New(rand.NewSource(11))
	for _, pruning := range []bool{false, true} {
		for _, weights := range []model.Weights{model.Balanced, model.AvoidInstability, {Lambda: 1, Mu: 3000, MuS: 3000}} {
			opt, err := NewOptimizer(m, weights, model.QIdentity, 30, 5)
			if err != nil {
				t.Fatal(err)
			}
			opt.DisablePruning = !pruning
			opt.TerminalBufferWeight = float64(rng.Intn(2)) * 0.1
			var s Scratch
			for i := 0; i < 400; i++ {
				k := rng.Intn(m.ChunkCount)
				buffer := rng.Float64() * 35
				prev := rng.Intn(m.Levels()+1) - 1
				forecast := make([]float64, rng.Intn(6))
				for j := range forecast {
					forecast[j] = rng.Float64() * 6000
				}
				wantLvl, wantQoE := refPlan(opt, k, buffer, prev, forecast)
				gotLvl, ts, gotQoE := opt.PlanScratch(&s, k, buffer, prev, forecast, false)
				if gotLvl != wantLvl || gotQoE != wantQoE { //lint:allow floateq bit-identical QoE is the point: same arithmetic in a different control flow
					t.Fatalf("pruning=%v state(k=%d,B=%.3f,prev=%d,f=%v): iterative (%d, %v) != recursive (%d, %v)",
						pruning, k, buffer, prev, forecast, gotLvl, gotQoE, wantLvl, wantQoE)
				}
				if ts != 0 { //lint:allow floateq steady-state Ts is the exact constant 0
					t.Fatalf("steady-state Ts = %v, want 0", ts)
				}
			}
		}
	}
}

// TestPlanMatchesPlanScratch: the pooled entry point and an explicit
// scratch produce identical results.
func TestPlanMatchesPlanScratch(t *testing.T) {
	opt := newOpt(t, 5)
	var s Scratch
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := rng.Intn(65)
		buffer := rng.Float64() * 30
		prev := rng.Intn(6) - 1
		forecast := []float64{rng.Float64() * 5000}
		startup := i%4 == 0 && k == 0
		l1, t1, q1 := opt.Plan(k, buffer, prev, forecast, startup)
		l2, t2, q2 := opt.PlanScratch(&s, k, buffer, prev, forecast, startup)
		if l1 != l2 || t1 != t2 || q1 != q2 { //lint:allow floateq same solver, same inputs: bit-identical by construction
			t.Fatalf("Plan (%d,%v,%v) != PlanScratch (%d,%v,%v)", l1, t1, q1, l2, t2, q2)
		}
	}
}

// TestPlanClampsPreviousLevel: a previous level at or beyond the ladder
// size must clamp to the top rung — Table.Lookup already clamps the same
// input, and the exact solver used to panic with index out of range.
func TestPlanClampsPreviousLevel(t *testing.T) {
	opt := newOpt(t, 5)
	top := opt.Manifest.Levels() - 1
	wantLvl, _, wantQoE := opt.Plan(10, 14.2, top, []float64{1740}, false)
	for _, prev := range []int{top + 1, top + 37, 1 << 20} {
		gotLvl, _, gotQoE := opt.Plan(10, 14.2, prev, []float64{1740}, false)
		if gotLvl != wantLvl || gotQoE != wantQoE { //lint:allow floateq clamped input must take the identical solve path
			t.Errorf("prev=%d: (%d, %v), want clamp to prev=%d: (%d, %v)", prev, gotLvl, gotQoE, top, wantLvl, wantQoE)
		}
	}
}

// TestStartupGridExact: the Ts grid is generated by integer multiples of
// TsStep, so a non-dyadic step (0.1) cannot drift — the chosen Ts is
// always bit-identical to float64(i)*TsStep for some integer i, and the
// final grid point is reachable.
func TestStartupGridExact(t *testing.T) {
	opt := newOpt(t, 5)
	opt.TsStep = 0.1
	opt.TsMax = 30
	// MuS = 0 makes startup delay free; the tie rule prefers the larger
	// Ts, so the solver must reach the last grid point exactly.
	opt.Weights.MuS = 0
	_, ts, _ := opt.Plan(0, 0, -1, []float64{1740}, true)
	if want := float64(300) * 0.1; ts != want { //lint:allow floateq the grid point must be the exact product, not an accumulated sum
		t.Errorf("Ts = %v, want the exact final grid point %v", ts, want)
	}
	// Sanity: every grid point is an exact multiple of the step.
	opt.Weights.MuS = 3000
	_, ts, _ = opt.Plan(0, 0, -1, []float64{900}, true)
	i := math.Round(ts / 0.1)
	if ts != float64(i)*0.1 { //lint:allow floateq grid points are defined as exact products
		t.Errorf("Ts = %v is not an exact multiple of the 0.1 grid step", ts)
	}
}

// TestPlanScratchZeroAllocs is the allocation budget of the tentpole: the
// steady-state decision with a warmed Scratch performs zero heap
// allocations per solve.
func TestPlanScratchZeroAllocs(t *testing.T) {
	opt := newOpt(t, 5)
	var s Scratch
	forecast := []float64{1740, 1740, 1740, 1740, 1740}
	opt.PlanScratch(&s, 30, 14.2, 2, forecast, false) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		opt.PlanScratch(&s, 30, 14.2, 2, forecast, false)
	})
	if allocs != 0 {
		t.Errorf("steady-state PlanScratch allocates %.2f objects/op, want 0", allocs)
	}
	// The startup grid search reuses the same scratch across the whole
	// Ts sweep and must be allocation-free too.
	opt.PlanScratch(&s, 0, 0, -1, forecast, true)
	allocs = testing.AllocsPerRun(50, func() {
		opt.PlanScratch(&s, 0, 0, -1, forecast, true)
	})
	if allocs != 0 {
		t.Errorf("startup PlanScratch allocates %.2f objects/op, want 0", allocs)
	}
}

// TestMPCDecideZeroAllocs: the full controller Decide path (the per-chunk
// hot path of every simulated session) stays allocation-free once its
// scratch is warm.
func TestMPCDecideZeroAllocs(t *testing.T) {
	ctrl := NewMPC(model.Balanced, model.QIdentity, 30, 5)(model.EnvivioManifest())
	st := stateForBench()
	ctrl.Decide(st) // warm the controller scratch
	allocs := testing.AllocsPerRun(200, func() { ctrl.Decide(st) })
	if allocs != 0 {
		t.Errorf("steady-state MPC.Decide allocates %.2f objects/op, want 0", allocs)
	}
}
