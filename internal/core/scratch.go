package core

import "sync"

// Scratch holds the reusable working memory for one Plan solve: the padded
// horizon forecast, the branch-and-bound optimistic bounds, the per-level
// quality values hoisted out of the enumeration, and the explicit
// depth-first traversal stacks that replace the recursive closure. A
// Scratch grows to fit the largest (horizon, ladder) it has seen and is
// then reused allocation-free; the zero value is ready to use.
//
// A Scratch is owned by exactly one goroutine at a time. Optimizer.Plan
// draws one from an internal pool, so it stays safe for concurrent use;
// hot paths that make one decision per chunk (the MPC controller, the
// FastMPC table builder workers) hold their own Scratch and call
// Optimizer.PlanScratch directly for a zero-allocation steady state.
type Scratch struct {
	rates      []float64 // horizon forecast, padded and floored at minRate
	optimistic []float64 // optimistic[d]: QoE bound attainable from depth d
	qual       []float64 // Quality(Ladder[lvl]) per level, computed per solve

	// Iterative DFS stacks, indexed by depth d ∈ [0, steps].
	buf    []float64 // buffer level entering depth d
	acc    []float64 // QoE accumulated entering depth d
	prv    []int     // previous level entering depth d (−1 = none)
	choice []int     // level currently taken at depth d
	next   []int     // next level to try at depth d
}

// grow sizes every buffer for a solve of the given depth and ladder size,
// reusing existing capacity.
func (s *Scratch) grow(steps, levels int) {
	s.rates = growFloats(s.rates, steps)
	s.optimistic = growFloats(s.optimistic, steps+1)
	s.qual = growFloats(s.qual, levels)
	s.buf = growFloats(s.buf, steps+1)
	s.acc = growFloats(s.acc, steps+1)
	s.prv = growInts(s.prv, steps+1)
	s.choice = growInts(s.choice, steps+1)
	s.next = growInts(s.next, steps+1)
}

func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// scratchPool backs the allocation-compatible Plan entry point: callers
// that do not manage a Scratch of their own share pooled ones, so repeated
// Plan calls stay allocation-free in the steady state while remaining safe
// to issue from many goroutines (the table builder's worker fan-out).
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}
