package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

func newOpt(t *testing.T, horizon int) *Optimizer {
	t.Helper()
	opt, err := NewOptimizer(model.EnvivioManifest(), model.Balanced, model.QIdentity, 30, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

func TestNewOptimizerValidation(t *testing.T) {
	if _, err := NewOptimizer(nil, model.Balanced, model.QIdentity, 30, 5); err == nil {
		t.Error("expected error for nil manifest")
	}
	if _, err := NewOptimizer(model.EnvivioManifest(), model.Balanced, model.QIdentity, 0, 5); err == nil {
		t.Error("expected error for zero BufferMax")
	}
	opt, err := NewOptimizer(model.EnvivioManifest(), model.Balanced, nil, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Horizon != 5 {
		t.Errorf("default horizon = %d, want 5", opt.Horizon)
	}
	if opt.Quality == nil {
		t.Error("nil quality should default to identity")
	}
}

func TestPlanAmpleBandwidth(t *testing.T) {
	opt := newOpt(t, 5)
	// Huge throughput, full buffer, previous at top: stay at top.
	lvl, _, _ := opt.Plan(10, 30, 4, []float64{50000}, false)
	if lvl != 4 {
		t.Errorf("ample bandwidth plan = %d, want 4", lvl)
	}
}

func TestPlanStarvedBandwidth(t *testing.T) {
	opt := newOpt(t, 5)
	// Tiny throughput, empty buffer: rebuffer dominates, pick the lowest.
	lvl, _, _ := opt.Plan(10, 0, 4, []float64{50}, false)
	if lvl != 0 {
		t.Errorf("starved plan = %d, want 0", lvl)
	}
}

func TestPlanZeroForecastFallsBack(t *testing.T) {
	opt := newOpt(t, 5)
	lvl, _, _ := opt.Plan(10, 2, 2, []float64{0, 0}, false)
	if lvl != 0 {
		t.Errorf("unknown-forecast plan = %d, want 0", lvl)
	}
}

func TestPlanSwitchingPenaltyDamping(t *testing.T) {
	// With a large λ, MPC must refuse a one-chunk opportunistic jump that a
	// pure rate-based policy would take.
	m := model.EnvivioManifest()
	w := model.Weights{Lambda: 50, Mu: 3000, MuS: 3000}
	opt, err := NewOptimizer(m, w, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	lvl, _, _ := opt.Plan(10, 25, 0, []float64{3500}, false)
	if lvl == 4 {
		t.Error("high-λ plan jumped the full ladder despite switching penalty")
	}
}

func TestPlanHorizonTruncation(t *testing.T) {
	opt := newOpt(t, 5)
	// Final chunk: horizon must truncate to 1 without panicking.
	lvl, _, qoe := opt.Plan(64, 20, 2, []float64{2500}, false)
	if lvl < 0 || lvl > 4 {
		t.Fatalf("level out of range: %d", lvl)
	}
	if math.IsInf(qoe, 0) || math.IsNaN(qoe) {
		t.Fatalf("qoe = %v", qoe)
	}
	// Past the end: degenerate, must not panic.
	lvl, ts, qoe := opt.Plan(65, 20, 2, []float64{2500}, false)
	if lvl != 0 || ts != 0 || qoe != 0 {
		t.Errorf("past-end plan = (%d,%v,%v), want zeros", lvl, ts, qoe)
	}
}

// TestSearchMatchesBruteForce verifies the branch-and-bound enumeration
// against a plain brute-force evaluation of all level sequences.
func TestSearchMatchesBruteForce(t *testing.T) {
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(m, model.Balanced, model.QIdentity, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		buffer := rng.Float64() * 30
		prev := rng.Intn(5)
		rates := []float64{
			100 + rng.Float64()*4000,
			100 + rng.Float64()*4000,
			100 + rng.Float64()*4000,
		}
		k := rng.Intn(m.ChunkCount - 3)
		_, _, got := opt.Plan(k, buffer, prev, rates, false)

		// Brute force over 5^3 plans.
		best := math.Inf(-1)
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				for c := 0; c < 5; c++ {
					plan := []int{a, b, c}
					buf := buffer
					pl := prev
					total := 0.0
					for d, lvl := range plan {
						size := m.ChunkSize(k+d, lvl)
						dl := size / rates[d]
						reb := math.Max(dl-buf, 0)
						after := math.Max(buf-dl, 0) + m.ChunkDuration
						wait := math.Max(after-30, 0)
						buf = after - wait
						total += m.Ladder[lvl] - 3000*reb
						if pl >= 0 {
							total -= math.Abs(m.Ladder[lvl] - m.Ladder[pl])
						}
						pl = lvl
					}
					if total > best {
						best = total
					}
				}
			}
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("iter %d: search QoE %v != brute force %v", iter, got, best)
		}
	}
}

// TestTheorem1Monotonicity: for any fixed plan, horizon QoE is
// non-decreasing in throughput, which is the heart of the robust-MPC
// equivalence proof — the worst case over [C_lo, C_hi] is at C_lo.
func TestTheorem1Monotonicity(t *testing.T) {
	opt := newOpt(t, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buffer := rng.Float64() * 30
		prev := rng.Intn(5)
		lo := 50 + rng.Float64()*2000
		hi := lo * (1 + rng.Float64())
		_, _, qLo := opt.Plan(10, buffer, prev, []float64{lo}, false)
		_, _, qHi := opt.Plan(10, buffer, prev, []float64{hi}, false)
		// The optimal value is monotone because every fixed plan is.
		return qHi >= qLo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1MaxMin verifies the full claim numerically: solving max-min
// over a sampled throughput interval equals solving regular MPC at the
// interval's lower bound.
func TestTheorem1MaxMin(t *testing.T) {
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := model.Balanced
	rng := rand.New(rand.NewSource(5))
	const N = 3
	for iter := 0; iter < 50; iter++ {
		buffer := rng.Float64() * 30
		prev := rng.Intn(5)
		lo := 100 + rng.Float64()*2000
		hi := lo * (1 + rng.Float64())
		k := 2

		evalPlan := func(plan []int, rate float64) float64 {
			buf := buffer
			pl := prev
			total := 0.0
			for d, lvl := range plan {
				size := m.ChunkSize(k+d, lvl)
				dl := size / rate
				reb := math.Max(dl-buf, 0)
				after := math.Max(buf-dl, 0) + m.ChunkDuration
				wait := math.Max(after-30, 0)
				buf = after - wait
				total += m.Ladder[lvl] - w.Mu*reb
				if pl >= 0 {
					total -= w.Lambda * math.Abs(m.Ladder[lvl]-m.Ladder[pl])
				}
				pl = lvl
			}
			return total
		}

		// Brute-force max over plans of min over sampled C in [lo, hi].
		var plans [][]int
		var rec func([]int)
		rec = func(p []int) {
			if len(p) == N {
				plans = append(plans, append([]int(nil), p...))
				return
			}
			for l := 0; l < 5; l++ {
				rec(append(p, l))
			}
		}
		rec(nil)
		maxMin := math.Inf(-1)
		for _, p := range plans {
			worst := math.Inf(1)
			for i := 0; i <= 20; i++ {
				c := lo + (hi-lo)*float64(i)/20
				if v := evalPlan(p, c); v < worst {
					worst = v
				}
			}
			if worst > maxMin {
				maxMin = worst
			}
		}
		// Max over plans at C = lo.
		maxAtLo := math.Inf(-1)
		for _, p := range plans {
			if v := evalPlan(p, lo); v > maxAtLo {
				maxAtLo = v
			}
		}
		if math.Abs(maxMin-maxAtLo) > 1e-6 {
			t.Fatalf("iter %d: max-min %v != max at lower bound %v", iter, maxMin, maxAtLo)
		}
	}
}

func TestMPCControllerNames(t *testing.T) {
	m := model.EnvivioManifest()
	if got := NewMPC(model.Balanced, model.QIdentity, 30, 5)(m).Name(); got != "MPC" {
		t.Errorf("Name = %q", got)
	}
	if got := NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)(m).Name(); got != "RobustMPC" {
		t.Errorf("Name = %q", got)
	}
	if got := NewNamedMPC("MPC-OPT", model.Balanced, model.QIdentity, 30, 5, false)(m).Name(); got != "MPC-OPT" {
		t.Errorf("Name = %q", got)
	}
}

func TestRobustMPCUsesLowerBound(t *testing.T) {
	m := model.EnvivioManifest()
	robust := NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)(m)
	regular := NewMPC(model.Balanced, model.QIdentity, 30, 5)(m)
	s := abr.State{
		Chunk:    10,
		Buffer:   8,
		Prev:     2,
		Forecast: []float64{2500, 2500, 2500, 2500, 2500},
		Lower:    []float64{600, 600, 600, 600, 600},
	}
	r := robust.Decide(s).Level
	g := regular.Decide(s).Level
	if r > g {
		t.Errorf("robust picked %d above regular %d", r, g)
	}
	// With the optimistic forecast the regular MPC goes high; the robust
	// one must match MPC fed the lower bound directly.
	sLow := s
	sLow.Forecast = s.Lower
	sLow.Lower = nil
	if want := regular.Decide(sLow).Level; r != want {
		t.Errorf("robust = %d, regular@lower = %d (Theorem 1 equivalence)", r, want)
	}
}

func TestStartupPlanTradeoff(t *testing.T) {
	// With µ = µs a second of startup delay is exactly fungible with a
	// second of rebuffering, so the tie resolves to Ts = 0. Make rebuffer
	// strictly worse to force a positive startup delay on a slow link.
	w := model.Weights{Lambda: 1, Mu: 6000, MuS: 3000}
	opt, err := NewOptimizer(model.EnvivioManifest(), w, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	lvl, ts, _ := opt.Plan(0, 0, -1, []float64{300}, true)
	if ts <= 0 {
		t.Errorf("startup Ts = %v, want > 0 on a slow link", ts)
	}
	if ts > opt.TsMax {
		t.Errorf("Ts = %v exceeds TsMax %v", ts, opt.TsMax)
	}
	if lvl != 0 {
		t.Errorf("startup level = %d, want 0 on a slow link", lvl)
	}
	// Fast link: minimal startup delay.
	_, tsFast, _ := opt.Plan(0, 0, -1, []float64{20000}, true)
	if tsFast > ts {
		t.Errorf("fast-link Ts %v should not exceed slow-link Ts %v", tsFast, ts)
	}
}

// TestTiesBreakLow: when the forecast is unknown and everything rebuffers
// equally badly, the lower level must win ties (ascending iteration).
func TestTiesBreakLow(t *testing.T) {
	m, err := model.NewCBRManifest(model.Ladder{1000, 2000}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := model.Weights{Lambda: 0, Mu: 0, MuS: 0} // no penalties: all QoE from quality
	opt, err := NewOptimizer(m, w, func(float64) float64 { return 1 }, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	lvl, _, _ := opt.Plan(0, 10, -1, []float64{1500}, false)
	if lvl != 0 {
		t.Errorf("tie broke to %d, want 0", lvl)
	}
}

// TestTerminalBufferKeepsMoreBuffer: rewarding terminal buffer must leave
// the player with more buffer on average over real sessions — that is the
// refinement's entire purpose. (Per-decision conservatism is not a theorem:
// switching-cost interplay can locally raise the first move.)
func TestTerminalBufferKeepsMoreBuffer(t *testing.T) {
	m := model.EnvivioManifest()
	guarded := NewTerminalBufferMPC("MPC+TB", model.Balanced, model.QIdentity, 30, 5, false, 300)
	if guarded(m).Name() != "MPC+TB" {
		t.Errorf("Name = %q", guarded(m).Name())
	}
	avgBuffer := func(factory abr.Factory) float64 {
		var total float64
		var n int
		for seed := int64(0); seed < 4; seed++ {
			tr := trace.GenHSDPA(seed, m.Duration()+120)
			res, err := sim.Run(m, tr, factory(m), predictor.NewHarmonicMean(5), sim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Chunks {
				total += c.BufferAfter
				n++
			}
		}
		return total / float64(n)
	}
	plain := avgBuffer(NewMPC(model.Balanced, model.QIdentity, 30, 5))
	tb := avgBuffer(guarded)
	if tb <= plain {
		t.Errorf("terminal-buffer MPC kept %v s of buffer vs plain %v s; expected more", tb, plain)
	}
}

// TestTerminalBufferZeroIsIdentity: weight 0 must reproduce the paper's
// controller decision-for-decision.
func TestTerminalBufferZeroIsIdentity(t *testing.T) {
	m := model.EnvivioManifest()
	plain := NewMPC(model.Balanced, model.QIdentity, 30, 5)(m)
	zero := NewTerminalBufferMPC("z", model.Balanced, model.QIdentity, 30, 5, false, 0)(m)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		s := abr.State{
			Chunk:    rng.Intn(60),
			Buffer:   rng.Float64() * 30,
			Prev:     rng.Intn(5),
			Forecast: []float64{100 + rng.Float64()*4000},
		}
		if plain.Decide(s).Level != zero.Decide(s).Level {
			t.Fatalf("weight-0 decision differs at %+v", s)
		}
	}
}

// TestPruningOffSameAnswer: branch-and-bound is a pure optimization.
func TestPruningOffSameAnswer(t *testing.T) {
	m := model.EnvivioManifest()
	a, err := NewOptimizer(m, model.Balanced, model.QIdentity, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOptimizer(m, model.Balanced, model.QIdentity, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.DisablePruning = true
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 150; i++ {
		buffer := rng.Float64() * 30
		prev := rng.Intn(5)
		rates := []float64{100 + rng.Float64()*4000}
		k := rng.Intn(50)
		la, _, qa := a.Plan(k, buffer, prev, rates, false)
		lb, _, qb := b.Plan(k, buffer, prev, rates, false)
		if la != lb || math.Abs(qa-qb) > 1e-9 {
			t.Fatalf("pruning changed the answer: (%d,%v) vs (%d,%v)", la, qa, lb, qb)
		}
	}
}

// TestPlanUsesVBRSizes: with variable chunk sizes the optimizer must plan
// against the true d_k(R), not the nominal L·R — a fat upcoming chunk at a
// marginal rate should push the choice down relative to a lean one.
func TestPlanUsesVBRSizes(t *testing.T) {
	lean, err := model.NewVBRManifest(model.EnvivioLadder(), 65, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find two chunks with very different multipliers.
	fat, thin := -1, -1
	for k := 0; k < 60; k++ {
		if lean.SizeMultiplier(k) > 1.4 && fat == -1 {
			fat = k
		}
		if lean.SizeMultiplier(k) < 0.7 && thin == -1 {
			thin = k
		}
	}
	if fat == -1 || thin == -1 {
		t.Skip("seed produced no contrasting chunks")
	}
	opt, err := NewOptimizer(lean, model.Balanced, model.QIdentity, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal state: enough buffer for a nominal chunk, not a fat one.
	rate := 1000.0
	buffer := 4.2
	fatLvl, _, _ := opt.Plan(fat, buffer, 2, []float64{rate}, false)
	thinLvl, _, _ := opt.Plan(thin, buffer, 2, []float64{rate}, false)
	if fatLvl > thinLvl {
		t.Errorf("fat chunk (×%.2f) got level %d above thin chunk (×%.2f) level %d",
			lean.SizeMultiplier(fat), fatLvl, lean.SizeMultiplier(thin), thinLvl)
	}
}

// TestHorizonRatesPadding: short forecasts extend with the last value, and
// non-positive entries inherit their predecessor. The padded rates live in
// the solve's Scratch, where the test can observe them.
func TestHorizonRatesPadding(t *testing.T) {
	opt := newOpt(t, 5)
	var s Scratch
	opt.PlanScratch(&s, 0, 10, -1, []float64{1000, 0, 2000}, false)
	want := []float64{1000, 1000, 2000, 2000, 2000}
	for i := range want {
		if math.Abs(s.rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", s.rates[:len(want)], want)
		}
	}
	opt.PlanScratch(&s, 0, 10, -1, nil, false)
	for _, r := range s.rates {
		if r <= 0 {
			t.Errorf("empty forecast should floor at a positive epsilon, got %v", r)
		}
	}
}
