package core

import (
	"mpcdash/internal/abr"
	"mpcdash/internal/model"
)

// MPC is the receding-horizon controller of Algorithm 1: at each chunk
// boundary it solves the horizon QoE maximization with the current
// throughput forecast and applies the first bitrate. With Robust set it
// consumes the forecast's lower bound instead (State.Lower), which by
// Theorem 1 solves the max-min robust problem exactly.
type MPC struct {
	Opt    *Optimizer
	Robust bool
	Label  string // display name; defaults to "MPC" / "RobustMPC"

	// scratch is the controller's reusable solver memory: one MPC drives
	// one session sequentially, so holding it here makes the per-chunk
	// decision allocation-free.
	scratch Scratch
}

// NewMPC returns a Factory for the basic MPC controller with horizon N
// (N ≤ 0 selects the paper's 5) under the given QoE weights and buffer cap.
func NewMPC(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) abr.Factory {
	return newMPCFactory(w, q, bufferMax, horizon, false, "")
}

// NewRobustMPC returns a Factory for RobustMPC (Sec 4.3).
func NewRobustMPC(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) abr.Factory {
	return newMPCFactory(w, q, bufferMax, horizon, true, "")
}

// NewNamedMPC is NewMPC with an explicit display label (e.g. "MPC-OPT" when
// paired with the oracle predictor).
func NewNamedMPC(label string, w model.Weights, q model.QualityFunc, bufferMax float64, horizon int, robust bool) abr.Factory {
	return newMPCFactory(w, q, bufferMax, horizon, robust, label)
}

func newMPCFactory(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int, robust bool, label string) abr.Factory {
	return func(m *model.Manifest) abr.Controller {
		opt, err := NewOptimizer(m, w, q, bufferMax, horizon)
		if err != nil {
			panic(err) // factories are built from validated configuration
		}
		return &MPC{Opt: opt, Robust: robust, Label: label}
	}
}

// NewTerminalBufferMPC returns an MPC factory whose horizon objective also
// rewards the buffer left at the end of the window with the given
// kbps-per-second weight — the anti-myopia refinement discussed in
// DESIGN.md. weight = 0 reproduces the paper's controller.
func NewTerminalBufferMPC(label string, w model.Weights, q model.QualityFunc, bufferMax float64, horizon int, robust bool, weight float64) abr.Factory {
	return func(m *model.Manifest) abr.Controller {
		opt, err := NewOptimizer(m, w, q, bufferMax, horizon)
		if err != nil {
			panic(err)
		}
		opt.TerminalBufferWeight = weight
		return &MPC{Opt: opt, Robust: robust, Label: label}
	}
}

// Name implements abr.Controller.
func (c *MPC) Name() string {
	if c.Label != "" {
		return c.Label
	}
	if c.Robust {
		return "RobustMPC"
	}
	return "MPC"
}

// Decide implements abr.Controller.
func (c *MPC) Decide(s abr.State) abr.Decision {
	forecast := s.Forecast
	if c.Robust && len(s.Lower) > 0 {
		forecast = s.Lower
	}
	level, ts, _ := c.Opt.PlanScratch(&c.scratch, s.Chunk, s.Buffer, s.Prev, forecast, s.Startup)
	return abr.Decision{Level: level, Startup: ts}
}
