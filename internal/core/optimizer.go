// Package core implements the paper's primary contribution: the model
// predictive control approach to bitrate adaptation (Sec 4). An Optimizer
// solves the horizon problem QOE_MAX_STEADY (and the startup variant
// QOE_MAX with the joint startup-delay decision) by exact enumeration with
// branch-and-bound pruning — the discrete program is small enough that
// enumeration is the exact counterpart of the paper's CPLEX solves. The
// MPC controller applies the first decision and recedes the horizon
// (Algorithm 1); RobustMPC feeds the throughput lower bound instead of the
// point estimate, which Theorem 1 proves is the exact max-min solution.
package core

import (
	"fmt"
	"math"

	"mpcdash/internal/model"
)

// minRate floors throughput predictions so a zero forecast yields an
// enormous-but-finite rebuffer penalty instead of a division by zero; the
// optimizer then naturally retreats to the lowest level.
const minRate = 1e-3

// Optimizer solves the horizon QoE maximization exactly.
type Optimizer struct {
	Manifest  *model.Manifest
	Weights   model.Weights
	Quality   model.QualityFunc
	BufferMax float64 // B_max seconds
	Horizon   int     // N, look-ahead chunks (paper: 5)

	// Startup-delay grid for the f_stmpc problem: Ts is searched over
	// multiples of TsStep in [0, TsMax].
	TsStep float64 // default 0.5 s
	TsMax  float64 // default BufferMax

	// DisablePruning turns off the branch-and-bound cut, forcing full
	// enumeration. The result is identical; the flag exists for the
	// ablation benchmark quantifying what the bound saves.
	DisablePruning bool

	// TerminalBufferWeight rewards the buffer level left at the end of the
	// horizon (kbps-equivalent per second). Receding-horizon control is
	// myopic: a plan may spend the whole buffer on quality inside the
	// window and leave nothing for what follows. A small terminal value
	// (e.g. 0.1·µ) counteracts that; 0 reproduces the paper exactly.
	TerminalBufferWeight float64
}

// NewOptimizer returns an optimizer with the paper's defaults for any
// unset tuning field (horizon 5, Ts grid 0.5 s up to BufferMax).
func NewOptimizer(m *model.Manifest, w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) (*Optimizer, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil manifest")
	}
	if q == nil {
		q = model.QIdentity
	}
	if bufferMax <= 0 {
		return nil, fmt.Errorf("core: BufferMax must be positive, got %v", bufferMax)
	}
	if horizon <= 0 {
		horizon = 5
	}
	return &Optimizer{
		Manifest:  m,
		Weights:   w,
		Quality:   q,
		BufferMax: bufferMax,
		Horizon:   horizon,
		TsStep:    0.5,
		TsMax:     bufferMax,
	}, nil
}

// Plan solves the horizon problem starting at chunk k with buffer B_k,
// previous level prev (−1 if none) and the per-chunk throughput forecast.
// With startup set it also optimizes the startup delay Ts (B_k = Ts,
// objective −µs·Ts). It returns the optimal first level, the chosen Ts
// (0 in steady state) and the achieved horizon QoE.
//
// Plan draws its working memory from a shared pool, so it allocates
// nothing in the steady state and is safe for concurrent use. Callers
// making one decision per chunk should hold a Scratch and use PlanScratch
// for a strictly allocation-free hot path.
//
//mpc:noalloc
func (o *Optimizer) Plan(k int, buffer float64, prev int, forecast []float64, startup bool) (level int, ts float64, qoe float64) {
	s := scratchPool.Get().(*Scratch)
	level, ts, qoe = o.PlanScratch(s, k, buffer, prev, forecast, startup)
	scratchPool.Put(s)
	return level, ts, qoe
}

// PlanScratch is Plan solving into caller-owned working memory: with a
// reused Scratch the steady-state decision performs zero heap allocations.
// The Scratch must not be shared between concurrent solves. A nil Scratch
// delegates to the pooled Plan entry point so the hot path itself never
// constructs one.
//
//mpc:noalloc
func (o *Optimizer) PlanScratch(s *Scratch, k int, buffer float64, prev int, forecast []float64, startup bool) (level int, ts float64, qoe float64) {
	if s == nil {
		// Plan always passes a pooled non-nil Scratch back in, so this
		// cannot recurse.
		return o.Plan(k, buffer, prev, forecast, startup)
	}
	steps := o.Horizon
	if rem := o.Manifest.ChunkCount - k; rem < steps {
		steps = rem
	}
	if steps <= 0 {
		return 0, 0, 0
	}
	levels := o.Manifest.Levels()
	// Lookup-table callers clamp an out-of-ladder previous level; the exact
	// solver must agree rather than index out of range.
	if prev >= levels {
		prev = levels - 1
	}
	s.grow(steps, levels)

	// Hoist the per-level quality out of the enumeration: the DFS visits
	// O(levels^steps) nodes, each of which previously paid two QualityFunc
	// calls.
	qMax := math.Inf(-1)
	for lvl := 0; lvl < levels; lvl++ {
		s.qual[lvl] = o.Quality(o.Manifest.Ladder[lvl])
		qMax = math.Max(qMax, s.qual[lvl])
	}

	// Pad or truncate the forecast to exactly steps entries, extending with
	// the final value and flooring at minRate.
	last := minRate
	for i := 0; i < steps; i++ {
		if i < len(forecast) && forecast[i] > 0 {
			last = forecast[i]
		}
		s.rates[i] = math.Max(last, minRate)
	}

	// optimistic[d] bounds the QoE attainable from depth d onward,
	// including the terminal buffer reward (at most the buffer cap).
	s.optimistic[steps] = o.TerminalBufferWeight * o.BufferMax
	for d := steps - 1; d >= 0; d-- {
		s.optimistic[d] = s.optimistic[d+1] + qMax
	}

	if !startup {
		lvl, q := o.search(s, k, buffer, prev, steps, levels)
		return lvl, 0, q
	}

	// Startup: grid-search Ts jointly with the bitrate plan. The grid is
	// indexed by integer multiple — accumulating t += step in floating
	// point drifts for non-dyadic steps and can skip the final point.
	bestLevel, bestTs, bestQoE := 0, 0.0, math.Inf(-1)
	step := o.TsStep
	if step <= 0 {
		step = 0.5
	}
	max := o.TsMax
	if max <= 0 {
		max = o.BufferMax
	}
	n := int((max + 1e-9) / step)
	for i := 0; i <= n; i++ {
		t := float64(i) * step
		lvl, q := o.search(s, k, t, prev, steps, levels)
		q -= o.Weights.MuS * t
		// With µ = µs, trading startup delay for first-chunk stall is QoE
		// neutral; among (near-)ties prefer the larger Ts, i.e. start
		// playback only when it can proceed without an immediate stall.
		if q > bestQoE+1e-6 || (q > bestQoE-1e-6 && t > bestTs) {
			bestLevel, bestTs, bestQoE = lvl, t, q
		}
	}
	return bestLevel, bestTs, bestQoE
}

// search exhaustively maximizes the horizon QoE by depth-first enumeration
// with branch-and-bound: a partial plan is abandoned when even rebuffer-free
// maximum-quality completion cannot beat the incumbent. Ties break toward
// the lower level because ascending iteration only replaces on strict
// improvement. The traversal is iterative over the Scratch's explicit
// stacks — same visit order as the recursive formulation, node for node,
// without the closure and call-frame allocations.
//
//mpc:noalloc
func (o *Optimizer) search(s *Scratch, k int, buffer float64, prev int, steps, levels int) (int, float64) {
	man := o.Manifest
	chunkDur := man.ChunkDuration
	bufMax := o.BufferMax
	mu, lambda := o.Weights.Mu, o.Weights.Lambda
	prune := !o.DisablePruning
	rates, qual, optimistic := s.rates, s.qual, s.optimistic
	buf, acc, prv, choice, next := s.buf, s.acc, s.prv, s.choice, s.next

	bestFirst, bestQoE := 0, math.Inf(-1)
	buf[0], acc[0], prv[0] = buffer, 0, prev
	next[0] = 0
	d := 0
	for d >= 0 {
		if d == steps {
			total := acc[d] + o.TerminalBufferWeight*buf[d]
			if total > bestQoE {
				bestQoE = total
				bestFirst = choice[0]
			}
			d--
			continue
		}
		if next[d] == 0 && prune && acc[d]+optimistic[d] <= bestQoE {
			d-- // even a perfect completion cannot win
			continue
		}
		lvl := next[d]
		if lvl == levels {
			d-- // all levels tried at this depth
			continue
		}
		next[d] = lvl + 1

		size := man.ChunkSize(k+d, lvl)
		dl := size / rates[d]
		rebuffer := math.Max(dl-buf[d], 0)
		afterDrain := math.Max(buf[d]-dl, 0) + chunkDur
		wait := math.Max(afterDrain-bufMax, 0)

		gain := qual[lvl] - mu*rebuffer
		if p := prv[d]; p >= 0 {
			gain -= lambda * math.Abs(qual[lvl]-qual[p])
		}
		choice[d] = lvl
		buf[d+1] = afterDrain - wait
		acc[d+1] = acc[d] + gain
		prv[d+1] = lvl
		next[d+1] = 0
		d++
	}
	return bestFirst, bestQoE
}
