// Package core implements the paper's primary contribution: the model
// predictive control approach to bitrate adaptation (Sec 4). An Optimizer
// solves the horizon problem QOE_MAX_STEADY (and the startup variant
// QOE_MAX with the joint startup-delay decision) by exact enumeration with
// branch-and-bound pruning — the discrete program is small enough that
// enumeration is the exact counterpart of the paper's CPLEX solves. The
// MPC controller applies the first decision and recedes the horizon
// (Algorithm 1); RobustMPC feeds the throughput lower bound instead of the
// point estimate, which Theorem 1 proves is the exact max-min solution.
package core

import (
	"fmt"
	"math"

	"mpcdash/internal/model"
)

// minRate floors throughput predictions so a zero forecast yields an
// enormous-but-finite rebuffer penalty instead of a division by zero; the
// optimizer then naturally retreats to the lowest level.
const minRate = 1e-3

// Optimizer solves the horizon QoE maximization exactly.
type Optimizer struct {
	Manifest  *model.Manifest
	Weights   model.Weights
	Quality   model.QualityFunc
	BufferMax float64 // B_max seconds
	Horizon   int     // N, look-ahead chunks (paper: 5)

	// Startup-delay grid for the f_stmpc problem: Ts is searched over
	// multiples of TsStep in [0, TsMax].
	TsStep float64 // default 0.5 s
	TsMax  float64 // default BufferMax

	// DisablePruning turns off the branch-and-bound cut, forcing full
	// enumeration. The result is identical; the flag exists for the
	// ablation benchmark quantifying what the bound saves.
	DisablePruning bool

	// TerminalBufferWeight rewards the buffer level left at the end of the
	// horizon (kbps-equivalent per second). Receding-horizon control is
	// myopic: a plan may spend the whole buffer on quality inside the
	// window and leave nothing for what follows. A small terminal value
	// (e.g. 0.1·µ) counteracts that; 0 reproduces the paper exactly.
	TerminalBufferWeight float64
}

// NewOptimizer returns an optimizer with the paper's defaults for any
// unset tuning field (horizon 5, Ts grid 0.5 s up to BufferMax).
func NewOptimizer(m *model.Manifest, w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) (*Optimizer, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil manifest")
	}
	if q == nil {
		q = model.QIdentity
	}
	if bufferMax <= 0 {
		return nil, fmt.Errorf("core: BufferMax must be positive, got %v", bufferMax)
	}
	if horizon <= 0 {
		horizon = 5
	}
	return &Optimizer{
		Manifest:  m,
		Weights:   w,
		Quality:   q,
		BufferMax: bufferMax,
		Horizon:   horizon,
		TsStep:    0.5,
		TsMax:     bufferMax,
	}, nil
}

// Plan solves the horizon problem starting at chunk k with buffer B_k,
// previous level prev (−1 if none) and the per-chunk throughput forecast.
// With startup set it also optimizes the startup delay Ts (B_k = Ts,
// objective −µs·Ts). It returns the optimal first level, the chosen Ts
// (0 in steady state) and the achieved horizon QoE.
func (o *Optimizer) Plan(k int, buffer float64, prev int, forecast []float64, startup bool) (level int, ts float64, qoe float64) {
	steps := o.Horizon
	if rem := o.Manifest.ChunkCount - k; rem < steps {
		steps = rem
	}
	if steps <= 0 {
		return 0, 0, 0
	}
	rates := o.horizonRates(forecast, steps)

	if !startup {
		lvl, q := o.search(k, buffer, prev, rates, steps)
		return lvl, 0, q
	}

	// Startup: grid-search Ts jointly with the bitrate plan.
	bestLevel, bestTs, bestQoE := 0, 0.0, math.Inf(-1)
	step := o.TsStep
	if step <= 0 {
		step = 0.5
	}
	max := o.TsMax
	if max <= 0 {
		max = o.BufferMax
	}
	for t := 0.0; t <= max+1e-9; t += step {
		lvl, q := o.search(k, t, prev, rates, steps)
		q -= o.Weights.MuS * t
		// With µ = µs, trading startup delay for first-chunk stall is QoE
		// neutral; among (near-)ties prefer the larger Ts, i.e. start
		// playback only when it can proceed without an immediate stall.
		if q > bestQoE+1e-6 || (q > bestQoE-1e-6 && t > bestTs) {
			bestLevel, bestTs, bestQoE = lvl, t, q
		}
	}
	return bestLevel, bestTs, bestQoE
}

// horizonRates pads or truncates the forecast to exactly n entries,
// extending with the final value and flooring at minRate.
func (o *Optimizer) horizonRates(forecast []float64, n int) []float64 {
	rates := make([]float64, n)
	last := minRate
	for i := 0; i < n; i++ {
		if i < len(forecast) && forecast[i] > 0 {
			last = forecast[i]
		}
		rates[i] = math.Max(last, minRate)
	}
	return rates
}

// search exhaustively maximizes the horizon QoE by depth-first enumeration
// with branch-and-bound: a partial plan is abandoned when even rebuffer-free
// maximum-quality completion cannot beat the incumbent. Ties break toward
// the lower level because ascending iteration only replaces on strict
// improvement.
func (o *Optimizer) search(k int, buffer float64, prev int, rates []float64, steps int) (int, float64) {
	levels := o.Manifest.Levels()
	qMax := o.Quality(o.Manifest.Ladder.Max())
	// optimistic[d] bounds the QoE attainable from depth d onward,
	// including the terminal buffer reward (at most the buffer cap).
	optimistic := make([]float64, steps+1)
	optimistic[steps] = o.TerminalBufferWeight * o.BufferMax
	for d := steps - 1; d >= 0; d-- {
		optimistic[d] = optimistic[d+1] + qMax
	}

	bestFirst, bestQoE := 0, math.Inf(-1)
	// plan[d] is the level chosen at depth d for reporting the first move.
	var dfs func(d int, buf float64, prevLvl int, acc float64, first int)
	dfs = func(d int, buf float64, prevLvl int, acc float64, first int) {
		if d == steps {
			acc += o.TerminalBufferWeight * buf
			if acc > bestQoE {
				bestQoE = acc
				bestFirst = first
			}
			return
		}
		if !o.DisablePruning && acc+optimistic[d] <= bestQoE {
			return // even a perfect completion cannot win
		}
		chunk := k + d
		for lvl := 0; lvl < levels; lvl++ {
			size := o.Manifest.ChunkSize(chunk, lvl)
			dl := size / rates[d]
			rebuffer := math.Max(dl-buf, 0)
			afterDrain := math.Max(buf-dl, 0) + o.Manifest.ChunkDuration
			wait := math.Max(afterDrain-o.BufferMax, 0)
			next := afterDrain - wait

			gain := o.Quality(o.Manifest.Ladder[lvl]) - o.Weights.Mu*rebuffer
			if prevLvl >= 0 {
				gain -= o.Weights.Lambda * math.Abs(o.Quality(o.Manifest.Ladder[lvl])-o.Quality(o.Manifest.Ladder[prevLvl]))
			}
			f := first
			if d == 0 {
				f = lvl
			}
			dfs(d+1, next, lvl, acc+gain, f)
		}
	}
	dfs(0, buffer, prev, 0, 0)
	return bestFirst, bestQoE
}
