package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTrace(t *testing.T, name string, samples []Sample) *Trace {
	t.Helper()
	tr, err := New(name, samples)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
		wantErr bool
	}{
		{"empty", nil, true},
		{"zero duration", []Sample{{0, 100}}, true},
		{"negative duration", []Sample{{-1, 100}}, true},
		{"negative rate", []Sample{{1, -5}}, true},
		{"nan rate", []Sample{{1, math.NaN()}}, true},
		{"inf rate", []Sample{{1, math.Inf(1)}}, true},
		{"valid", []Sample{{1, 100}, {2, 200}}, false},
		{"zero rate ok", []Sample{{1, 0}, {1, 100}}, false},
	}
	for _, c := range cases {
		_, err := New(c.name, c.samples)
		if (err != nil) != c.wantErr {
			t.Errorf("New(%s): err=%v, wantErr=%v", c.name, err, c.wantErr)
		}
	}
}

func TestRateAt(t *testing.T) {
	tr := mustTrace(t, "steps", []Sample{{5, 100}, {5, 200}, {10, 50}})
	cases := []struct {
		at   float64
		want float64
	}{
		{0, 100}, {4.9, 100}, {5, 200}, {9.9, 200}, {10, 50}, {19.9, 50},
		{20, 100},   // wraps
		{25.5, 200}, // wrapped into second segment
		{-1, 50},    // negative wraps backward into last segment
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestDownloadTimeBasic(t *testing.T) {
	tr := mustTrace(t, "steps", []Sample{{5, 100}, {5, 200}})
	// 250 kbits starting at t=0: 5 s at 100 kbps (500 kbits capacity) is
	// plenty, so time = 250/100 = 2.5 s.
	if got := tr.DownloadTime(0, 250); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("DownloadTime(0,250) = %v, want 2.5", got)
	}
	// 600 kbits from t=0: 500 over first 5 s, then 100 at 200 kbps = 0.5 s.
	if got := tr.DownloadTime(0, 600); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("DownloadTime(0,600) = %v, want 5.5", got)
	}
	// Exactly one full pass: 500+1000 = 1500 kbits in 10 s.
	if got := tr.DownloadTime(0, 1500); math.Abs(got-10) > 1e-9 {
		t.Errorf("DownloadTime(0,1500) = %v, want 10", got)
	}
	// Wrapping: start mid-second-segment.
	// From t=7.5: 2.5 s at 200 (500 kbits), then wrap to 100 kbps.
	if got := tr.DownloadTime(7.5, 700); math.Abs(got-(2.5+2.0)) > 1e-9 {
		t.Errorf("DownloadTime(7.5,700) = %v, want 4.5", got)
	}
	// Multiple passes: 3 full passes + 250.
	if got := tr.DownloadTime(0, 3*1500+250); math.Abs(got-32.5) > 1e-9 {
		t.Errorf("DownloadTime(0,4750) = %v, want 32.5", got)
	}
	if got := tr.DownloadTime(0, 0); got != 0 {
		t.Errorf("DownloadTime(0,0) = %v, want 0", got)
	}
}

func TestDownloadTimeZeroRateSegments(t *testing.T) {
	tr := mustTrace(t, "outage", []Sample{{5, 100}, {5, 0}, {5, 100}})
	// 600 kbits from t=0: 500 in the first 5 s, outage 5 s, then 1 s more.
	if got := tr.DownloadTime(0, 600); math.Abs(got-11) > 1e-9 {
		t.Errorf("DownloadTime(0,600) = %v, want 11", got)
	}
	// Exactly the first segment's capacity finishes at its boundary, not
	// after the outage.
	if got := tr.DownloadTime(0, 500); math.Abs(got-5) > 1e-9 {
		t.Errorf("DownloadTime(0,500) = %v, want 5", got)
	}
	// Starting inside the outage waits it out.
	if got := tr.DownloadTime(6, 100); math.Abs(got-(4+1)) > 1e-9 {
		t.Errorf("DownloadTime(6,100) = %v, want 5", got)
	}
}

func TestDownloadTimeAllZero(t *testing.T) {
	tr := mustTrace(t, "dead", []Sample{{5, 0}})
	if got := tr.DownloadTime(0, 1); !math.IsInf(got, 1) {
		t.Errorf("DownloadTime over dead link = %v, want +Inf", got)
	}
}

func TestAverageRate(t *testing.T) {
	tr := mustTrace(t, "steps", []Sample{{5, 100}, {5, 200}})
	if got := tr.AverageRate(0, 10); math.Abs(got-150) > 1e-9 {
		t.Errorf("AverageRate(0,10) = %v, want 150", got)
	}
	if got := tr.AverageRate(2.5, 5); math.Abs(got-150) > 1e-9 {
		t.Errorf("AverageRate(2.5,5) = %v, want 150", got)
	}
	// Window spanning a wrap.
	if got := tr.AverageRate(7.5, 5); math.Abs(got-150) > 1e-9 {
		t.Errorf("AverageRate(7.5,5) = %v, want 150", got)
	}
	// Zero-duration window degenerates to the instantaneous rate.
	if got := tr.AverageRate(1, 0); got != 100 {
		t.Errorf("AverageRate(1,0) = %v, want 100", got)
	}
}

func TestStats(t *testing.T) {
	tr := mustTrace(t, "steps", []Sample{{5, 100}, {5, 300}})
	if got := tr.Mean(); math.Abs(got-200) > 1e-9 {
		t.Errorf("Mean = %v, want 200", got)
	}
	if got := tr.Stddev(); math.Abs(got-100) > 1e-9 {
		t.Errorf("Stddev = %v, want 100", got)
	}
	if tr.MinRate() != 100 || tr.MaxRate() != 300 {
		t.Errorf("MinRate/MaxRate = %v/%v, want 100/300", tr.MinRate(), tr.MaxRate())
	}
	if tr.Duration() != 10 {
		t.Errorf("Duration = %v, want 10", tr.Duration())
	}
}

func TestScale(t *testing.T) {
	tr := mustTrace(t, "steps", []Sample{{5, 100}, {5, 200}})
	sc := tr.Scale(2, 10)
	if sc.Duration() != 1 {
		t.Errorf("scaled duration = %v, want 1", sc.Duration())
	}
	if got := sc.RateAt(0); got != 200 {
		t.Errorf("scaled rate = %v, want 200", got)
	}
	// Scaling identity: with rates ×rF and durations ÷tF, downloading V on
	// the scaled trace takes DownloadTime(0, V·tF/rF)/tF on the original.
	scaled := sc.DownloadTime(0, 400)
	want := tr.DownloadTime(0, 400*10/2) / 10
	if math.Abs(scaled-want) > 1e-9 {
		t.Errorf("scaled download %v, want %v", scaled, want)
	}
}

// TestDownloadTimeInversion checks the integral identity: downloading
// exactly the volume deliverable over a window takes exactly that window.
func TestDownloadTimeInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = Sample{Duration: 0.5 + rng.Float64()*4, Kbps: rng.Float64() * 3000}
	}
	tr := mustTrace(t, "random", samples)
	for i := 0; i < 500; i++ {
		start := rng.Float64() * 3 * tr.Duration()
		window := rng.Float64() * 100
		vol := tr.AverageRate(start, window) * window
		if vol <= 0 {
			continue
		}
		got := tr.DownloadTime(start, vol)
		// The inversion is exact up to trailing zero-rate segments, where
		// the download finishes before the window closes.
		if got > window+1e-6 {
			t.Fatalf("DownloadTime(%v, %v) = %v > window %v", start, vol, got, window)
		}
		if redo := tr.AverageRate(start, got) * got; math.Abs(redo-vol) > 1e-6*math.Max(1, vol) {
			t.Fatalf("volume round-trip: got %v, want %v", redo, vol)
		}
	}
}

// TestDownloadTimeMonotone checks monotonicity in the transfer size.
func TestDownloadTimeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{Duration: 0.1 + rng.Float64()*5, Kbps: rng.Float64() * 2000}
		}
		tr, err := New("mono", samples)
		if err != nil {
			return false
		}
		if tr.MaxRate() == 0 {
			return true // degenerate dead trace
		}
		start := rng.Float64() * tr.Duration()
		prev := 0.0
		for kb := 10.0; kb < 20000; kb *= 2 {
			d := tr.DownloadTime(start, kb)
			if d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerators(t *testing.T) {
	for _, kind := range []DatasetKind{FCC, HSDPA, Synthetic} {
		traces := Dataset(kind, 20, 320, 1)
		if len(traces) != 20 {
			t.Fatalf("%v: got %d traces, want 20", kind, len(traces))
		}
		for _, tr := range traces {
			if tr.Duration() < 320 {
				t.Errorf("%v trace %q too short: %v s", kind, tr.Name, tr.Duration())
			}
			if tr.Mean() <= 0 {
				t.Errorf("%v trace %q has non-positive mean", kind, tr.Name)
			}
		}
		if kind == FCC {
			for _, tr := range traces {
				if m := tr.Mean(); m > 3000 {
					t.Errorf("FCC trace %q mean %v exceeds the 3 Mbps filter", tr.Name, m)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenHSDPA(42, 300)
	b := GenHSDPA(42, 300)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestVariabilityOrdering checks the Fig 7 dataset character: HSDPA traces
// have a higher coefficient of variation than FCC traces on average.
func TestVariabilityOrdering(t *testing.T) {
	cv := func(kind DatasetKind) float64 {
		var sum float64
		traces := Dataset(kind, 30, 320, 99)
		for _, tr := range traces {
			sum += tr.Stddev() / tr.Mean()
		}
		return sum / float64(len(traces))
	}
	fcc, hsdpa := cv(FCC), cv(HSDPA)
	if hsdpa <= fcc {
		t.Errorf("expected HSDPA CV > FCC CV, got %v <= %v", hsdpa, fcc)
	}
}

func TestMarkovConfigValidation(t *testing.T) {
	good := DefaultMarkovConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultMarkovConfig()
	bad.Transition[0][0] = 0.5 // row no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for non-stochastic transition row")
	}
	empty := MarkovConfig{}
	if err := empty.Validate(); err == nil {
		t.Error("expected error for empty config")
	}
	short := DefaultMarkovConfig()
	short.Stddevs = short.Stddevs[:2]
	if err := short.Validate(); err == nil {
		t.Error("expected error for mismatched dimensions")
	}
	neg := DefaultMarkovConfig()
	neg.Interval = 0
	if err := neg.Validate(); err == nil {
		t.Error("expected error for non-positive interval")
	}
}

func TestIORoundTrip(t *testing.T) {
	tr := GenFCC(3, 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf, tr.Name)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(back.Samples) != len(tr.Samples) {
		t.Fatalf("sample count: got %d, want %d", len(back.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if math.Abs(back.Samples[i].Kbps-tr.Samples[i].Kbps) > 1e-9 ||
			math.Abs(back.Samples[i].Duration-tr.Samples[i].Duration) > 1e-9 {
			t.Fatalf("sample %d: got %+v, want %+v", i, back.Samples[i], tr.Samples[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",   // too many fields
		"abc 100\n", // bad duration
		"1 xyz\n",   // bad rate
		"",          // empty
		"0 100\n",   // invalid sample (zero duration)
	}
	for _, in := range cases {
		if _, err := Read(bytes.NewBufferString(in), "bad"); err == nil {
			t.Errorf("Read(%q): expected error", in)
		}
	}
	// Comments and blank lines are fine.
	tr, err := Read(bytes.NewBufferString("# hi\n\n2 300\n"), "ok")
	if err != nil || len(tr.Samples) != 1 {
		t.Errorf("Read with comments: tr=%v err=%v", tr, err)
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	// A two-rate trace: 4 Mbps then 1 Mbps, 2 s each.
	tr := mustTrace(t, "mm", []Sample{{2, 4000}, {2, 1000}})
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMahimahi(&buf, "mm", 500)
	if err != nil {
		t.Fatal(err)
	}
	// Volume must round-trip almost exactly (one packet of slack).
	origKb := tr.Mean() * tr.Duration()
	backKb := back.Mean() * back.Duration()
	if math.Abs(origKb-backKb) > 2*1500*8/1000 {
		t.Errorf("volume: %v kb → %v kb", origKb, backKb)
	}
	// Rate ordering must survive: the first half is faster.
	if back.AverageRate(0, 2) <= back.AverageRate(2, 2) {
		t.Errorf("rate shape lost: %v then %v", back.AverageRate(0, 2), back.AverageRate(2, 2))
	}
}

func TestReadMahimahiErrors(t *testing.T) {
	cases := []string{
		"",       // no opportunities
		"abc\n",  // non-integer
		"-5\n",   // negative
		"12.5\n", // non-integer
	}
	for _, in := range cases {
		if _, err := ReadMahimahi(bytes.NewBufferString(in), "bad", 500); err == nil {
			t.Errorf("ReadMahimahi(%q): expected error", in)
		}
	}
	// Comments and unsorted input are fine.
	tr, err := ReadMahimahi(bytes.NewBufferString("# c\n900\n100\n500\n"), "ok", 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 1.0 {
		t.Errorf("duration = %v, want 1.0", tr.Duration())
	}
}

func TestReadMahimahiBinning(t *testing.T) {
	// 8 packets in the first second, none in the second... the second bin
	// only exists if a timestamp lands there.
	var b bytes.Buffer
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "%d\n", i*100)
	}
	fmt.Fprintf(&b, "%d\n", 1900)
	tr, err := ReadMahimahi(&b, "bins", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Fatalf("bins = %d, want 2", len(tr.Samples))
	}
	// First bin: 8 × 1500 B × 8 / 1000 = 96 kbit over 1 s.
	if math.Abs(tr.Samples[0].Kbps-96) > 1e-9 {
		t.Errorf("bin 0 rate = %v, want 96", tr.Samples[0].Kbps)
	}
	if math.Abs(tr.Samples[1].Kbps-12) > 1e-9 {
		t.Errorf("bin 1 rate = %v, want 12", tr.Samples[1].Kbps)
	}
}
