// Package trace provides network-throughput traces: a piecewise-constant
// rate function C_t with exact integration (download-time computation), the
// three dataset generators of Sec 7.1.1 (FCC-like broadband, HSDPA-like
// mobile, and the hidden-Markov synthetic model), a text serialization
// format, and per-trace statistics.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one constant-rate segment of a trace.
type Sample struct {
	Duration float64 // seconds the rate holds
	Kbps     float64 // throughput during the segment
}

// Trace is a piecewise-constant throughput function C_t. Beyond its last
// sample the trace wraps around to its beginning, which mirrors the paper's
// practice of concatenating measurements to match the video length.
// Time and volume integrals are precomputed so download-time and
// average-rate queries cost O(log n); Trace is immutable after New and
// safe for concurrent readers.
type Trace struct {
	Name    string
	Samples []Sample

	cumDur []float64 // cumDur[i] = duration of samples[0:i]; len n+1
	cumKb  []float64 // cumKb[i] = kilobits deliverable over samples[0:i]
}

// New constructs a trace from samples, validating that every segment has
// positive duration and non-negative rate.
func New(name string, samples []Sample) (*Trace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace %q: no samples", name)
	}
	t := &Trace{
		Name:    name,
		Samples: samples,
		cumDur:  make([]float64, len(samples)+1),
		cumKb:   make([]float64, len(samples)+1),
	}
	for i, s := range samples {
		if s.Duration <= 0 {
			return nil, fmt.Errorf("trace %q: sample %d has non-positive duration %v", name, i, s.Duration)
		}
		if s.Kbps < 0 || math.IsNaN(s.Kbps) || math.IsInf(s.Kbps, 0) {
			return nil, fmt.Errorf("trace %q: sample %d has invalid rate %v", name, i, s.Kbps)
		}
		t.cumDur[i+1] = t.cumDur[i] + s.Duration
		t.cumKb[i+1] = t.cumKb[i] + s.Duration*s.Kbps
	}
	return t, nil
}

// FromRates builds a trace with a uniform sampling interval, the shape of
// both the FCC (5 s) and HSDPA (1 s) datasets.
func FromRates(name string, interval float64, kbps []float64) (*Trace, error) {
	samples := make([]Sample, len(kbps))
	for i, r := range kbps {
		samples[i] = Sample{Duration: interval, Kbps: r}
	}
	return New(name, samples)
}

// Duration returns the length of one pass of the trace in seconds.
func (t *Trace) Duration() float64 { return t.cumDur[len(t.Samples)] }

// wrap maps an arbitrary time offset into [0, Duration).
func (t *Trace) wrap(sec float64) float64 {
	total := t.Duration()
	sec = math.Mod(sec, total)
	if sec < 0 {
		sec += total
	}
	return sec
}

// segmentAt returns the index of the segment containing the wrapped offset.
func (t *Trace) segmentAt(pos float64) int {
	// First i with cumDur[i] > pos; the segment is i-1.
	i := sort.SearchFloat64s(t.cumDur, pos)
	if i < len(t.cumDur) && t.cumDur[i] == pos { //lint:allow floateq exact boundary hit after binary search on cumulative durations
		i++
	}
	if i <= 0 {
		return 0
	}
	if i > len(t.Samples) {
		return len(t.Samples) - 1
	}
	return i - 1
}

// RateAt returns C_t at time offset sec (wrapping past the end).
func (t *Trace) RateAt(sec float64) float64 {
	return t.Samples[t.segmentAt(t.wrap(sec))].Kbps
}

// volumeTo returns the kilobits deliverable in [0, sec], wrapping.
func (t *Trace) volumeTo(sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	total := t.Duration()
	passes := math.Floor(sec / total)
	pos := sec - passes*total
	i := t.segmentAt(pos)
	partial := t.cumKb[i] + (pos-t.cumDur[i])*t.Samples[i].Kbps
	return passes*t.cumKb[len(t.Samples)] + partial
}

// DownloadTime returns how long a transfer of size kilobits starting at time
// start takes, integrating the piecewise-constant rate exactly (Eq. 2 solved
// for the finish time). Zero-rate segments are simply waited out. A transfer
// that would never finish (all-zero trace) returns +Inf.
func (t *Trace) DownloadTime(start, kilobits float64) float64 {
	if kilobits <= 0 {
		return 0
	}
	perPass := t.cumKb[len(t.Samples)]
	if perPass <= 0 {
		return math.Inf(1)
	}
	total := t.Duration()
	pos := t.wrap(start)
	var elapsed float64

	// Capacity remaining in the current pass from pos.
	i := t.segmentAt(pos)
	passRest := perPass - t.cumKb[i] - (pos-t.cumDur[i])*t.Samples[i].Kbps
	if kilobits > passRest {
		kilobits -= passRest
		elapsed += total - pos
		pos = 0
		// Whole additional passes.
		passes := math.Floor(kilobits / perPass)
		if kilobits == passes*perPass { //lint:allow floateq exact pass-boundary landing; both sides derive from the same floor()
			passes-- // land exactly at a pass boundary: finish within the last one
		}
		if passes > 0 {
			elapsed += passes * total
			kilobits -= passes * perPass
		}
	}
	// Finish within the pass starting at pos. Binary search the cumulative
	// volume for the finishing segment.
	base := t.volumeTo(pos) // volume already delivered this pass before pos
	target := base + kilobits
	// First segment index j with cumKb[j] >= target.
	j := sort.Search(len(t.cumKb), func(k int) bool { return t.cumKb[k] >= target })
	if j == 0 {
		j = 1
	}
	seg := j - 1
	if seg >= len(t.Samples) {
		seg = len(t.Samples) - 1
	}
	rate := t.Samples[seg].Kbps
	if rate <= 0 {
		// target falls exactly on a boundary followed by zero-rate segments;
		// the transfer completed at the boundary.
		return elapsed + t.cumDur[seg] - pos
	}
	finish := t.cumDur[seg] + (target-t.cumKb[seg])/rate
	return elapsed + finish - pos
}

// AverageRate returns the mean throughput over [start, start+dur], the C_k
// of Eq. (2) for a download occupying that window.
func (t *Trace) AverageRate(start, dur float64) float64 {
	if dur <= 0 {
		return t.RateAt(start)
	}
	pos := t.wrap(start)
	return (t.volumeTo(pos+dur) - t.volumeTo(pos)) / dur
}

// Mean returns the duration-weighted mean throughput of one pass.
func (t *Trace) Mean() float64 {
	return t.cumKb[len(t.Samples)] / t.Duration()
}

// Stddev returns the duration-weighted standard deviation of the rate.
func (t *Trace) Stddev() float64 {
	mean := t.Mean()
	var sum float64
	for _, s := range t.Samples {
		d := s.Kbps - mean
		sum += d * d * s.Duration
	}
	return math.Sqrt(sum / t.Duration())
}

// MinRate returns the lowest segment rate.
func (t *Trace) MinRate() float64 {
	min := math.Inf(1)
	for _, s := range t.Samples {
		if s.Kbps < min {
			min = s.Kbps
		}
	}
	return min
}

// MaxRate returns the highest segment rate.
func (t *Trace) MaxRate() float64 {
	max := 0.0
	for _, s := range t.Samples {
		if s.Kbps > max {
			max = s.Kbps
		}
	}
	return max
}

// Scale returns a copy with every rate multiplied by rateFactor and every
// duration divided by timeFactor (1 keeps real time). It supports the
// emulator's time-compression mode.
func (t *Trace) Scale(rateFactor, timeFactor float64) *Trace {
	samples := make([]Sample, len(t.Samples))
	for i, s := range t.Samples {
		samples[i] = Sample{Duration: s.Duration / timeFactor, Kbps: s.Kbps * rateFactor}
	}
	out, err := New(t.Name, samples)
	if err != nil {
		panic(fmt.Sprintf("trace: scaling %q by (%v, %v): %v", t.Name, rateFactor, timeFactor, err))
	}
	return out
}
