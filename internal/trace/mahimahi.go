package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Mahimahi link traces — the interchange format of the post-2015 ABR
// literature (Pensieve, Puffer, mahimahi's mm-link) — list one integer
// millisecond timestamp per line, each granting one 1500-byte packet
// delivery opportunity. These converters bridge that ecosystem to our
// piecewise-constant Trace: import aggregates opportunities into
// fixed-width rate bins; export emits evenly spaced opportunities matching
// each segment's rate.

// mahimahiPacketBytes is the MTU-sized delivery opportunity of mm-link.
const mahimahiPacketBytes = 1500

// ReadMahimahi parses a mahimahi trace, aggregating delivery opportunities
// into bins of binMs milliseconds (≤ 0 selects 500 ms). The trace spans
// from 0 to the last timestamp, rounded up to a whole bin.
func ReadMahimahi(r io.Reader, name string, binMs int) (*Trace, error) {
	if binMs <= 0 {
		binMs = 500
	}
	sc := bufio.NewScanner(r)
	var stamps []int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ms, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q line %d: bad mahimahi timestamp %q", name, line, text)
		}
		if ms < 0 {
			return nil, fmt.Errorf("trace %q line %d: negative timestamp %d", name, line, ms)
		}
		stamps = append(stamps, ms)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %q: %v", name, err)
	}
	if len(stamps) == 0 {
		return nil, fmt.Errorf("trace %q: no delivery opportunities", name)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })

	last := stamps[len(stamps)-1]
	bins := int(last/int64(binMs)) + 1
	counts := make([]int, bins)
	for _, ms := range stamps {
		counts[int(ms/int64(binMs))]++
	}
	rates := make([]float64, bins)
	binSec := float64(binMs) / 1000
	for i, c := range counts {
		// kbits delivered in the bin ÷ bin seconds.
		rates[i] = float64(c) * mahimahiPacketBytes * 8 / 1000 / binSec
	}
	return FromRates(name, binSec, rates)
}

// WriteMahimahi renders one pass of the trace as mahimahi delivery
// opportunities: within each constant-rate segment, packets are spaced
// evenly to deliver the segment's volume.
func WriteMahimahi(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	var startMs float64
	carry := 0.0 // fractional packet carried across segments
	for _, s := range t.Samples {
		kbits := s.Kbps*s.Duration + carry*mahimahiPacketBytes*8/1000
		packets := kbits * 1000 / 8 / mahimahiPacketBytes
		whole := math.Floor(packets)
		carry = packets - whole
		n := int(whole)
		for i := 0; i < n; i++ {
			// Spread evenly through the segment.
			ms := startMs + (float64(i)+0.5)/float64(n)*s.Duration*1000
			if _, err := fmt.Fprintf(bw, "%d\n", int64(ms)); err != nil {
				return err
			}
		}
		startMs += s.Duration * 1000
	}
	return bw.Flush()
}
