package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one sample per line, "<duration-seconds> <kbps>",
// with '#' comments and blank lines ignored. It is the common denominator
// of published trace archives (the HSDPA logs and the Mahimahi-style
// conversions used by later ABR work are trivially convertible).

// Write serializes the trace in text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", t.Name); err != nil {
		return err
	}
	for _, s := range t.Samples {
		if _, err := fmt.Fprintf(bw, "%g %g\n", s.Duration, s.Kbps); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a text-format trace.
func Read(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var samples []Sample
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace %q line %d: want \"duration kbps\", got %q", name, line, text)
		}
		dur, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q line %d: bad duration: %v", name, line, err)
		}
		kbps, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q line %d: bad rate: %v", name, line, err)
		}
		samples = append(samples, Sample{Duration: dur, Kbps: kbps})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %q: %v", name, err)
	}
	return New(name, samples)
}
