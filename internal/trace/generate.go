package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// The paper evaluates on three datasets (Sec 7.1.1). The measured FCC and
// HSDPA datasets are not redistributable, so we generate statistically
// matched synthetic equivalents: same sampling granularity (5 s / 1 s), the
// same mean-throughput filtering (0–3 Mbps for FCC), and the same
// variability ordering shown in Fig 7 (FCC most stable, HSDPA most
// variable). See DESIGN.md for the substitution rationale.

// GenFCC synthesizes one broadband-like trace: 5-second interval averages
// around a stable per-connection base rate with mild AR(1) jitter and rare
// congestion-level shifts. Mean throughput falls in (0, 3000] kbps, matching
// the paper's filtered selection.
func GenFCC(seed int64, duration float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	const interval = 5.0
	n := int(math.Ceil(duration / interval))
	if n < 1 {
		n = 1
	}
	// Base rates drawn to cover the 0–3 Mbps band, avoiding trivially
	// low links.
	base := 300 + 2600*rng.Float64()
	jitterScale := base * (0.05 + 0.13*rng.Float64()) // 5–18% noise
	rates := make([]float64, n)
	level := base
	ar := 0.0
	for i := range rates {
		// Occasional level shift: transient congestion or recovery.
		if rng.Float64() < 0.05 {
			level = base * (0.5 + 0.9*rng.Float64())
		}
		ar = 0.7*ar + jitterScale*rng.NormFloat64()
		r := level + ar
		if r < 50 {
			r = 50
		}
		rates[i] = r
	}
	t, err := FromRates(fmt.Sprintf("fcc-%d", seed), interval, rates)
	if err != nil {
		panic(err) // generator invariant: all samples valid
	}
	return t
}

// GenHSDPA synthesizes one mobile-like trace: 1-second samples from a
// regime-switching channel (good / medium / bad / outage) with log-normal
// fast fading, modelling a moving device on a 3G network. These traces are
// far more variable than GenFCC's and include near-zero outage dips, which
// is what stresses throughput prediction in the paper's HSDPA results.
func GenHSDPA(seed int64, duration float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	const interval = 1.0
	n := int(math.Ceil(duration / interval))
	if n < 1 {
		n = 1
	}
	type regime struct {
		mean float64 // kbps
		sig  float64 // log-normal sigma
	}
	// Per-trace device/route factor diversifies session means as in the
	// measured dataset (trams in good coverage vs trains in tunnels).
	scale := 0.4 + 1.3*rng.Float64()
	regimes := []regime{
		{mean: 3000 * scale, sig: 0.30}, // good coverage
		{mean: 1800 * scale, sig: 0.35}, // medium
		{mean: 900 * scale, sig: 0.45},  // bad
		{mean: 250 * scale, sig: 0.60},  // deep fade / handover outage
	}
	// Row-stochastic regime transition matrix: mobile enough that the
	// harmonic-mean predictor lags regime changes (the paper's HSDPA
	// prediction errors reach 40%), with outages short-lived.
	trans := [][]float64{
		{0.85, 0.12, 0.02, 0.01},
		{0.15, 0.72, 0.10, 0.03},
		{0.05, 0.20, 0.65, 0.10},
		{0.03, 0.12, 0.35, 0.50},
	}
	state := rng.Intn(len(regimes))
	rates := make([]float64, n)
	// AR(1)-correlated fading: real vehicular channels decorrelate over
	// seconds, not per sample, which is what keeps chunk-scale throughput
	// prediction feasible at all (Fig 7 right).
	const memory = 0.65
	fade := 0.0
	for i := range rates {
		state = nextState(rng, trans[state])
		r := regimes[state]
		fade = memory*fade + math.Sqrt(1-memory*memory)*rng.NormFloat64()
		// Log-normal fading with mean preserved: E[X]=mean.
		mu := math.Log(r.mean) - r.sig*r.sig/2
		v := math.Exp(mu + r.sig*fade)
		if v < 1 {
			v = 1
		}
		rates[i] = v
	}
	t, err := FromRates(fmt.Sprintf("hsdpa-%d", seed), interval, rates)
	if err != nil {
		panic(err)
	}
	return t
}

// MarkovConfig parameterizes the paper's synthetic model: a hidden state
// S_t (number of users sharing the bottleneck); given S_t = s, throughput
// is Gaussian with mean Means[s] and stddev Stddevs[s].
type MarkovConfig struct {
	Means      []float64   // kbps per hidden state
	Stddevs    []float64   // kbps per hidden state
	Transition [][]float64 // row-stochastic state transition matrix
	Interval   float64     // seconds between draws
}

// DefaultMarkovConfig models 1–4 users sharing a 4 Mbps bottleneck.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{
		Means:   []float64{4000, 2000, 1333, 1000},
		Stddevs: []float64{400, 300, 250, 200},
		Transition: [][]float64{
			{0.85, 0.10, 0.04, 0.01},
			{0.10, 0.75, 0.10, 0.05},
			{0.05, 0.15, 0.70, 0.10},
			{0.02, 0.08, 0.20, 0.70},
		},
		Interval: 2.0,
	}
}

// Validate checks dimensional consistency and row stochasticity.
func (c *MarkovConfig) Validate() error {
	n := len(c.Means)
	if n == 0 {
		return fmt.Errorf("trace: markov config has no states")
	}
	if len(c.Stddevs) != n || len(c.Transition) != n {
		return fmt.Errorf("trace: markov config dimensions disagree (means %d, stddevs %d, transition %d)",
			n, len(c.Stddevs), len(c.Transition))
	}
	if c.Interval <= 0 {
		return fmt.Errorf("trace: markov interval must be positive, got %v", c.Interval)
	}
	for i, row := range c.Transition {
		if len(row) != n {
			return fmt.Errorf("trace: markov transition row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("trace: markov transition row %d has negative probability", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("trace: markov transition row %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// GenMarkov synthesizes one trace from the hidden-Markov model.
func GenMarkov(cfg MarkovConfig, seed int64, duration float64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := int(math.Ceil(duration / cfg.Interval))
	if n < 1 {
		n = 1
	}
	state := rng.Intn(len(cfg.Means))
	rates := make([]float64, n)
	for i := range rates {
		state = nextState(rng, cfg.Transition[state])
		v := cfg.Means[state] + cfg.Stddevs[state]*rng.NormFloat64()
		if v < 1 {
			v = 1
		}
		rates[i] = v
	}
	return FromRates(fmt.Sprintf("markov-%d", seed), cfg.Interval, rates)
}

// nextState samples the successor state from a transition row.
func nextState(rng *rand.Rand, row []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range row {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(row) - 1
}

// DatasetKind names one of the paper's three trace populations.
type DatasetKind int

const (
	FCC DatasetKind = iota
	HSDPA
	Synthetic
)

// String implements fmt.Stringer.
func (k DatasetKind) String() string {
	switch k {
	case FCC:
		return "FCC"
	case HSDPA:
		return "HSDPA"
	case Synthetic:
		return "Synthetic"
	default:
		return fmt.Sprintf("DatasetKind(%d)", int(k))
	}
}

// Dataset generates count traces of the given kind and duration,
// deterministically from baseSeed. FCC traces are filtered to mean
// throughput in (0, 3000] kbps as in the paper (the generator already
// targets that band, so the filter rarely rejects).
func Dataset(kind DatasetKind, count int, duration float64, baseSeed int64) []*Trace {
	traces := make([]*Trace, 0, count)
	seed := baseSeed
	for len(traces) < count {
		var t *Trace
		switch kind {
		case FCC:
			t = GenFCC(seed, duration)
			if m := t.Mean(); m <= 0 || m > 3000 {
				seed++
				continue
			}
		case HSDPA:
			t = GenHSDPA(seed, duration)
		case Synthetic:
			var err error
			t, err = GenMarkov(DefaultMarkovConfig(), seed, duration)
			if err != nil {
				panic(err) // default config is statically valid
			}
		default:
			panic(fmt.Sprintf("trace: unknown dataset kind %d", int(kind)))
		}
		traces = append(traces, t)
		seed++
	}
	return traces
}
