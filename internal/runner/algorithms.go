package runner

import (
	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// The canonical algorithm set of Sec 7.1.2, each paired with the predictor
// and startup policy the paper evaluates it with:
//
//	RB, FESTIVE, FastMPC  — harmonic mean of the past 5 chunks
//	RobustMPC             — harmonic mean + max-error lower bound (Sec 4.3)
//	BB                    — no throughput input (predictor only logged)
//	dash.js               — last-chunk download ratio
//	MPC-OPT               — perfect 5-chunk oracle (simulation-only upper line)
//
// Non-MPC algorithms start playback when the first chunk arrives; the MPC
// family optimizes the startup delay jointly (f_stmpc).

// HarmonicPred returns the standard predictor factory.
func HarmonicPred(window int) PredictorFactory {
	return func(*trace.Trace) predictor.Predictor { return predictor.NewHarmonicMean(window) }
}

// TrackedHarmonicPred returns harmonic mean wrapped with error tracking,
// the RobustMPC configuration.
func TrackedHarmonicPred(window int) PredictorFactory {
	return func(*trace.Trace) predictor.Predictor {
		return predictor.NewErrorTracked(predictor.NewHarmonicMean(window), window)
	}
}

// LastSamplePred returns the last-chunk-throughput predictor used by the
// dash.js download-ratio rule.
func LastSamplePred() PredictorFactory {
	return func(*trace.Trace) predictor.Predictor { return &predictor.LastSample{} }
}

// OraclePred returns the perfect predictor with the given per-chunk window.
func OraclePred(step float64) PredictorFactory {
	return func(tr *trace.Trace) predictor.Predictor { return predictor.NewOracle(tr, step) }
}

// NoisyOraclePred returns the Fig 11a predictor: ground truth corrupted to
// the given average error level, seeded per trace for determinism.
func NoisyOraclePred(step, errorLevel float64, baseSeed int64) PredictorFactory {
	seq := baseSeed
	return func(tr *trace.Trace) predictor.Predictor {
		seq++
		return predictor.NewNoisyOracle(tr, step, errorLevel, seq)
	}
}

// StandardSet builds the six algorithms of Fig 8 for the given QoE
// configuration. The FastMPC table is built once and shared.
func StandardSet(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) []Algorithm {
	return []Algorithm{
		{
			Name:      "RB",
			Factory:   abr.NewRB(1),
			Predictor: HarmonicPred(5),
			Startup:   sim.StartupFirstChunk,
		},
		{
			Name:      "BB",
			Factory:   abr.NewBB(5, 10),
			Predictor: HarmonicPred(5),
			Startup:   sim.StartupFirstChunk,
		},
		{
			Name:      "FastMPC",
			Factory:   fastmpc.NewController(w, q, bufferMax, horizon, nil, false, "FastMPC"),
			Predictor: HarmonicPred(5),
			Startup:   sim.StartupFirstChunk,
		},
		{
			Name:      "RobustMPC",
			Factory:   core.NewRobustMPC(w, q, bufferMax, horizon),
			Predictor: TrackedHarmonicPred(5),
			Startup:   sim.StartupController,
		},
		{
			Name:      "dash.js",
			Factory:   abr.NewDashJS(0, 0),
			Predictor: LastSamplePred(),
			Startup:   sim.StartupFirstChunk,
		},
		{
			Name:      "FESTIVE",
			Factory:   abr.NewFESTIVE(12, 1, 5),
			Predictor: HarmonicPred(5),
			Startup:   sim.StartupFirstChunk,
		},
	}
}

// MPCAlgorithm returns the exact-MPC algorithm with the harmonic predictor.
func MPCAlgorithm(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int) Algorithm {
	return Algorithm{
		Name:      "MPC",
		Factory:   core.NewMPC(w, q, bufferMax, horizon),
		Predictor: HarmonicPred(5),
		Startup:   sim.StartupController,
	}
}

// MPCOptAlgorithm returns MPC with the perfect N-chunk oracle, the MPC-OPT
// line of Figs 11–12.
func MPCOptAlgorithm(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int, chunkDur float64) Algorithm {
	return Algorithm{
		Name:      "MPC-OPT",
		Factory:   core.NewNamedMPC("MPC-OPT", w, q, bufferMax, horizon, false),
		Predictor: OraclePred(chunkDur),
		Startup:   sim.StartupController,
	}
}
