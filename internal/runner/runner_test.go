package runner

import (
	"math"
	"testing"

	"mpcdash/internal/model"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

func shortManifest(t *testing.T) *model.Manifest {
	t.Helper()
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSessionBasics(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	tr := trace.GenFCC(4, m.Duration()+120)
	alg := StandardSet(model.Balanced, model.QIdentity, 30, 5)[1] // BB
	out, err := r.RunSession(alg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "BB" || out.TraceName != tr.Name {
		t.Errorf("labels: %q %q", out.Algorithm, out.TraceName)
	}
	if len(out.Result.Chunks) != m.ChunkCount {
		t.Errorf("chunks = %d", len(out.Result.Chunks))
	}
	if math.IsNaN(out.QoE) {
		t.Error("QoE is NaN")
	}
	if math.IsNaN(out.NormQoE) {
		t.Error("NormQoE is NaN with Normalize on")
	}
	if out.PredError < 0 || out.PredError > 5 {
		t.Errorf("PredError = %v", out.PredError)
	}
}

func TestNormalizeDisabled(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	r.Normalize = false
	tr := trace.GenFCC(4, m.Duration()+120)
	out, err := r.RunSession(StandardSet(model.Balanced, model.QIdentity, 30, 5)[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.NormQoE) {
		t.Errorf("NormQoE = %v, want NaN when normalization is off", out.NormQoE)
	}
}

func TestOptimalQoECached(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	tr := trace.GenFCC(4, m.Duration()+120)
	a, err := r.OptimalQoE(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.OptimalQoE(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache miss: %v vs %v", a, b)
	}
	if len(r.optCache) != 1 {
		t.Errorf("cache size = %d", len(r.optCache))
	}
}

func TestRunDatasetParallelDeterminism(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.FCC, 6, m.Duration()+120, 3)
	alg := StandardSet(model.Balanced, model.QIdentity, 30, 5)[0]

	run := func(workers int) []Outcome {
		r := New(m)
		r.Workers = workers
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ")
	}
	for i := range serial {
		if serial[i].QoE != parallel[i].QoE || serial[i].TraceName != parallel[i].TraceName {
			t.Errorf("trace %d: serial %v vs parallel %v", i, serial[i].QoE, parallel[i].QoE)
		}
	}
}

func TestRunAll(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.Synthetic, 3, m.Duration()+120, 5)
	r := New(m)
	algs := StandardSet(model.Balanced, model.QIdentity, 30, 5)[:2]
	byAlg, err := r.RunAll(algs, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(byAlg) != 2 {
		t.Fatalf("algorithms = %d", len(byAlg))
	}
	for name, outs := range byAlg {
		if len(outs) != 3 {
			t.Errorf("%s: %d outcomes", name, len(outs))
		}
	}
}

func TestStartupPolicyPerAlgorithm(t *testing.T) {
	m := shortManifest(t)
	tr := trace.GenFCC(8, m.Duration()+120)
	r := New(m)
	// The RobustMPC algorithm runs with StartupController; FixedStartup in
	// the base sim config must not leak into it.
	r.Sim.FixedStartup = 99
	set := StandardSet(model.Balanced, model.QIdentity, 30, 5)
	robust := set[3]
	if robust.Startup != sim.StartupController {
		t.Fatalf("unexpected standard set order: %s has policy %v", robust.Name, robust.Startup)
	}
	out, err := r.RunSession(robust, tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.StartupDelay == 99 {
		t.Error("fixed startup leaked into a controller-startup algorithm")
	}
}

func TestSelect(t *testing.T) {
	outs := []Outcome{{QoE: 1}, {QoE: 2}, {QoE: 3}}
	got := Select(outs, func(o Outcome) float64 { return o.QoE })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Select = %v", got)
	}
}

func TestSessionPredError(t *testing.T) {
	res := &model.SessionResult{Chunks: []model.ChunkRecord{
		{Predicted: 1000, Throughput: 800}, // err 0.25
		{Predicted: 0, Throughput: 800},    // skipped
		{Predicted: 900, Throughput: 1000}, // err 0.1
	}}
	if got := sessionPredError(res); math.Abs(got-0.175) > 1e-9 {
		t.Errorf("sessionPredError = %v, want 0.175", got)
	}
	if got := sessionPredError(&model.SessionResult{}); got != 0 {
		t.Errorf("empty session error = %v", got)
	}
}

func TestMPCOptBeatsHarmonicMPC(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.HSDPA, 6, m.Duration()+120, 11)
	r := New(m)
	r.Normalize = false
	optAlg := MPCOptAlgorithm(model.Balanced, model.QIdentity, 30, 5, m.ChunkDuration)
	mpcAlg := MPCAlgorithm(model.Balanced, model.QIdentity, 30, 5)
	optOuts, err := r.RunDataset(optAlg, traces)
	if err != nil {
		t.Fatal(err)
	}
	mpcOuts, err := r.RunDataset(mpcAlg, traces)
	if err != nil {
		t.Fatal(err)
	}
	var optSum, mpcSum float64
	for i := range optOuts {
		optSum += optOuts[i].QoE
		mpcSum += mpcOuts[i].QoE
	}
	// Receding-horizon MPC is not globally optimal even with a perfect
	// horizon forecast, and the oracle predicts window averages rather
	// than exact download intervals — allow a small tolerance.
	if optSum < mpcSum-0.03*math.Abs(mpcSum) {
		t.Errorf("perfect prediction (%v) should not clearly lose to harmonic mean (%v)", optSum, mpcSum)
	}
}
