package runner

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

func shortManifest(t *testing.T) *model.Manifest {
	t.Helper()
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSessionBasics(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	tr := trace.GenFCC(4, m.Duration()+120)
	alg := StandardSet(model.Balanced, model.QIdentity, 30, 5)[1] // BB
	out, err := r.RunSession(alg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "BB" || out.TraceName != tr.Name {
		t.Errorf("labels: %q %q", out.Algorithm, out.TraceName)
	}
	if len(out.Result.Chunks) != m.ChunkCount {
		t.Errorf("chunks = %d", len(out.Result.Chunks))
	}
	if math.IsNaN(out.QoE) {
		t.Error("QoE is NaN")
	}
	if math.IsNaN(out.NormQoE) {
		t.Error("NormQoE is NaN with Normalize on")
	}
	if out.PredError < 0 || out.PredError > 5 {
		t.Errorf("PredError = %v", out.PredError)
	}
}

func TestNormalizeDisabled(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	r.Normalize = false
	tr := trace.GenFCC(4, m.Duration()+120)
	out, err := r.RunSession(StandardSet(model.Balanced, model.QIdentity, 30, 5)[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.NormQoE) {
		t.Errorf("NormQoE = %v, want NaN when normalization is off", out.NormQoE)
	}
}

func TestOptimalQoECached(t *testing.T) {
	m := shortManifest(t)
	r := New(m)
	tr := trace.GenFCC(4, m.Duration()+120)
	a, err := r.OptimalQoE(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.OptimalQoE(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache miss: %v vs %v", a, b)
	}
	if len(r.optCache) != 1 {
		t.Errorf("cache size = %d", len(r.optCache))
	}
}

func TestRunDatasetParallelDeterminism(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.FCC, 6, m.Duration()+120, 3)
	alg := StandardSet(model.Balanced, model.QIdentity, 30, 5)[0]

	run := func(workers int) []Outcome {
		r := New(m)
		r.Workers = workers
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ")
	}
	for i := range serial {
		if serial[i].QoE != parallel[i].QoE || serial[i].TraceName != parallel[i].TraceName {
			t.Errorf("trace %d: serial %v vs parallel %v", i, serial[i].QoE, parallel[i].QoE)
		}
	}
}

func TestRunAll(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.Synthetic, 3, m.Duration()+120, 5)
	r := New(m)
	algs := StandardSet(model.Balanced, model.QIdentity, 30, 5)[:2]
	byAlg, err := r.RunAll(algs, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(byAlg) != 2 {
		t.Fatalf("algorithms = %d", len(byAlg))
	}
	for name, outs := range byAlg {
		if len(outs) != 3 {
			t.Errorf("%s: %d outcomes", name, len(outs))
		}
	}
}

func TestStartupPolicyPerAlgorithm(t *testing.T) {
	m := shortManifest(t)
	tr := trace.GenFCC(8, m.Duration()+120)
	r := New(m)
	// The RobustMPC algorithm runs with StartupController; FixedStartup in
	// the base sim config must not leak into it.
	r.Sim.FixedStartup = 99
	set := StandardSet(model.Balanced, model.QIdentity, 30, 5)
	robust := set[3]
	if robust.Startup != sim.StartupController {
		t.Fatalf("unexpected standard set order: %s has policy %v", robust.Name, robust.Startup)
	}
	out, err := r.RunSession(robust, tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.StartupDelay == 99 {
		t.Error("fixed startup leaked into a controller-startup algorithm")
	}
}

func TestSelect(t *testing.T) {
	outs := []Outcome{{QoE: 1}, {QoE: 2}, {QoE: 3}}
	got := Select(outs, func(o Outcome) float64 { return o.QoE })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Select = %v", got)
	}
}

func TestSessionPredError(t *testing.T) {
	res := &model.SessionResult{Chunks: []model.ChunkRecord{
		{Predicted: 1000, Throughput: 800}, // err 0.25
		{Predicted: 0, Throughput: 800},    // skipped
		{Predicted: 900, Throughput: 1000}, // err 0.1
	}}
	if got := sessionPredError(res); math.Abs(got-0.175) > 1e-9 {
		t.Errorf("sessionPredError = %v, want 0.175", got)
	}
	if got := sessionPredError(&model.SessionResult{}); got != 0 {
		t.Errorf("empty session error = %v", got)
	}
}

func TestMPCOptBeatsHarmonicMPC(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.HSDPA, 6, m.Duration()+120, 11)
	r := New(m)
	r.Normalize = false
	optAlg := MPCOptAlgorithm(model.Balanced, model.QIdentity, 30, 5, m.ChunkDuration)
	mpcAlg := MPCAlgorithm(model.Balanced, model.QIdentity, 30, 5)
	optOuts, err := r.RunDataset(optAlg, traces)
	if err != nil {
		t.Fatal(err)
	}
	mpcOuts, err := r.RunDataset(mpcAlg, traces)
	if err != nil {
		t.Fatal(err)
	}
	var optSum, mpcSum float64
	for i := range optOuts {
		optSum += optOuts[i].QoE
		mpcSum += mpcOuts[i].QoE
	}
	// Receding-horizon MPC is not globally optimal even with a perfect
	// horizon forecast, and the oracle predicts window averages rather
	// than exact download intervals — allow a small tolerance.
	if optSum < mpcSum-0.03*math.Abs(mpcSum) {
		t.Errorf("perfect prediction (%v) should not clearly lose to harmonic mean (%v)", optSum, mpcSum)
	}
}

// slowAlg wraps BB with a controller that sleeps on every decision, so a
// dataset run takes long enough to cancel mid-flight.
func slowAlg(delay time.Duration) Algorithm {
	base := StandardSet(model.Balanced, model.QIdentity, 30, 5)[1] // BB
	return Algorithm{
		Name: "slow-bb",
		Factory: func(m *model.Manifest) abr.Controller {
			return slowController{inner: base.Factory(m), delay: delay}
		},
		Predictor: base.Predictor,
		Startup:   base.Startup,
	}
}

type slowController struct {
	inner abr.Controller
	delay time.Duration
}

func (s slowController) Name() string { return "slow-" + s.inner.Name() }
func (s slowController) Decide(st abr.State) abr.Decision {
	time.Sleep(s.delay)
	return s.inner.Decide(st)
}

// Cancelling the context mid-dataset must stop the workers promptly:
// far fewer outcomes than traces, and a return well before the full run
// would have finished.
func TestRunDatasetCancellation(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.FCC, 64, m.Duration()+120, 17)
	r := New(m)
	r.Normalize = false
	r.Workers = 4
	// 20 chunks × 2 ms ≈ 40 ms per session; 64 sessions on 4 workers is
	// well over half a second of work.
	alg := slowAlg(2 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		errc <- r.RunDatasetFunc(ctx, alg, traces, func(Outcome) { visited.Add(1) })
	}()
	time.Sleep(60 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("RunDatasetFunc error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("workers did not stop within 2s of cancellation")
	}
	elapsed := time.Since(start)
	if n := visited.Load(); n >= int64(len(traces)) {
		t.Errorf("all %d sessions completed despite cancellation", n)
	}
	// In-flight sessions finish (~40 ms each) but nothing new starts, so
	// the whole call ends long before the ~600 ms a full run needs.
	if elapsed > 500*time.Millisecond {
		t.Errorf("run took %v after cancel; workers did not stop promptly", elapsed)
	}
}

// A pre-cancelled context must not run any sessions.
func TestRunDatasetCancelledUpFront(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.FCC, 4, m.Duration()+120, 19)
	r := New(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visited atomic.Int64
	err := r.RunDatasetFunc(ctx, StandardSet(model.Balanced, model.QIdentity, 30, 5)[0], traces,
		func(Outcome) { visited.Add(1) })
	if err != context.Canceled {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if visited.Load() != 0 {
		t.Errorf("visited %d sessions on a dead context", visited.Load())
	}
}

// The streaming visitor must see every session exactly once with its
// index, and agree with the materialized API.
func TestRunDatasetFuncStreams(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.HSDPA, 8, m.Duration()+120, 23)
	alg := StandardSet(model.Balanced, model.QIdentity, 30, 5)[0]

	r := New(m)
	r.Workers = 4
	byIdx := make([]float64, len(traces))
	seen := make([]bool, len(traces))
	var mu sync.Mutex
	err := r.RunDatasetFunc(context.Background(), alg, traces, func(o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		if o.Session < 0 || o.Session >= len(traces) || seen[o.Session] {
			t.Errorf("bad or duplicate session index %d", o.Session)
			return
		}
		seen[o.Session] = true
		byIdx[o.Session] = o.QoE
	})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := r.RunDataset(alg, traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range traces {
		if !seen[i] {
			t.Fatalf("session %d never visited", i)
		}
		if byIdx[i] != outs[i].QoE {
			t.Errorf("session %d: streamed QoE %v != materialized %v", i, byIdx[i], outs[i].QoE)
		}
	}
}

// Gate and PerSession hooks fire once per session, in admission order
// for Gate and with a per-session mutable config for PerSession.
func TestRunnerHooks(t *testing.T) {
	m := shortManifest(t)
	traces := trace.Dataset(trace.FCC, 6, m.Duration()+120, 29)
	r := New(m)
	r.Normalize = false
	var admitted, released, configured atomic.Int64
	r.Gate = func(ctx context.Context, session int) (func(), error) {
		admitted.Add(1)
		return func() { released.Add(1) }, nil
	}
	r.PerSession = func(session int, cfg *sim.Config) {
		configured.Add(1)
		cfg.MaxChunks = 3
	}
	outs, err := r.RunDatasetCtx(context.Background(), slowAlg(0), traces)
	if err != nil {
		t.Fatal(err)
	}
	if admitted.Load() != 6 || released.Load() != 6 || configured.Load() != 6 {
		t.Errorf("hook counts: admitted=%d released=%d configured=%d, want 6 each",
			admitted.Load(), released.Load(), configured.Load())
	}
	for i, o := range outs {
		if len(o.Result.Chunks) != 3 {
			t.Errorf("session %d played %d chunks; PerSession MaxChunks=3 ignored", i, len(o.Result.Chunks))
		}
	}
}
