package runner

import (
	"testing"

	"mpcdash/internal/model"
	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

// TestSmokeStandardSet runs the full Fig 8 pipeline on a small dataset and
// checks basic sanity: sessions complete, QoE is finite, normalized QoE is
// at most ~1, and the MPC family is competitive.
func TestSmokeStandardSet(t *testing.T) {
	m := model.EnvivioManifest()
	r := New(m)
	traces := trace.Dataset(trace.FCC, 8, m.Duration()+60, 7)
	algs := StandardSet(model.Balanced, model.QIdentity, 30, 5)
	algs = append(algs, MPCAlgorithm(model.Balanced, model.QIdentity, 30, 5))

	for _, alg := range algs {
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		n := Select(outs, func(o Outcome) float64 { return o.NormQoE })
		med := stats.Median(n)
		t.Logf("%-10s median n-QoE %.3f", alg.Name, med)
		for _, o := range outs {
			if len(o.Result.Chunks) != m.ChunkCount {
				t.Fatalf("%s on %s: %d chunks, want %d", alg.Name, o.TraceName, len(o.Result.Chunks), m.ChunkCount)
			}
			if o.NormQoE > 1.05 {
				t.Errorf("%s on %s: normalized QoE %.3f > 1 (offline optimum not optimal?)", alg.Name, o.TraceName, o.NormQoE)
			}
		}
	}
}
