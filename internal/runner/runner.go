// Package runner executes playback sessions at dataset scale: it pairs each
// algorithm with its predictor and startup policy (Sec 7.1.2), fans sessions
// out across CPUs, normalizes QoE by the per-trace offline optimum, and
// aggregates the per-session metrics every figure of Sec 7 is drawn from.
package runner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/optimal"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// Runner metric names on the shared registry.
const (
	MetricSessionsTotal = "mpcdash_runner_sessions_total"
	MetricWorkersBusy   = "mpcdash_runner_workers_busy"
	MetricSessionKbps   = "mpcdash_runner_session_kbps"
)

// PredictorFactory builds a fresh per-session predictor; oracle predictors
// need the session's trace.
type PredictorFactory func(tr *trace.Trace) predictor.Predictor

// Algorithm pairs a controller with the predictor and startup policy it is
// evaluated with.
type Algorithm struct {
	Name      string
	Factory   abr.Factory
	Predictor PredictorFactory
	Startup   sim.StartupPolicy
}

// Outcome is one completed session with its scores.
type Outcome struct {
	Algorithm string
	TraceName string
	Session   int // index within the dataset the session was part of

	Result    *model.SessionResult
	Metrics   model.Metrics
	QoE       float64
	NormQoE   float64 // QoE / QoE(OPT); NaN when normalization is disabled
	PredError float64 // session-average |Ĉ−C|/C over chunks with a prediction
}

// Runner evaluates algorithms over trace datasets.
type Runner struct {
	Manifest *model.Manifest
	Weights  model.Weights
	Quality  model.QualityFunc
	Sim      sim.Config

	// Normalize enables division by the offline optimal QoE (cached per
	// trace). Disable for raw-QoE studies.
	Normalize bool
	// Opt overrides the offline solver configuration; nil uses defaults.
	Opt *optimal.Solver

	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int

	// Obs receives per-decision events from every session (stamped with
	// the session's index within its dataset) plus runner-level progress
	// metrics: sessions completed per algorithm, busy workers, and the
	// per-session mean download throughput. Nil disables observability.
	Obs *obs.Recorder

	// Gate, when non-nil, is called by a worker immediately before each
	// session starts; it is the admission-control hook the fleet
	// scheduler paces arrivals and bounds in-flight sessions with. A
	// non-nil error cancels the remaining dataset (the error is
	// returned to the caller); the returned done callback, if any, is
	// invoked once the session finishes, success or not.
	Gate func(ctx context.Context, session int) (done func(), err error)

	// PerSession, when non-nil, customizes the simulator configuration
	// of one session after the Runner defaults and the algorithm's
	// startup policy are applied — per-session watch durations and
	// abandon policies in a heterogeneous population.
	PerSession func(session int, cfg *sim.Config)

	mu       sync.Mutex
	optCache map[*trace.Trace]float64
}

// New returns a Runner with the paper's defaults (Balanced weights,
// identity quality, 30 s buffer, horizon 5, normalization on).
func New(m *model.Manifest) *Runner {
	return &Runner{
		Manifest:  m,
		Weights:   model.Balanced,
		Quality:   model.QIdentity,
		Sim:       sim.DefaultConfig(),
		Normalize: true,
	}
}

// OptimalQoE returns the cached offline optimum for tr, computing it on
// first use.
func (r *Runner) OptimalQoE(tr *trace.Trace) (float64, error) {
	r.mu.Lock()
	if r.optCache == nil {
		r.optCache = make(map[*trace.Trace]float64)
	}
	if v, ok := r.optCache[tr]; ok {
		r.mu.Unlock()
		return v, nil
	}
	solver := r.Opt
	r.mu.Unlock()

	if solver == nil {
		s, err := optimal.NewSolver(r.Manifest, r.Weights, r.Quality, r.Sim.BufferMax)
		if err != nil {
			return 0, err
		}
		solver = s
	}
	v := solver.Solve(tr)

	r.mu.Lock()
	r.optCache[tr] = v
	r.mu.Unlock()
	return v, nil
}

// RunSession plays one trace with one algorithm.
func (r *Runner) RunSession(alg Algorithm, tr *trace.Trace) (Outcome, error) {
	return r.runSession(alg, tr, 0)
}

// runSession plays one trace; session is the index within a dataset run,
// stamped on decision events so concurrent sessions stay separable in a
// shared trace sink.
func (r *Runner) runSession(alg Algorithm, tr *trace.Trace, session int) (Outcome, error) {
	ctrl := alg.Factory(r.Manifest)
	pred := alg.Predictor(tr)
	cfg := r.Sim
	cfg.Startup = alg.Startup
	if r.Obs != nil {
		cfg.Obs = r.Obs.WithSession(session)
	}
	if r.PerSession != nil {
		r.PerSession(session, &cfg)
	}
	res, err := sim.Run(r.Manifest, tr, ctrl, pred, cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("runner: %s on %s: %w", alg.Name, tr.Name, err)
	}
	out := Outcome{
		Algorithm: alg.Name,
		TraceName: tr.Name,
		Session:   session,
		Result:    res,
		Metrics:   res.ComputeMetrics(r.Quality),
		QoE:       res.QoE(r.Weights, r.Quality),
		NormQoE:   math.NaN(),
		PredError: sessionPredError(res),
	}
	if r.Normalize {
		opt, err := r.OptimalQoE(tr)
		if err != nil {
			return Outcome{}, err
		}
		if opt != 0 { //lint:allow floateq exact-zero divisor guard for QoE normalization
			out.NormQoE = out.QoE / opt
		}
	}
	return out, nil
}

// RunDatasetFunc plays every trace with the algorithm in parallel,
// streaming each completed Outcome to visit instead of materializing the
// whole slice — the memory contract fleet-scale callers need: a caller
// that reduces outcomes to aggregates holds O(in-flight) sessions, never
// O(dataset). visit is called from worker goroutines concurrently and
// must be safe for concurrent use; Outcome.Session carries the trace
// index for callers that need a deterministic reduction order.
//
// The run stops early when ctx is cancelled, when the Gate hook refuses
// an admission, or when a session fails: no further sessions launch,
// in-flight sessions finish (and are still visited on success), and the
// first error — or ctx.Err() — is returned.
func (r *Runner) RunDatasetFunc(ctx context.Context, alg Algorithm, traces []*trace.Trace, visit func(Outcome)) error {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(traces) {
		workers = max(len(traces), 1)
	}
	// Runner-level progress instruments; every *obs method is nil-safe,
	// so a disabled registry costs nothing in the worker loop.
	var (
		reg      = r.Obs.Registry()
		done     = reg.Counter(MetricSessionsTotal, "Completed sessions.", "algorithm", alg.Name)
		busy     = reg.Gauge(MetricWorkersBusy, "Workers currently simulating a session.")
		sessThpt = reg.Histogram(MetricSessionKbps, "Per-session mean download throughput in kbps.", obs.DefKbpsBuckets)
	)
	var (
		wg       sync.WaitGroup
		idx      = make(chan int)
		stop     = make(chan struct{}) // closed on first failure: halts dispatch
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var sessionDone func()
				if r.Gate != nil {
					d, err := r.Gate(ctx, i)
					if err != nil {
						fail(err)
						continue
					}
					sessionDone = d
				} else if err := ctx.Err(); err != nil {
					fail(err)
					continue
				}
				busy.Add(1)
				out, err := r.runSession(alg, traces[i], i)
				busy.Add(-1)
				done.Inc()
				if sessionDone != nil {
					sessionDone()
				}
				if err != nil {
					fail(err)
					continue
				}
				sessThpt.Observe(meanThroughput(out.Result))
				visit(out)
			}
		}()
	}
dispatch:
	for i := range traces {
		select {
		case idx <- i:
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RunDatasetCtx plays every trace with the algorithm in parallel and
// returns the outcomes in trace order, stopping early if ctx is
// cancelled.
func (r *Runner) RunDatasetCtx(ctx context.Context, alg Algorithm, traces []*trace.Trace) ([]Outcome, error) {
	outs := make([]Outcome, len(traces))
	// Workers write disjoint indices; no lock needed.
	err := r.RunDatasetFunc(ctx, alg, traces, func(o Outcome) { outs[o.Session] = o })
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// RunDataset plays every trace with the algorithm, in parallel.
func (r *Runner) RunDataset(alg Algorithm, traces []*trace.Trace) ([]Outcome, error) {
	return r.RunDatasetCtx(context.Background(), alg, traces)
}

// RunAllCtx evaluates every algorithm over the dataset and returns
// outcomes keyed by algorithm name, stopping early if ctx is cancelled.
func (r *Runner) RunAllCtx(ctx context.Context, algs []Algorithm, traces []*trace.Trace) (map[string][]Outcome, error) {
	result := make(map[string][]Outcome, len(algs))
	for _, alg := range algs {
		outs, err := r.RunDatasetCtx(ctx, alg, traces)
		if err != nil {
			return nil, err
		}
		result[alg.Name] = outs
	}
	return result, nil
}

// RunAll evaluates every algorithm over the dataset and returns outcomes
// keyed by algorithm name.
func (r *Runner) RunAll(algs []Algorithm, traces []*trace.Trace) (map[string][]Outcome, error) {
	return r.RunAllCtx(context.Background(), algs, traces)
}

// meanThroughput is the session's average realized download throughput.
func meanThroughput(res *model.SessionResult) float64 {
	if res == nil || len(res.Chunks) == 0 {
		return 0
	}
	var sum float64
	for _, c := range res.Chunks {
		sum += c.Throughput
	}
	return sum / float64(len(res.Chunks))
}

// sessionPredError is the per-session average absolute percentage
// prediction error plotted in Fig 7 (right).
func sessionPredError(res *model.SessionResult) float64 {
	var sum float64
	var n int
	for _, c := range res.Chunks {
		if c.Predicted > 0 && c.Throughput > 0 {
			sum += math.Abs(c.Predicted-c.Throughput) / c.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Select extracts a per-session series from outcomes.
func Select(outs []Outcome, f func(Outcome) float64) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = f(o)
	}
	return xs
}

// Transport aggregates the transport-health counters of a set of sessions
// (always zero for simulator sessions; populated by the emulated HTTP
// client's download engine).
type Transport struct {
	Retries   int // extra download attempts across all sessions
	Resumes   int // Range-resumed transfers
	Fallbacks int // chunks served via lowest-level fallback
	Sessions  int // sessions that needed any recovery at all
}

// TransportHealth sums the recovery counters over outcomes.
func TransportHealth(outs []Outcome) Transport {
	var t Transport
	for _, o := range outs {
		t.Retries += o.Metrics.Retries
		t.Resumes += o.Metrics.Resumes
		t.Fallbacks += o.Metrics.Fallbacks
		if o.Metrics.Retries > 0 || o.Metrics.Fallbacks > 0 {
			t.Sessions++
		}
	}
	return t
}
