// Package runner executes playback sessions at dataset scale: it pairs each
// algorithm with its predictor and startup policy (Sec 7.1.2), fans sessions
// out across CPUs, normalizes QoE by the per-trace offline optimum, and
// aggregates the per-session metrics every figure of Sec 7 is drawn from.
package runner

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/optimal"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// PredictorFactory builds a fresh per-session predictor; oracle predictors
// need the session's trace.
type PredictorFactory func(tr *trace.Trace) predictor.Predictor

// Algorithm pairs a controller with the predictor and startup policy it is
// evaluated with.
type Algorithm struct {
	Name      string
	Factory   abr.Factory
	Predictor PredictorFactory
	Startup   sim.StartupPolicy
}

// Outcome is one completed session with its scores.
type Outcome struct {
	Algorithm string
	TraceName string
	Result    *model.SessionResult
	Metrics   model.Metrics
	QoE       float64
	NormQoE   float64 // QoE / QoE(OPT); NaN when normalization is disabled
	PredError float64 // session-average |Ĉ−C|/C over chunks with a prediction
}

// Runner evaluates algorithms over trace datasets.
type Runner struct {
	Manifest *model.Manifest
	Weights  model.Weights
	Quality  model.QualityFunc
	Sim      sim.Config

	// Normalize enables division by the offline optimal QoE (cached per
	// trace). Disable for raw-QoE studies.
	Normalize bool
	// Opt overrides the offline solver configuration; nil uses defaults.
	Opt *optimal.Solver

	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int

	// Obs receives per-decision events from every session (stamped with
	// the session's index within its dataset) plus runner-level progress
	// metrics: sessions completed per algorithm, busy workers, and the
	// per-session mean download throughput. Nil disables observability.
	Obs *obs.Recorder

	mu       sync.Mutex
	optCache map[*trace.Trace]float64
}

// New returns a Runner with the paper's defaults (Balanced weights,
// identity quality, 30 s buffer, horizon 5, normalization on).
func New(m *model.Manifest) *Runner {
	return &Runner{
		Manifest:  m,
		Weights:   model.Balanced,
		Quality:   model.QIdentity,
		Sim:       sim.DefaultConfig(),
		Normalize: true,
	}
}

// OptimalQoE returns the cached offline optimum for tr, computing it on
// first use.
func (r *Runner) OptimalQoE(tr *trace.Trace) (float64, error) {
	r.mu.Lock()
	if r.optCache == nil {
		r.optCache = make(map[*trace.Trace]float64)
	}
	if v, ok := r.optCache[tr]; ok {
		r.mu.Unlock()
		return v, nil
	}
	solver := r.Opt
	r.mu.Unlock()

	if solver == nil {
		s, err := optimal.NewSolver(r.Manifest, r.Weights, r.Quality, r.Sim.BufferMax)
		if err != nil {
			return 0, err
		}
		solver = s
	}
	v := solver.Solve(tr)

	r.mu.Lock()
	r.optCache[tr] = v
	r.mu.Unlock()
	return v, nil
}

// RunSession plays one trace with one algorithm.
func (r *Runner) RunSession(alg Algorithm, tr *trace.Trace) (Outcome, error) {
	return r.runSession(alg, tr, 0)
}

// runSession plays one trace; session is the index within a dataset run,
// stamped on decision events so concurrent sessions stay separable in a
// shared trace sink.
func (r *Runner) runSession(alg Algorithm, tr *trace.Trace, session int) (Outcome, error) {
	ctrl := alg.Factory(r.Manifest)
	pred := alg.Predictor(tr)
	cfg := r.Sim
	cfg.Startup = alg.Startup
	if r.Obs != nil {
		cfg.Obs = r.Obs.WithSession(session)
	}
	res, err := sim.Run(r.Manifest, tr, ctrl, pred, cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("runner: %s on %s: %w", alg.Name, tr.Name, err)
	}
	out := Outcome{
		Algorithm: alg.Name,
		TraceName: tr.Name,
		Result:    res,
		Metrics:   res.ComputeMetrics(r.Quality),
		QoE:       res.QoE(r.Weights, r.Quality),
		NormQoE:   math.NaN(),
		PredError: sessionPredError(res),
	}
	if r.Normalize {
		opt, err := r.OptimalQoE(tr)
		if err != nil {
			return Outcome{}, err
		}
		if opt != 0 {
			out.NormQoE = out.QoE / opt
		}
	}
	return out, nil
}

// RunDataset plays every trace with the algorithm, in parallel.
func (r *Runner) RunDataset(alg Algorithm, traces []*trace.Trace) ([]Outcome, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Runner-level progress instruments; every *obs method is nil-safe,
	// so a disabled registry costs nothing in the worker loop.
	var (
		reg      = r.Obs.Registry()
		done     = reg.Counter("mpcdash_runner_sessions_total", "Completed sessions.", "algorithm", alg.Name)
		busy     = reg.Gauge("mpcdash_runner_workers_busy", "Workers currently simulating a session.")
		sessThpt = reg.Histogram("mpcdash_runner_session_kbps", "Per-session mean download throughput in kbps.", obs.DefKbpsBuckets)
	)
	outs := make([]Outcome, len(traces))
	errs := make([]error, len(traces))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				busy.Add(1)
				outs[i], errs[i] = r.runSession(alg, traces[i], i)
				busy.Add(-1)
				done.Inc()
				if errs[i] == nil {
					sessThpt.Observe(meanThroughput(outs[i].Result))
				}
			}
		}()
	}
	for i := range traces {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunAll evaluates every algorithm over the dataset and returns outcomes
// keyed by algorithm name.
func (r *Runner) RunAll(algs []Algorithm, traces []*trace.Trace) (map[string][]Outcome, error) {
	result := make(map[string][]Outcome, len(algs))
	for _, alg := range algs {
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			return nil, err
		}
		result[alg.Name] = outs
	}
	return result, nil
}

// meanThroughput is the session's average realized download throughput.
func meanThroughput(res *model.SessionResult) float64 {
	if res == nil || len(res.Chunks) == 0 {
		return 0
	}
	var sum float64
	for _, c := range res.Chunks {
		sum += c.Throughput
	}
	return sum / float64(len(res.Chunks))
}

// sessionPredError is the per-session average absolute percentage
// prediction error plotted in Fig 7 (right).
func sessionPredError(res *model.SessionResult) float64 {
	var sum float64
	var n int
	for _, c := range res.Chunks {
		if c.Predicted > 0 && c.Throughput > 0 {
			sum += math.Abs(c.Predicted-c.Throughput) / c.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Select extracts a per-session series from outcomes.
func Select(outs []Outcome, f func(Outcome) float64) []float64 {
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = f(o)
	}
	return xs
}

// Transport aggregates the transport-health counters of a set of sessions
// (always zero for simulator sessions; populated by the emulated HTTP
// client's download engine).
type Transport struct {
	Retries   int // extra download attempts across all sessions
	Resumes   int // Range-resumed transfers
	Fallbacks int // chunks served via lowest-level fallback
	Sessions  int // sessions that needed any recovery at all
}

// TransportHealth sums the recovery counters over outcomes.
func TransportHealth(outs []Outcome) Transport {
	var t Transport
	for _, o := range outs {
		t.Retries += o.Metrics.Retries
		t.Resumes += o.Metrics.Resumes
		t.Fallbacks += o.Metrics.Fallbacks
		if o.Metrics.Retries > 0 || o.Metrics.Fallbacks > 0 {
			t.Sessions++
		}
	}
	return t
}
