package emu

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/mpd"
	"mpcdash/internal/predictor"
)

// Client is the DASH player half of the emulation: it fetches the manifest,
// then downloads chunks strictly sequentially, invoking the controller at
// every chunk boundary — the modified dash.js behaviour of Sec 6. Buffer
// accounting is in media seconds while downloads happen in (possibly
// compressed) wall time; TimeScale is the media-seconds-per-wall-second
// factor and must match the factor the link trace was scaled by.
type Client struct {
	BaseURL    string
	Controller abr.Controller
	Predictor  predictor.Predictor
	BufferMax  float64 // media seconds
	Horizon    int
	TimeScale  float64 // media s per wall s (1 = real time)
	HTTP       *http.Client
	// Retries is the number of additional attempts per chunk after a
	// failed or truncated download (dropped connection, 5xx). The retry
	// time counts against the session like any stall, exactly as a real
	// player experiences it. Default 2.
	Retries int
}

// Run plays the whole video with the pre-bound Controller and returns the
// session log in media-time units, directly comparable with simulator
// output.
func (c *Client) Run(ctx context.Context) (*model.SessionResult, error) {
	return c.run(ctx, func(*model.Manifest) abr.Controller { return c.Controller })
}

// RunWithController fetches the manifest first and then binds the
// controller to it — for factories that need the ladder and chunking
// (every controller constructed via abr.Factory).
func (c *Client) RunWithController(ctx context.Context, factory abr.Factory) (*model.SessionResult, error) {
	return c.run(ctx, factory)
}

func (c *Client) run(ctx context.Context, bind abr.Factory) (*model.SessionResult, error) {
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 5
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}

	man, err := c.fetchManifest(ctx, httpc)
	if err != nil {
		return nil, err
	}
	ctrl := bind(man)
	res := &model.SessionResult{
		Algorithm: ctrl.Name(),
		Chunks:    make([]model.ChunkRecord, 0, man.ChunkCount),
	}

	var (
		buffer float64 // media seconds
		prev   = -1
		start  = time.Now()
	)
	mediaNow := func() float64 { return time.Since(start).Seconds() * c.TimeScale }

	for k := 0; k < man.ChunkCount; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("emu: session cancelled at chunk %d: %w", k, err)
		}
		t := mediaNow()
		if ta, ok := c.Predictor.(predictor.TimeAware); ok {
			ta.SetTime(t)
		}
		forecast := c.Predictor.Predict(c.Horizon)
		var lower []float64
		if lb, ok := c.Predictor.(predictor.LowerBounder); ok {
			lower = lb.LowerBound(c.Horizon)
		}
		dec := ctrl.Decide(abr.State{
			Chunk:    k,
			Buffer:   buffer,
			Prev:     prev,
			Time:     t,
			Forecast: forecast,
			Lower:    lower,
		})
		level := man.Ladder.Clamp(dec.Level)

		wallStart := time.Now()
		bytes, err := c.fetchChunk(ctx, httpc, level, k+1)
		if err != nil {
			return nil, err
		}
		dlWall := time.Since(wallStart).Seconds()
		dl := dlWall * c.TimeScale // media-time download duration
		sizeKbits := float64(bytes) * 8 / 1000
		throughput := sizeKbits / dl // kbps in media time == trace units

		if k == 0 {
			// Play as soon as the first chunk arrives (StartupFirstChunk).
			res.StartupDelay = dl
			buffer = dl
		}
		rebuffer := math.Max(dl-buffer, 0)
		afterDrain := math.Max(buffer-dl, 0) + man.ChunkDuration
		wait := math.Max(afterDrain-c.BufferMax, 0)
		next := afterDrain - wait

		c.Predictor.Observe(throughput)
		var predicted float64
		if len(forecast) > 0 {
			predicted = forecast[0]
		}
		res.Chunks = append(res.Chunks, model.ChunkRecord{
			Index:        k,
			Level:        level,
			Bitrate:      man.Ladder[level],
			SizeKbits:    sizeKbits,
			StartTime:    t,
			DownloadTime: dl,
			Throughput:   throughput,
			BufferBefore: buffer,
			BufferAfter:  next,
			Rebuffer:     rebuffer,
			Wait:         wait,
			Predicted:    predicted,
		})
		buffer = next
		if wait > 0 {
			// Buffer full: hold off in wall time like a real player.
			time.Sleep(time.Duration(wait / c.TimeScale * float64(time.Second)))
		}
	}
	return res, nil
}

// fetchManifest downloads and converts the MPD into a model.Manifest.
func (c *Client) fetchManifest(ctx context.Context, httpc *http.Client) (*model.Manifest, error) {
	body, err := c.get(ctx, httpc, c.BaseURL+"/manifest.mpd")
	if err != nil {
		return nil, err
	}
	doc, err := mpd.Decode(body)
	if err != nil {
		return nil, err
	}
	as := doc.Period.AdaptationSet
	man, err := model.NewCBRManifest(model.Ladder(doc.LadderKbps()), as.SegmentCount, as.SegmentDuration)
	if err != nil {
		return nil, fmt.Errorf("emu: manifest rejected: %w", err)
	}
	return man, nil
}

// fetchChunk downloads one media segment and returns its byte count,
// retrying dropped or truncated transfers up to c.Retries extra times.
func (c *Client) fetchChunk(ctx context.Context, httpc *http.Client, level, number int) (int64, error) {
	retries := c.Retries
	if retries <= 0 {
		retries = 2
	}
	url := fmt.Sprintf("%s/video/%d/%d.m4s", c.BaseURL, level, number)
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("emu: chunk %d level %d: %w", number, level, err)
		}
		n, err := c.fetchOnce(ctx, httpc, url)
		if err == nil {
			return n, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("emu: chunk %d level %d failed after %d attempts: %w", number, level, retries+1, lastErr)
}

func (c *Client) fetchOnce(ctx context.Context, httpc *http.Client, url string) (int64, error) {
	body, err := c.getReader(ctx, httpc, url)
	if err != nil {
		return 0, err
	}
	defer body.Close()
	return io.Copy(io.Discard, body)
}

func (c *Client) get(ctx context.Context, httpc *http.Client, url string) ([]byte, error) {
	body, err := c.getReader(ctx, httpc, url)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("emu: reading %s: %w", url, err)
	}
	return data, nil
}

func (c *Client) getReader(ctx context.Context, httpc *http.Client, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("emu: building request for %s: %w", url, err)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("emu: GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("emu: GET %s: status %s", url, resp.Status)
	}
	return resp.Body, nil
}
