package emu

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/mpd"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
)

// Client is the DASH player half of the emulation: it fetches the manifest,
// then downloads chunks strictly sequentially, invoking the controller at
// every chunk boundary — the modified dash.js behaviour of Sec 6. Buffer
// accounting is in media seconds while downloads happen in (possibly
// compressed) wall time; TimeScale is the media-seconds-per-wall-second
// factor and must match the factor the link trace was scaled by.
type Client struct {
	BaseURL    string
	Controller abr.Controller
	Predictor  predictor.Predictor
	BufferMax  float64 // media seconds
	Horizon    int
	TimeScale  float64 // media s per wall s (1 = real time)
	HTTP       *http.Client

	// Retries is the number of additional attempts per chunk after a
	// failed or truncated download (dropped connection, 5xx, timeout).
	// 0 disables retries entirely — the first failure is final; the
	// sentinel RetriesDefault (-1, or any negative value) selects
	// DefaultRetries (2). Retry and backoff time count against the
	// session like any stall, exactly as a real player experiences it.
	Retries int
	// AttemptTimeout caps the wall-clock time of a single download
	// attempt; an attempt exceeding it is aborted and classified as
	// retryable (a stalled transfer). 0 means no per-attempt cap.
	AttemptTimeout time.Duration
	// BackoffBase and BackoffMax bound the exponential backoff between
	// attempts (base, 2·base, 4·base, … capped at max, each scaled by
	// deterministic jitter in [0.5, 1.5)). Zero values select 50 ms and
	// 2 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DisableFallback turns off graceful degradation. By default, a
	// chunk that exhausts its retries at the chosen level is re-fetched
	// at the lowest ladder level before the session is failed, and the
	// event is recorded on the chunk's record.
	DisableFallback bool
	// Seed makes the backoff jitter deterministic; 0 selects a fixed
	// default seed.
	Seed int64

	// Obs receives per-decision events and session metrics. Nil disables
	// observability at the cost of one pointer test per chunk.
	Obs *obs.Recorder
}

// newHTTPClient is the default transport when the caller supplies none: a
// dedicated http.Client instead of http.DefaultClient, so sessions never
// share (or pollute) the process-global connection pool, and with its
// knobs explicit. A player holds exactly one origin connection, but fleet
// runs put dozens of concurrent players in one process — per-host idle
// capacity keeps each player reusing its own connection instead of
// competing for the default transport's two idle slots per host. There is
// no overall client timeout: per-attempt pacing is the player's job
// (AttemptTimeout), and a shaped 4 s chunk on a slow trace legitimately
// takes minutes of wall time.
func newHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Run plays the whole video with the pre-bound Controller and returns the
// session log in media-time units, directly comparable with simulator
// output.
func (c *Client) Run(ctx context.Context) (*model.SessionResult, error) {
	return c.run(ctx, func(*model.Manifest) abr.Controller { return c.Controller })
}

// RunWithController fetches the manifest first and then binds the
// controller to it — for factories that need the ladder and chunking
// (every controller constructed via abr.Factory).
func (c *Client) RunWithController(ctx context.Context, factory abr.Factory) (*model.SessionResult, error) {
	return c.run(ctx, factory)
}

func (c *Client) run(ctx context.Context, bind abr.Factory) (*model.SessionResult, error) {
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 5
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = newHTTPClient()
	}

	man, err := c.fetchManifest(ctx, httpc)
	if err != nil {
		return nil, err
	}
	engine := c.newDownloader(httpc)
	ctrl := bind(man)
	res := &model.SessionResult{
		Algorithm: ctrl.Name(),
		Chunks:    make([]model.ChunkRecord, 0, man.ChunkCount),
	}

	var (
		buffer float64 // media seconds
		prev   = -1
		start  = time.Now()
	)
	mediaNow := func() float64 { return time.Since(start).Seconds() * c.TimeScale }

	for k := 0; k < man.ChunkCount; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("emu: session cancelled at chunk %d: %w", k, err)
		}
		t := mediaNow()
		if ta, ok := c.Predictor.(predictor.TimeAware); ok {
			ta.SetTime(t)
		}
		forecast := c.Predictor.Predict(c.Horizon)
		var lower []float64
		if lb, ok := c.Predictor.(predictor.LowerBounder); ok {
			lower = lb.LowerBound(c.Horizon)
		}
		decStart := time.Now()
		dec := ctrl.Decide(abr.State{
			Chunk:    k,
			Buffer:   buffer,
			Prev:     prev,
			Time:     t,
			Forecast: forecast,
			Lower:    lower,
		})
		solverWall := time.Since(decStart)
		level := man.Ladder.Clamp(dec.Level)

		wallStart := time.Now()
		bytes, served, fetch, err := engine.FetchChunk(ctx, level, k+1)
		if err != nil {
			return nil, err
		}
		level = served // graceful degradation may have lowered the level
		dlWall := time.Since(wallStart).Seconds()
		if dlWall < minDownloadWall {
			// An instantaneous loopback download would feed +Inf into the
			// predictor and poison the harmonic mean; floor the duration.
			dlWall = minDownloadWall
		}
		dl := dlWall * c.TimeScale // media-time download duration
		sizeKbits := float64(bytes) * 8 / 1000
		throughput := sizeKbits / dl // kbps in media time == trace units

		if k == 0 {
			// Play as soon as the first chunk arrives (StartupFirstChunk).
			res.StartupDelay = dl
			buffer = dl
		}
		rebuffer := math.Max(dl-buffer, 0)
		afterDrain := math.Max(buffer-dl, 0) + man.ChunkDuration
		wait := math.Max(afterDrain-c.BufferMax, 0)
		next := afterDrain - wait

		c.Predictor.Observe(throughput)
		var predicted float64
		if len(forecast) > 0 {
			predicted = forecast[0]
		}
		// Per-attempt transport timing in media time, so the retry and
		// backoff cost inside the chunk's download span stays visible.
		attempts := make([]model.AttemptRecord, len(fetch.AttemptLog))
		for i, a := range fetch.AttemptLog {
			attempts[i] = model.AttemptRecord{
				Start:    a.Start.Sub(start).Seconds() * c.TimeScale,
				Duration: a.Duration.Seconds() * c.TimeScale,
				Backoff:  a.Backoff.Seconds() * c.TimeScale,
				Level:    a.Level,
				Resumed:  a.Resumed,
				Error:    a.Err,
			}
		}
		res.Chunks = append(res.Chunks, model.ChunkRecord{
			Index:        k,
			Level:        level,
			Bitrate:      man.Ladder[level],
			SizeKbits:    sizeKbits,
			StartTime:    t,
			DownloadTime: dl,
			Throughput:   throughput,
			BufferBefore: buffer,
			BufferAfter:  next,
			Rebuffer:     rebuffer,
			Wait:         wait,
			Predicted:    predicted,
			DecisionTime: solverWall.Seconds(),
			Retries:      fetch.Retries,
			Resumes:      fetch.Resumes,
			Fallback:     fetch.Fallback,
			Attempts:     attempts,
		})
		if c.Obs.Enabled() {
			c.Obs.Decision(obs.DecisionEvent{
				Algorithm:     res.Algorithm,
				Chunk:         k,
				Time:          t,
				Buffer:        buffer,
				Prev:          prev,
				Predicted:     predicted,
				Candidates:    man.Ladder,
				Level:         level,
				Bitrate:       man.Ladder[level],
				SolverWall:    solverWall,
				DownloadStart: t,
				DownloadDur:   dl,
				Actual:        throughput,
				SizeKbits:     sizeKbits,
				Rebuffer:      rebuffer,
				Wait:          wait,
				BufferAfter:   next,
				Retries:       fetch.Retries,
				Resumes:       fetch.Resumes,
				Fallback:      fetch.Fallback,
				Attempts:      attempts,
			})
		}
		buffer = next
		prev = level
		if wait > 0 {
			// Buffer full: hold off in wall time like a real player, but
			// stay responsive to cancellation.
			if err := sleepCtx(ctx, time.Duration(wait/c.TimeScale*float64(time.Second))); err != nil {
				return nil, fmt.Errorf("emu: session cancelled waiting on a full buffer after chunk %d: %w", k, err)
			}
		}
	}
	return res, nil
}

// minDownloadWall floors the measured wall-clock download time so that an
// instantaneous loopback transfer cannot yield a zero duration (and an
// infinite throughput sample).
const minDownloadWall = 1e-6 // seconds

// fetchManifest downloads and converts the MPD into a model.Manifest.
func (c *Client) fetchManifest(ctx context.Context, httpc *http.Client) (*model.Manifest, error) {
	body, err := c.get(ctx, httpc, c.BaseURL+"/manifest.mpd")
	if err != nil {
		return nil, err
	}
	doc, err := mpd.Decode(body)
	if err != nil {
		return nil, err
	}
	as := doc.Period.AdaptationSet
	man, err := model.NewCBRManifest(model.Ladder(doc.LadderKbps()), as.SegmentCount, as.SegmentDuration)
	if err != nil {
		return nil, fmt.Errorf("emu: manifest rejected: %w", err)
	}
	return man, nil
}

func (c *Client) get(ctx context.Context, httpc *http.Client, url string) ([]byte, error) {
	body, err := c.getReader(ctx, httpc, url)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("emu: reading %s: %w", url, err)
	}
	return data, nil
}

func (c *Client) getReader(ctx context.Context, httpc *http.Client, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("emu: building request for %s: %w", url, err)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("emu: GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("emu: GET %s: status %s", url, resp.Status)
	}
	return resp.Body, nil
}
