package emu

import (
	"context"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
	"mpcdash/internal/mpd"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

// testVideo is a short manifest so emulation tests finish in seconds.
func testVideo(t *testing.T, chunks int) *model.Manifest {
	t.Helper()
	m, err := model.NewCBRManifest(model.EnvivioLadder(), chunks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// session runs one end-to-end emulated playback at the given time scale.
func session(t *testing.T, m *model.Manifest, tr *trace.Trace, scale float64, factory abr.Factory, pred predictor.Predictor) *model.SessionResult {
	t.Helper()
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr.Scale(scale, scale)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: factory(m),
		Predictor:  pred,
		BufferMax:  30,
		Horizon:    5,
		TimeScale:  scale,
		HTTP:       &http.Client{Timeout: 50 * time.Second},
		Retries:    RetriesDefault,
	}
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmulatedSessionCompletes(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("const1500", 8, []float64{1500, 1500, 1500, 1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 20, abr.NewRB(1), predictor.NewHarmonicMean(5))
	if len(res.Chunks) != 8 {
		t.Fatalf("chunks = %d, want 8", len(res.Chunks))
	}
	for _, c := range res.Chunks {
		if c.SizeKbits <= 0 || c.DownloadTime <= 0 || c.Throughput <= 0 {
			t.Errorf("chunk %d has degenerate record: %+v", c.Index, c)
		}
	}
	if res.StartupDelay <= 0 {
		t.Error("startup delay should be positive (first-chunk download time)")
	}
}

// TestEmulatedThroughputTracksTrace: measured per-chunk throughput should be
// in the neighbourhood of the shaped link rate (TCP/HTTP overhead and pacing
// granularity allow a generous tolerance).
func TestEmulatedThroughputTracksTrace(t *testing.T) {
	m := testVideo(t, 6)
	const kbps = 2000.0
	tr, err := trace.FromRates("const", 60, []float64{kbps})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 10, abr.NewFixed(2), predictor.NewHarmonicMean(5))
	for _, c := range res.Chunks[1:] { // skip connection warm-up
		if c.Throughput < kbps*0.5 || c.Throughput > kbps*1.6 {
			t.Errorf("chunk %d throughput %v kbps, want ≈%v", c.Index, c.Throughput, kbps)
		}
	}
}

// TestEmulatedABRReactsToBandwidth: with a link below the top rung, the
// rate-based controller must settle below the top level; with an ample
// link it must reach the top.
func TestEmulatedABRReactsToBandwidth(t *testing.T) {
	m := testVideo(t, 8)
	slow, err := trace.FromRates("slow", 60, []float64{800})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, slow, 10, abr.NewRB(1), predictor.NewHarmonicMean(5))
	for _, c := range res.Chunks[2:] {
		if c.Level > 1 {
			t.Errorf("chunk %d at level %d on an 800 kbps link", c.Index, c.Level)
		}
	}

	fast, err := trace.FromRates("fast", 60, []float64{8000})
	if err != nil {
		t.Fatal(err)
	}
	res = session(t, m, fast, 10, abr.NewRB(1), predictor.NewHarmonicMean(5))
	top := 0
	for _, c := range res.Chunks {
		if c.Level > top {
			top = c.Level
		}
	}
	if top < 4 {
		t.Errorf("max level %d on an 8 Mbps link, want 4", top)
	}
}

// TestEmulatedMPCSession: the full MPC controller over real HTTP.
func TestEmulatedMPCSession(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("varying", 6, []float64{2500, 1200, 600, 1800, 2500})
	if err != nil {
		t.Fatal(err)
	}
	pred := predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5)
	res := session(t, m, tr, 15, core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5), pred)
	if len(res.Chunks) != 8 {
		t.Fatalf("chunks = %d, want 8", len(res.Chunks))
	}
	qoe := res.QoE(model.Balanced, model.QIdentity)
	if math.IsNaN(qoe) || math.IsInf(qoe, 0) {
		t.Errorf("QoE = %v", qoe)
	}
}

// TestEmulationMatchesSimulator: the emulated session's buffer dynamics obey
// the same Eq. (3) invariants the simulator guarantees.
func TestEmulationMatchesSimulator(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("inv", 8, []float64{1500, 900, 2000, 1200})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 15, abr.NewBB(5, 10), predictor.NewHarmonicMean(5))
	for i, c := range res.Chunks {
		if c.BufferAfter < -1e-9 || c.BufferAfter > 30+1e-9 {
			t.Errorf("chunk %d buffer %v outside [0, 30]", i, c.BufferAfter)
		}
		want := math.Max(c.BufferBefore-c.DownloadTime, 0) + m.ChunkDuration - c.Wait
		if math.Abs(want-c.BufferAfter) > 1e-6 {
			t.Errorf("chunk %d: Eq. (3) violated: %v vs %v", i, want, c.BufferAfter)
		}
	}
}

func TestServerRejectsBadPaths(t *testing.T) {
	m := testVideo(t, 4)
	srv := NewServer(m)
	tr, err := trace.FromRates("fast", 60, []float64{100000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{
		"/video/0/0.m4s",  // number below 1
		"/video/0/99.m4s", // number beyond chunk count
		"/video/9/1.m4s",  // level out of range
		"/video/0/1.mp4",  // wrong suffix
		"/video/abc/1.m4s",
		"/nothing",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRunWithController binds the controller to the fetched manifest, the
// path dashclient uses.
func TestRunWithController(t *testing.T) {
	m := testVideo(t, 5)
	tr, err := trace.FromRates("c", 60, []float64{3000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr.Scale(10, 10)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &Client{
		BaseURL:   base,
		Predictor: predictor.NewHarmonicMean(5),
		BufferMax: 30,
		TimeScale: 10,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.RunWithController(ctx, abr.NewBB(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "BB" || len(res.Chunks) != 5 {
		t.Fatalf("algorithm %q, %d chunks", res.Algorithm, len(res.Chunks))
	}
}

// TestClientCancellation: a cancelled context aborts the session cleanly.
func TestClientCancellation(t *testing.T) {
	m := testVideo(t, 20)
	tr, err := trace.FromRates("slowlink", 60, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: abr.NewRB(1)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  1,
	}
	if _, err := client.Run(ctx); err == nil {
		t.Fatal("expected cancellation error on a crawling link")
	}
}

// TestFaultInjectionRetries: with connections randomly severed mid-chunk,
// the client's retry loop must still complete the session.
func TestFaultInjectionRetries(t *testing.T) {
	m := testVideo(t, 6)
	tr, err := trace.FromRates("f", 60, []float64{4000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewFaultyListener(ln, FaultConfig{DropRate: 0.01, Seed: 3})
	shaped := NewListener(faulty, NewShaper(tr.Scale(10, 10)))
	go func() { _ = srv.ServeOn(shaped) }()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    "http://" + ln.Addr().String(),
		Controller: abr.NewBB(5, 10)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  10,
		Retries:    20,
	}
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatalf("session failed despite retries: %v", err)
	}
	if len(res.Chunks) != 6 {
		t.Fatalf("chunks = %d", len(res.Chunks))
	}
}

// TestFaultLatency: injected latency shows up as slower chunk downloads.
func TestFaultLatency(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("l", 60, []float64{50000})
	if err != nil {
		t.Fatal(err)
	}
	run := func(latency time.Duration) float64 {
		srv := NewServer(m)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		faulty := NewFaultyListener(ln, FaultConfig{Latency: latency, Seed: 1})
		shaped := NewListener(faulty, NewShaper(tr))
		go func() { _ = srv.ServeOn(shaped) }()
		defer srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		client := &Client{
			BaseURL:    "http://" + ln.Addr().String(),
			Controller: abr.NewFixed(0)(m),
			Predictor:  predictor.NewHarmonicMean(5),
			BufferMax:  30,
			TimeScale:  1,
		}
		res, err := client.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, c := range res.Chunks {
			total += c.DownloadTime
		}
		return total
	}
	fast := run(0)
	slow := run(150 * time.Millisecond)
	if slow <= fast {
		t.Errorf("latency injection had no effect: %v vs %v", slow, fast)
	}
}

// ---- fault matrix -----------------------------------------------------
//
// The tests below exercise the hardened download engine against the
// transport failures of a real CDN path: truncated bodies, stalled
// transfers, flaky 5xx responses, permanent 404s, and cancellation.

// isChunkRequest selects media-segment requests (not the manifest).
func isChunkRequest(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/video/")
}

// faultySession runs a session against a server whose listener is wrapped
// in fault injection, returning the result or error.
func faultySession(t *testing.T, m *model.Manifest, tr *trace.Trace, scale float64, cfg FaultConfig, tweak func(*Client), wrap func(http.Handler) http.Handler) (*model.SessionResult, error) {
	t.Helper()
	srv := NewServer(m)
	if wrap != nil {
		srv.Wrap(wrap)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaped := NewListener(NewFaultyListener(ln, cfg), NewShaper(tr.Scale(scale, scale)))
	go func() { _ = srv.ServeOn(shaped) }()
	t.Cleanup(func() { srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    "http://" + ln.Addr().String(),
		Controller: abr.NewFixed(2)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  scale,
		Retries:    RetriesDefault,
	}
	if tweak != nil {
		tweak(client)
	}
	return client.Run(ctx)
}

// TestTruncatedChunkResumedViaRange is the headline fault-injection case:
// a connection severed mid-body is detected (the seed client silently
// counted it as a complete chunk), resumed with an HTTP Range request,
// and the recorded chunk size matches the manifest exactly.
func TestTruncatedChunkResumedViaRange(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("t", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	// First connection dies after 40 kB: the manifest (~1 kB) passes, the
	// first 500 kB chunk is cut mid-body.
	res, err := faultySession(t, m, tr, 10,
		FaultConfig{TruncateAfter: 40_000, TruncateConns: 1}, nil, nil)
	if err != nil {
		t.Fatalf("session failed despite resume support: %v", err)
	}
	var retries, resumes int
	for _, c := range res.Chunks {
		want := float64(mpd.ChunkBytes(m, c.Index, c.Level)) * 8 / 1000
		if math.Abs(c.SizeKbits-want) > 1e-9 {
			t.Errorf("chunk %d: recorded %v kbits, manifest says %v — truncation under-counted", c.Index, c.SizeKbits, want)
		}
		retries += c.Retries
		resumes += c.Resumes
	}
	if retries < 1 {
		t.Error("no retries recorded for a truncated transfer")
	}
	if resumes < 1 {
		t.Error("truncated transfer was not resumed via Range")
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	if metrics.Retries != retries || metrics.Resumes != resumes {
		t.Errorf("metrics (%d retries, %d resumes) disagree with chunk records (%d, %d)",
			metrics.Retries, metrics.Resumes, retries, resumes)
	}
}

// TestTruncationDetectedWithoutRetries: with the retry budget at zero and
// fallback off, a truncated body must surface as an error — the seed
// client returned success with under-counted bytes.
func TestTruncationDetectedWithoutRetries(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("t0", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = faultySession(t, m, tr, 10,
		FaultConfig{TruncateAfter: 40_000}, // every connection truncates
		func(c *Client) { c.Retries = 0; c.DisableFallback = true }, nil)
	if err == nil {
		t.Fatal("truncated download reported as success")
	}
	if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "EOF") {
		t.Errorf("error does not identify the truncation: %v", err)
	}
}

// TestFlaky5xxRetriedWithBackoff: transient 503s are retried (with
// backoff) until the server recovers.
func TestFlaky5xxRetriedWithBackoff(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("f5", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	const base = 20 * time.Millisecond
	start := time.Now()
	res, err := faultySession(t, m, tr, 10, FaultConfig{},
		func(c *Client) { c.Retries = 5; c.BackoffBase = base },
		StatusFaults(http.StatusServiceUnavailable, 2, isChunkRequest))
	if err != nil {
		t.Fatalf("session failed despite retry budget: %v", err)
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	if metrics.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (two injected 503s)", metrics.Retries)
	}
	// Two backoffs with jitter >= 0.5: at least base/2 + base = 30 ms.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("session finished in %v; backoff apparently skipped", elapsed)
	}
}

// Test404FailsFast: a permanent error must not burn the retry budget.
func Test404FailsFast(t *testing.T) {
	m := testVideo(t, 3)
	srv := NewServer(m)
	var requests atomic.Int64
	srv.Wrap(CountRequests(&requests, isChunkRequest))
	tr, err := trace.FromRates("p", 60, []float64{50000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{BaseURL: base, Retries: 5}
	d := client.newDownloader(http.DefaultClient)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, _, st, err := d.FetchChunk(ctx, 0, 999) // beyond the chunk count
	if err == nil {
		t.Fatal("fetching a nonexistent chunk succeeded")
	}
	if !strings.Contains(err.Error(), "404") {
		t.Errorf("error does not carry the status: %v", err)
	}
	if got := requests.Load(); got != 1 {
		t.Errorf("%d requests for a permanent 404, want exactly 1", got)
	}
	if st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want a single attempt", st)
	}
}

// TestFallbackToLowestLevel: when every level above the bottom rung is
// persistently broken, the engine degrades to level 0 instead of failing
// the session, and records the event.
func TestFallbackToLowestLevel(t *testing.T) {
	m := testVideo(t, 4)
	tr, err := trace.FromRates("fb", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	brokenUpperLevels := func(r *http.Request) bool {
		return isChunkRequest(r) && !strings.HasPrefix(r.URL.Path, "/video/0/")
	}
	res, err := faultySession(t, m, tr, 10, FaultConfig{},
		func(c *Client) {
			c.Controller = abr.NewFixed(4)(m)
			c.Retries = 1
			c.BackoffBase = time.Millisecond
		},
		StatusFaults(http.StatusServiceUnavailable, -1, brokenUpperLevels))
	if err != nil {
		t.Fatalf("session failed instead of degrading: %v", err)
	}
	for _, c := range res.Chunks {
		if !c.Fallback {
			t.Errorf("chunk %d: no fallback recorded", c.Index)
		}
		if c.Level != 0 || c.Bitrate != m.Ladder[0] {
			t.Errorf("chunk %d served at level %d (%v kbps), want lowest", c.Index, c.Level, c.Bitrate)
		}
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	if metrics.Fallbacks != len(res.Chunks) {
		t.Errorf("Fallbacks = %d, want %d", metrics.Fallbacks, len(res.Chunks))
	}
	if metrics.Retries < len(res.Chunks) {
		t.Errorf("Retries = %d, want >= %d (budget exhausted per chunk)", metrics.Retries, len(res.Chunks))
	}
}

// TestZeroRetriesRespected: Retries = 0 must genuinely mean "fail on the
// first error" (the seed coerced it back to 2).
func TestZeroRetriesRespected(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("z", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = faultySession(t, m, tr, 10, FaultConfig{},
		func(c *Client) { c.Retries = 0; c.DisableFallback = true },
		StatusFaults(http.StatusServiceUnavailable, 1, isChunkRequest))
	if err == nil {
		t.Fatal("zero-retry session survived an injected 503")
	}
}

// TestStalledTransferRescuedByAttemptTimeout: a transfer that hangs
// mid-body is abandoned after AttemptTimeout and completed on a retry.
func TestStalledTransferRescuedByAttemptTimeout(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("s", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := faultySession(t, m, tr, 10,
		FaultConfig{StallAfter: 40_000, StallFor: 5 * time.Second, StallConns: 1},
		func(c *Client) {
			c.AttemptTimeout = 300 * time.Millisecond
			c.Retries = 3
			c.HTTP = &http.Client{} // no global timeout; the per-attempt cap governs
		}, nil)
	if err != nil {
		t.Fatalf("session failed despite per-attempt timeout: %v", err)
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	if metrics.Retries < 1 {
		t.Error("stalled transfer completed without a retry, stall apparently not injected")
	}
}

// TestBufferFullWaitCancellable: cancelling the context during a
// buffer-full wait must abort the session promptly (the seed slept
// uninterruptibly).
func TestBufferFullWaitCancellable(t *testing.T) {
	m := testVideo(t, 6)
	tr, err := trace.FromRates("w", 60, []float64{50000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// BufferMax 5 with 4 s chunks on a fast link forces multi-second
	// buffer-full waits at TimeScale 1.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: abr.NewFixed(0)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  5,
		TimeScale:  1,
	}
	start := time.Now()
	_, err = client.Run(ctx)
	if err == nil {
		t.Fatal("session survived cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; buffer-full wait is not context-aware", elapsed)
	}
}

// TestServerRangeRequests: the origin honours "bytes=N-" resumes and
// rejects unsatisfiable offsets.
func TestServerRangeRequests(t *testing.T) {
	m := testVideo(t, 3)
	srv := NewServer(m)
	tr, err := trace.FromRates("r", 60, []float64{100000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	size := mpd.ChunkBytes(m, 0, 1)

	get := func(rangeHeader string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, base+"/video/1/1.m4s", nil)
		if err != nil {
			t.Fatal(err)
		}
		if rangeHeader != "" {
			req.Header.Set("Range", rangeHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	full := get("")
	if full.StatusCode != http.StatusOK || full.ContentLength != int64(size) {
		t.Errorf("full GET: status %d, length %d, want 200/%d", full.StatusCode, full.ContentLength, size)
	}

	part := get("bytes=1000-")
	if part.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged GET: status %d, want 206", part.StatusCode)
	}
	if part.ContentLength != int64(size-1000) {
		t.Errorf("ranged GET: length %d, want %d", part.ContentLength, size-1000)
	}
	wantCR := "bytes 1000-" + strconv.Itoa(size-1) + "/" + strconv.Itoa(size)
	if cr := part.Header.Get("Content-Range"); cr != wantCR {
		t.Errorf("Content-Range = %q, want %q", cr, wantCR)
	}

	beyond := get("bytes=" + strconv.Itoa(size) + "-")
	if beyond.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("out-of-range GET: status %d, want 416", beyond.StatusCode)
	}

	// Unsupported range forms degrade to a full 200 response.
	closed := get("bytes=0-99")
	if closed.StatusCode != http.StatusOK || closed.ContentLength != int64(size) {
		t.Errorf("closed-range GET: status %d, length %d, want full 200", closed.StatusCode, closed.ContentLength)
	}
}
