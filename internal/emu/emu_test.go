package emu

import (
	"context"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

// testVideo is a short manifest so emulation tests finish in seconds.
func testVideo(t *testing.T, chunks int) *model.Manifest {
	t.Helper()
	m, err := model.NewCBRManifest(model.EnvivioLadder(), chunks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// session runs one end-to-end emulated playback at the given time scale.
func session(t *testing.T, m *model.Manifest, tr *trace.Trace, scale float64, factory abr.Factory, pred predictor.Predictor) *model.SessionResult {
	t.Helper()
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr.Scale(scale, scale)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: factory(m),
		Predictor:  pred,
		BufferMax:  30,
		Horizon:    5,
		TimeScale:  scale,
		HTTP:       &http.Client{Timeout: 50 * time.Second},
	}
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmulatedSessionCompletes(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("const1500", 8, []float64{1500, 1500, 1500, 1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 20, abr.NewRB(1), predictor.NewHarmonicMean(5))
	if len(res.Chunks) != 8 {
		t.Fatalf("chunks = %d, want 8", len(res.Chunks))
	}
	for _, c := range res.Chunks {
		if c.SizeKbits <= 0 || c.DownloadTime <= 0 || c.Throughput <= 0 {
			t.Errorf("chunk %d has degenerate record: %+v", c.Index, c)
		}
	}
	if res.StartupDelay <= 0 {
		t.Error("startup delay should be positive (first-chunk download time)")
	}
}

// TestEmulatedThroughputTracksTrace: measured per-chunk throughput should be
// in the neighbourhood of the shaped link rate (TCP/HTTP overhead and pacing
// granularity allow a generous tolerance).
func TestEmulatedThroughputTracksTrace(t *testing.T) {
	m := testVideo(t, 6)
	const kbps = 2000.0
	tr, err := trace.FromRates("const", 60, []float64{kbps})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 10, abr.NewFixed(2), predictor.NewHarmonicMean(5))
	for _, c := range res.Chunks[1:] { // skip connection warm-up
		if c.Throughput < kbps*0.5 || c.Throughput > kbps*1.6 {
			t.Errorf("chunk %d throughput %v kbps, want ≈%v", c.Index, c.Throughput, kbps)
		}
	}
}

// TestEmulatedABRReactsToBandwidth: with a link below the top rung, the
// rate-based controller must settle below the top level; with an ample
// link it must reach the top.
func TestEmulatedABRReactsToBandwidth(t *testing.T) {
	m := testVideo(t, 8)
	slow, err := trace.FromRates("slow", 60, []float64{800})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, slow, 10, abr.NewRB(1), predictor.NewHarmonicMean(5))
	for _, c := range res.Chunks[2:] {
		if c.Level > 1 {
			t.Errorf("chunk %d at level %d on an 800 kbps link", c.Index, c.Level)
		}
	}

	fast, err := trace.FromRates("fast", 60, []float64{8000})
	if err != nil {
		t.Fatal(err)
	}
	res = session(t, m, fast, 10, abr.NewRB(1), predictor.NewHarmonicMean(5))
	top := 0
	for _, c := range res.Chunks {
		if c.Level > top {
			top = c.Level
		}
	}
	if top < 4 {
		t.Errorf("max level %d on an 8 Mbps link, want 4", top)
	}
}

// TestEmulatedMPCSession: the full MPC controller over real HTTP.
func TestEmulatedMPCSession(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("varying", 6, []float64{2500, 1200, 600, 1800, 2500})
	if err != nil {
		t.Fatal(err)
	}
	pred := predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5)
	res := session(t, m, tr, 15, core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5), pred)
	if len(res.Chunks) != 8 {
		t.Fatalf("chunks = %d, want 8", len(res.Chunks))
	}
	qoe := res.QoE(model.Balanced, model.QIdentity)
	if math.IsNaN(qoe) || math.IsInf(qoe, 0) {
		t.Errorf("QoE = %v", qoe)
	}
}

// TestEmulationMatchesSimulator: the emulated session's buffer dynamics obey
// the same Eq. (3) invariants the simulator guarantees.
func TestEmulationMatchesSimulator(t *testing.T) {
	m := testVideo(t, 8)
	tr, err := trace.FromRates("inv", 8, []float64{1500, 900, 2000, 1200})
	if err != nil {
		t.Fatal(err)
	}
	res := session(t, m, tr, 15, abr.NewBB(5, 10), predictor.NewHarmonicMean(5))
	for i, c := range res.Chunks {
		if c.BufferAfter < -1e-9 || c.BufferAfter > 30+1e-9 {
			t.Errorf("chunk %d buffer %v outside [0, 30]", i, c.BufferAfter)
		}
		want := math.Max(c.BufferBefore-c.DownloadTime, 0) + m.ChunkDuration - c.Wait
		if math.Abs(want-c.BufferAfter) > 1e-6 {
			t.Errorf("chunk %d: Eq. (3) violated: %v vs %v", i, want, c.BufferAfter)
		}
	}
}

func TestServerRejectsBadPaths(t *testing.T) {
	m := testVideo(t, 4)
	srv := NewServer(m)
	tr, err := trace.FromRates("fast", 60, []float64{100000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{
		"/video/0/0.m4s",  // number below 1
		"/video/0/99.m4s", // number beyond chunk count
		"/video/9/1.m4s",  // level out of range
		"/video/0/1.mp4",  // wrong suffix
		"/video/abc/1.m4s",
		"/nothing",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRunWithController binds the controller to the fetched manifest, the
// path dashclient uses.
func TestRunWithController(t *testing.T) {
	m := testVideo(t, 5)
	tr, err := trace.FromRates("c", 60, []float64{3000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr.Scale(10, 10)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &Client{
		BaseURL:   base,
		Predictor: predictor.NewHarmonicMean(5),
		BufferMax: 30,
		TimeScale: 10,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.RunWithController(ctx, abr.NewBB(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "BB" || len(res.Chunks) != 5 {
		t.Fatalf("algorithm %q, %d chunks", res.Algorithm, len(res.Chunks))
	}
}

// TestClientCancellation: a cancelled context aborts the session cleanly.
func TestClientCancellation(t *testing.T) {
	m := testVideo(t, 20)
	tr, err := trace.FromRates("slowlink", 60, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: abr.NewRB(1)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  1,
	}
	if _, err := client.Run(ctx); err == nil {
		t.Fatal("expected cancellation error on a crawling link")
	}
}

// TestFaultInjectionRetries: with connections randomly severed mid-chunk,
// the client's retry loop must still complete the session.
func TestFaultInjectionRetries(t *testing.T) {
	m := testVideo(t, 6)
	tr, err := trace.FromRates("f", 60, []float64{4000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewFaultyListener(ln, FaultConfig{DropRate: 0.01, Seed: 3})
	shaped := NewListener(faulty, NewShaper(tr.Scale(10, 10)))
	go func() { _ = srv.ServeOn(shaped) }()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    "http://" + ln.Addr().String(),
		Controller: abr.NewBB(5, 10)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  10,
		Retries:    20,
	}
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatalf("session failed despite retries: %v", err)
	}
	if len(res.Chunks) != 6 {
		t.Fatalf("chunks = %d", len(res.Chunks))
	}
}

// TestFaultLatency: injected latency shows up as slower chunk downloads.
func TestFaultLatency(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("l", 60, []float64{50000})
	if err != nil {
		t.Fatal(err)
	}
	run := func(latency time.Duration) float64 {
		srv := NewServer(m)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		faulty := NewFaultyListener(ln, FaultConfig{Latency: latency, Seed: 1})
		shaped := NewListener(faulty, NewShaper(tr))
		go func() { _ = srv.ServeOn(shaped) }()
		defer srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		client := &Client{
			BaseURL:    "http://" + ln.Addr().String(),
			Controller: abr.NewFixed(0)(m),
			Predictor:  predictor.NewHarmonicMean(5),
			BufferMax:  30,
			TimeScale:  1,
		}
		res, err := client.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, c := range res.Chunks {
			total += c.DownloadTime
		}
		return total
	}
	fast := run(0)
	slow := run(150 * time.Millisecond)
	if slow <= fast {
		t.Errorf("latency injection had no effect: %v vs %v", slow, fast)
	}
}
