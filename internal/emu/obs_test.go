package emu

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

// recordSink captures decision events for integration tests.
type recordSink struct {
	mu     sync.Mutex
	events []obs.DecisionEvent
}

func (s *recordSink) Decision(ev obs.DecisionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

func (s *recordSink) Close() error { return nil }

// TestClientEmitsDecisionEvents: a live session with a recorder attached
// must emit one complete event per chunk — controller input, choice,
// solver wall time and download outcome — and update the session metrics.
func TestClientEmitsDecisionEvents(t *testing.T) {
	m := testVideo(t, 4)
	tr, err := trace.FromRates("obs", 60, []float64{3000})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := &recordSink{}
	res, err := faultySession(t, m, tr, 10, FaultConfig{},
		func(c *Client) { c.Obs = obs.NewRecorder(reg, sink) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != len(res.Chunks) {
		t.Fatalf("events = %d, chunks = %d", len(sink.events), len(res.Chunks))
	}
	for i, ev := range sink.events {
		c := res.Chunks[i]
		if ev.Chunk != c.Index || ev.Level != c.Level || ev.Bitrate != c.Bitrate {
			t.Errorf("event %d (%+v) disagrees with chunk record (%+v)", i, ev, c)
		}
		if ev.DownloadDur != c.DownloadTime || ev.Actual != c.Throughput {
			t.Errorf("event %d download outcome differs from chunk record", i)
		}
		if ev.SolverWall <= 0 {
			t.Errorf("event %d has no solver wall time", i)
		}
		if len(ev.Candidates) != len(m.Ladder) {
			t.Errorf("event %d candidates = %v, want the ladder", i, ev.Candidates)
		}
	}
	if got := reg.Counter(obs.MetricChunksTotal, "").Value(); got != uint64(len(res.Chunks)) {
		t.Errorf("%s = %d, want %d", obs.MetricChunksTotal, got, len(res.Chunks))
	}
	if got := reg.Histogram(obs.MetricDownloadSeconds, "", obs.DefTimeBuckets).Count(); got != uint64(len(res.Chunks)) {
		t.Errorf("download histogram count = %d, want %d", got, len(res.Chunks))
	}
	if got := reg.Histogram(obs.MetricDecisionSeconds, "", obs.DefTimeBuckets).Count(); got != uint64(len(res.Chunks)) {
		t.Errorf("decision histogram count = %d, want %d", got, len(res.Chunks))
	}
}

// TestAttemptLogRecorded: the per-attempt transport timing must reach the
// chunk records — failed attempts carry the error, retried attempts the
// backoff that preceded them, and all timestamps are media-time ordered.
func TestAttemptLogRecorded(t *testing.T) {
	m := testVideo(t, 3)
	tr, err := trace.FromRates("al", 60, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := faultySession(t, m, tr, 10, FaultConfig{},
		func(c *Client) { c.Retries = 5; c.BackoffBase = 20 * time.Millisecond },
		StatusFaults(http.StatusServiceUnavailable, 2, isChunkRequest))
	if err != nil {
		t.Fatal(err)
	}
	var failed, backedOff int
	for _, c := range res.Chunks {
		if len(c.Attempts) < 1 {
			t.Fatalf("chunk %d has no attempt log", c.Index)
		}
		if len(c.Attempts) != c.Retries+1 {
			t.Errorf("chunk %d: %d attempts for %d retries", c.Index, len(c.Attempts), c.Retries)
		}
		last := c.Attempts[len(c.Attempts)-1]
		if last.Error != "" {
			t.Errorf("chunk %d: final attempt of a successful chunk has error %q", c.Index, last.Error)
		}
		prevEnd := 0.0
		for i, a := range c.Attempts {
			if i > 0 && a.Error == "" && i < len(c.Attempts)-1 {
				t.Errorf("chunk %d: successful attempt %d is not last", c.Index, i)
			}
			if a.Error != "" {
				failed++
			}
			if a.Backoff > 0 {
				backedOff++
				if i == 0 {
					t.Errorf("chunk %d: first attempt claims a backoff", c.Index)
				}
			}
			if a.Start < prevEnd-1e-9 {
				t.Errorf("chunk %d: attempt %d starts at %v before previous ended at %v", c.Index, i, a.Start, prevEnd)
			}
			if a.Duration < 0 {
				t.Errorf("chunk %d: attempt %d has negative duration", c.Index, i)
			}
			prevEnd = a.Start + a.Duration
		}
	}
	if failed < 2 {
		t.Errorf("recorded %d failed attempts, want >= 2 (two injected 503s)", failed)
	}
	if backedOff < 2 {
		t.Errorf("recorded %d backed-off attempts, want >= 2", backedOff)
	}
}

// TestServerInstrumented: the middleware installed by Instrument must count
// the manifest and every chunk request, measure request latency and
// delivery throughput, and total the bytes written.
func TestServerInstrumented(t *testing.T) {
	m := testVideo(t, 4)
	tr, err := trace.FromRates("si", 60, []float64{4000})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(m)
	srv.Instrument(reg)
	base, err := srv.Start(NewShaper(tr.Scale(10, 10)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &Client{
		BaseURL:    base,
		Controller: abr.NewFixed(1)(m),
		Predictor:  predictor.NewHarmonicMean(5),
		BufferMax:  30,
		TimeScale:  10,
		Retries:    RetriesDefault,
	}
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(MetricServerRequests, "", "handler", "manifest").Value(); got != 1 {
		t.Errorf("manifest requests = %d, want 1", got)
	}
	if got := reg.Counter(MetricServerRequests, "", "handler", "chunk").Value(); got != uint64(len(res.Chunks)) {
		t.Errorf("chunk requests = %d, want %d", got, len(res.Chunks))
	}
	if got := reg.Histogram(MetricServerRequestSeconds, "", obs.DefTimeBuckets, "handler", "chunk").Count(); got != uint64(len(res.Chunks)) {
		t.Errorf("chunk latency observations = %d, want %d", got, len(res.Chunks))
	}
	if got := reg.Histogram(MetricServerThroughputKbps, "", obs.DefKbpsBuckets).Count(); got != uint64(len(res.Chunks)) {
		t.Errorf("throughput observations = %d, want %d", got, len(res.Chunks))
	}
	var wantBytes uint64
	for _, c := range res.Chunks {
		wantBytes += uint64(c.SizeKbits * 1000 / 8)
	}
	got := reg.Counter(MetricServerBytesTotal, "").Value()
	// The byte counter also includes the manifest body; chunk payloads set
	// the floor.
	if got < wantBytes {
		t.Errorf("bytes total = %d, want >= %d (chunk payloads)", got, wantBytes)
	}
}
