package emu

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// This file is the hardened chunk-fetch engine behind Client: it verifies
// received bytes against Content-Length, classifies failures as retryable
// or permanent, retries with exponential backoff and deterministic jitter,
// resumes truncated transfers with HTTP Range requests, and — once the
// retry budget at the requested level is exhausted — degrades gracefully
// to the lowest ladder level rather than killing the session. Sec 6 of the
// paper runs the controller inside a real player; everything here is the
// transport robustness a real player needs that the control law alone
// cannot provide.

// Retry/backoff defaults. Backoff counts against the session clock like
// any stall, exactly as a real player experiences it.
const (
	// DefaultRetries is the per-chunk retry budget selected by the
	// RetriesDefault sentinel.
	DefaultRetries = 2
	// RetriesDefault is the sentinel value for Client.Retries meaning
	// "use DefaultRetries". (Any negative value is treated the same.)
	RetriesDefault = -1

	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// FetchStats records the transport-level work one chunk needed beyond a
// clean single-request download. The zero value means "first try, no
// trouble".
type FetchStats struct {
	Attempts     int   // HTTP requests issued (>= 1 on success)
	Retries      int   // attempts beyond the first, including fallback attempts
	Resumes      int   // attempts that resumed a truncated body via Range
	BytesWasted  int64 // bytes re-downloaded because a resume was not possible
	Fallback     bool  // served at the lowest level after exhausting retries
	FallbackFrom int   // the level originally requested, when Fallback is set

	// AttemptLog times every HTTP request in wall-clock terms, in the
	// order issued, so retry and backoff time inside a chunk is
	// attributable in traces rather than vanishing into the chunk total.
	AttemptLog []Attempt
}

// Attempt is the wall-clock record of one HTTP request within a chunk
// download, including the backoff that preceded it.
type Attempt struct {
	Level    int           // ladder level the request asked for
	Start    time.Time     // when the request was issued (after any backoff)
	Duration time.Duration // request + body-read time
	Backoff  time.Duration // backoff sleep immediately before Start (0 on first attempts)
	Resumed  bool          // the request resumed a truncated body via Range
	Err      string        // "" when the attempt delivered the remaining body
}

// add accumulates per-level stats into a chunk-wide total, appending o's
// attempts after s's (callers pass the later stage as o to keep the log
// chronological).
func (s *FetchStats) add(o FetchStats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Resumes += o.Resumes
	s.BytesWasted += o.BytesWasted
	s.AttemptLog = append(s.AttemptLog, o.AttemptLog...)
}

// statusError is a non-2xx HTTP response. 5xx (and 429) are transient
// server conditions worth retrying; other 4xx mean the request itself is
// wrong and will never succeed.
type statusError struct {
	URL  string
	Code int
}

func (e *statusError) Error() string {
	return fmt.Sprintf("GET %s: status %d %s", e.URL, e.Code, http.StatusText(e.Code))
}

func (e *statusError) retryable() bool {
	return e.Code >= 500 || e.Code == http.StatusTooManyRequests
}

// truncatedError is a transfer that delivered fewer bytes than the server
// promised in Content-Length — a dropped connection mid-body. The seed
// client silently counted these as complete chunks, corrupting every
// throughput sample downstream.
type truncatedError struct {
	URL       string
	Got, Want int64
}

func (e *truncatedError) Error() string {
	return fmt.Sprintf("GET %s: truncated transfer: %d of %d bytes", e.URL, e.Got, e.Want)
}

// retryable classifies err for the retry loop: true means another attempt
// may succeed (5xx, dropped/truncated transfer, timeout of one attempt);
// false means the failure is permanent (4xx such as 404, or the session
// context itself is done).
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false // session cancelled/expired: nothing is worth retrying
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.retryable()
	}
	// Truncations, per-attempt timeouts, connection resets, unexpected
	// EOFs: all transient transport failures.
	return true
}

// downloader executes verified, retried, resumable chunk downloads.
// It is not safe for concurrent use; each Client session owns one.
type downloader struct {
	httpc       *http.Client
	baseURL     string
	retries     int           // extra attempts per level after the first
	attemptTO   time.Duration // per-attempt wall-clock cap; 0 = none
	backoffBase time.Duration
	backoffMax  time.Duration
	fallback    bool       // degrade to level 0 after exhausting retries
	rng         *rand.Rand // deterministic backoff jitter
}

// newDownloader materializes the Client's transport policy.
func (c *Client) newDownloader(httpc *http.Client) *downloader {
	retries := c.Retries
	if retries < 0 {
		retries = DefaultRetries
	}
	base := c.BackoffBase
	if base <= 0 {
		base = defaultBackoffBase
	}
	max := c.BackoffMax
	if max <= 0 {
		max = defaultBackoffMax
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	return &downloader{
		httpc:       httpc,
		baseURL:     c.BaseURL,
		retries:     retries,
		attemptTO:   c.AttemptTimeout,
		backoffBase: base,
		backoffMax:  max,
		fallback:    !c.DisableFallback,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// chunkURL is the DASH segment path ($Number$ is 1-based).
func (d *downloader) chunkURL(level, number int) string {
	return fmt.Sprintf("%s/video/%d/%d.m4s", d.baseURL, level, number)
}

// FetchChunk downloads one media segment, retrying and resuming as
// configured. On success it returns the verified byte count, the level the
// bytes were actually served at (== level unless fallback engaged), and
// the transport stats. The returned error is permanent: either the request
// can never succeed, the session context is done, or every recovery
// avenue — retries at the requested level, then the lowest level — has
// been exhausted.
func (d *downloader) FetchChunk(ctx context.Context, level, number int) (int64, int, FetchStats, error) {
	n, st, err := d.fetchLevel(ctx, level, number)
	if err == nil {
		return n, level, st, nil
	}
	// Graceful degradation: a transient failure that survived the whole
	// retry budget. A permanent failure (404, cancellation) would fail at
	// the lowest level too, so only transient exhaustion falls back.
	if d.fallback && level > 0 && retryable(ctx, err) {
		n2, st2, err2 := d.fetchLevel(ctx, 0, number)
		st.add(st2) // requested-level attempts first, fallback's after
		if st.Attempts > 0 {
			// Every attempt beyond the chunk's very first counts as a
			// retry, including the fallback level's first attempt.
			st.Retries = st.Attempts - 1
		}
		if err2 == nil {
			st.Fallback = true
			st.FallbackFrom = level
			return n2, 0, st, nil
		}
		return 0, level, st, fmt.Errorf("emu: chunk %d: lowest-level fallback after %v also failed: %w", number, err, err2)
	}
	return 0, level, st, fmt.Errorf("emu: chunk %d level %d: %w", number, level, err)
}

// fetchLevel runs the retry/resume loop for one (level, number) pair.
func (d *downloader) fetchLevel(ctx context.Context, level, number int) (int64, FetchStats, error) {
	url := d.chunkURL(level, number)
	var (
		st   FetchStats
		got  int64 // verified bytes received so far (resume offset)
		want int64 = -1
		last error
	)
	for attempt := 0; attempt <= d.retries; attempt++ {
		var backoff time.Duration
		if attempt > 0 {
			st.Retries++
			backoff = d.backoff(attempt)
			if err := sleepCtx(ctx, backoff); err != nil {
				return 0, st, err
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, st, err
		}
		st.Attempts++
		resumed := got > 0
		if resumed {
			st.Resumes++
		}
		aStart := time.Now()
		n, total, err := d.attempt(ctx, url, got)
		record := func(errText string) {
			st.AttemptLog = append(st.AttemptLog, Attempt{
				Level:    level,
				Start:    aStart,
				Duration: time.Since(aStart),
				Backoff:  backoff,
				Resumed:  resumed,
				Err:      errText,
			})
		}
		if total >= 0 {
			want = total
		}
		switch {
		case err == nil && (want < 0 || got+n == want):
			// Complete: either verified against Content-Length or the
			// server sent no length and closed cleanly.
			record("")
			return got + n, st, nil
		case err == nil:
			// Read ended without error but short of Content-Length.
			err = &truncatedError{URL: url, Got: got + n, Want: want}
			fallthrough
		default:
			var re *rangeIgnoredError
			if errors.As(err, &re) {
				// Server restarted the body from byte 0; the bytes we
				// held are useless.
				st.BytesWasted += got
				got = re.Got
				if resumed {
					st.Resumes--
				}
			} else {
				got += n
			}
			record(err.Error())
			last = err
			if !retryable(ctx, err) {
				return 0, st, err
			}
		}
	}
	return 0, st, fmt.Errorf("failed after %d attempts: %w", st.Attempts, last)
}

// rangeIgnoredError signals that a ranged request came back 200 (full
// body): the server ignored Range, and Got bytes of the fresh body were
// consumed before the failure-or-success was decided. It always wraps a
// retry of the full transfer.
type rangeIgnoredError struct {
	Got int64
	Err error
}

func (e *rangeIgnoredError) Error() string { return e.Err.Error() }
func (e *rangeIgnoredError) Unwrap() error { return e.Err }

// attempt issues one GET (ranged when offset > 0), drains the body, and
// returns (bytes read this attempt, absolute total length or -1 if
// unknown, error). For a 206 response the bytes read continue from
// offset; for an unexpected 200 the error is a rangeIgnoredError carrying
// how much of the restarted body arrived.
func (d *downloader) attempt(ctx context.Context, url string, offset int64) (int64, int64, error) {
	actx := ctx
	if d.attemptTO > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, d.attemptTO)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return 0, -1, fmt.Errorf("emu: building request for %s: %w", url, err)
	}
	if offset > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
	}
	resp, err := d.httpc.Do(req)
	if err != nil {
		return 0, -1, fmt.Errorf("emu: GET %s: %w", url, err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent:
	default:
		return 0, -1, &statusError{URL: url, Code: resp.StatusCode}
	}

	total := int64(-1)
	restarted := offset > 0 && resp.StatusCode == http.StatusOK
	switch {
	case resp.StatusCode == http.StatusPartialContent:
		// Prefer the authoritative Content-Range total; fall back to
		// offset + Content-Length.
		if t, ok := contentRangeTotal(resp.Header.Get("Content-Range")); ok {
			total = t
		} else if resp.ContentLength >= 0 {
			total = offset + resp.ContentLength
		}
	case resp.ContentLength >= 0:
		total = resp.ContentLength
	}

	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		err = fmt.Errorf("emu: reading %s: %w", url, err)
	}
	if restarted {
		return 0, total, &rangeIgnoredError{Got: n, Err: errRestarted(err, url)}
	}
	return n, total, err
}

// errRestarted wraps the read error of a restarted transfer, or marks a
// clean-but-unresumable read as needing a retry from scratch.
func errRestarted(readErr error, url string) error {
	if readErr != nil {
		return readErr
	}
	return fmt.Errorf("emu: GET %s: server ignored Range; restarting transfer", url)
}

// contentRangeTotal parses the complete length out of a
// "bytes start-end/total" Content-Range header.
func contentRangeTotal(h string) (int64, bool) {
	h = strings.TrimPrefix(h, "bytes ")
	i := strings.LastIndexByte(h, '/')
	if i < 0 {
		return 0, false
	}
	t, err := strconv.ParseInt(h[i+1:], 10, 64)
	if err != nil || t < 0 {
		return 0, false
	}
	return t, true
}

// backoff returns the pre-attempt delay: exponential in the attempt
// number, capped, with deterministic jitter in [0.5, 1.5) so synchronized
// clients do not retry in lockstep yet tests stay reproducible.
func (d *downloader) backoff(attempt int) time.Duration {
	delay := d.backoffBase << uint(attempt-1)
	if delay > d.backoffMax || delay <= 0 {
		delay = d.backoffMax
	}
	jitter := 0.5 + d.rng.Float64()
	return time.Duration(float64(delay) * jitter)
}

// sleepCtx waits for dur or until ctx is done, returning the context error
// in the latter case. It is the cancellation-aware replacement for every
// time.Sleep on the session path (backoff and buffer-full waits).
func sleepCtx(ctx context.Context, dur time.Duration) error {
	if dur <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
