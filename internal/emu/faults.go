package emu

import (
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig injects transport-level impairments into the shaped link,
// turning the clean loopback testbed into a hostile one: added latency per
// write burst, randomly severed connections, deterministic mid-body
// truncation, and write stalls. Real CDN paths fail in all of these ways,
// and a player that cannot ride out a dropped connection never survives
// outside the lab.
type FaultConfig struct {
	// Latency delays the first write of every connection (handshake-ish
	// cost) and each subsequent write quantum by Latency/10.
	Latency time.Duration
	// DropRate is the per-write probability that the connection is severed
	// mid-transfer (the client sees an unexpected EOF).
	DropRate float64
	// Seed makes the fault sequence deterministic.
	Seed int64

	// TruncateAfter, when positive, severs a connection once it has
	// written that many bytes — a transfer cut mid-body, the classic
	// truncated download. TruncateConns bounds how many connections are
	// truncated (0 = every connection), so a client that reconnects can
	// eventually succeed.
	TruncateAfter int
	TruncateConns int

	// StallAfter, when positive, freezes a connection's writes for
	// StallFor once it has written StallAfter bytes — a hung transfer
	// that only a per-attempt timeout rescues. StallConns bounds how
	// many connections stall (0 = every connection).
	StallAfter int
	StallFor   time.Duration
	StallConns int
}

// FaultyListener wraps a listener with fault injection on accepted conns.
type FaultyListener struct {
	net.Listener
	cfg FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	truncated int // connections already truncated
	stalled   int // connections already stalled
}

// NewFaultyListener injects the configured faults into every connection
// accepted from inner.
func NewFaultyListener(inner net.Listener, cfg FaultConfig) *FaultyListener {
	return &FaultyListener{
		Listener: inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Accept implements net.Listener.
func (l *FaultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultyConn{Conn: c, parent: l}, nil
}

// roll draws a uniform variate under the listener's lock.
func (l *FaultyListener) roll() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// claimTruncate reports whether another connection may be truncated,
// consuming one slot from the budget.
func (l *FaultyListener) claimTruncate() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.TruncateConns > 0 && l.truncated >= l.cfg.TruncateConns {
		return false
	}
	l.truncated++
	return true
}

// claimStall reports whether another connection may stall, consuming one
// slot from the budget.
func (l *FaultyListener) claimStall() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.StallConns > 0 && l.stalled >= l.cfg.StallConns {
		return false
	}
	l.stalled++
	return true
}

// faultyConn applies the parent's fault model to writes.
type faultyConn struct {
	net.Conn
	parent  *FaultyListener
	warmed  bool
	written int  // payload bytes this connection has written
	cut     bool // truncation fired; all further writes fail
	stalled bool // stall already fired on this connection
}

// Write implements net.Conn.
func (c *faultyConn) Write(p []byte) (int, error) {
	cfg := c.parent.cfg
	if c.cut {
		return 0, net.ErrClosed
	}
	if !c.warmed {
		c.warmed = true
		if cfg.Latency > 0 {
			time.Sleep(cfg.Latency)
		}
	} else if cfg.Latency > 0 {
		time.Sleep(cfg.Latency / 10)
	}
	if cfg.DropRate > 0 && c.parent.roll() < cfg.DropRate {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if cfg.StallAfter > 0 && !c.stalled && c.written+len(p) > cfg.StallAfter && c.parent.claimStall() {
		c.stalled = true
		time.Sleep(cfg.StallFor)
	}
	if cfg.TruncateAfter > 0 && c.written+len(p) > cfg.TruncateAfter {
		// Deliver exactly up to the truncation point, then sever.
		if c.parent.claimTruncate() {
			n := cfg.TruncateAfter - c.written
			if n > 0 {
				w, _ := c.Conn.Write(p[:n])
				c.written += w
			}
			c.cut = true
			c.Conn.Close()
			return 0, net.ErrClosed
		}
	}
	n, err := c.Conn.Write(p)
	c.written += n
	return n, err
}

// StatusFaults is HTTP-level fault injection: middleware (for Server.Wrap)
// that answers matching requests with the given status code instead of
// forwarding them. Count bounds how many requests are failed (negative =
// every matching request); Match selects which requests are eligible (nil
// = all). It is safe for concurrent use.
func StatusFaults(status int, count int, match func(*http.Request) bool) func(http.Handler) http.Handler {
	var failed atomic.Int64
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if match == nil || match(r) {
				if count < 0 || int(failed.Add(1)) <= count {
					http.Error(w, http.StatusText(status), status)
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// CountRequests is pass-through middleware that counts requests selected
// by match (nil = all) into n. Tests use it to assert how many attempts a
// client actually made.
func CountRequests(n *atomic.Int64, match func(*http.Request) bool) func(http.Handler) http.Handler {
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if match == nil || match(r) {
				n.Add(1)
			}
			inner.ServeHTTP(w, r)
		})
	}
}
