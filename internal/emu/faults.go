package emu

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig injects transport-level impairments into the shaped link,
// turning the clean loopback testbed into a hostile one: added latency per
// write burst and randomly severed connections. Real CDN paths fail this
// way, and a player that cannot ride out a dropped connection never
// survives outside the lab.
type FaultConfig struct {
	// Latency delays the first write of every connection (handshake-ish
	// cost) and each subsequent write quantum by Latency/10.
	Latency time.Duration
	// DropRate is the per-write probability that the connection is severed
	// mid-transfer (the client sees an unexpected EOF).
	DropRate float64
	// Seed makes the fault sequence deterministic.
	Seed int64
}

// FaultyListener wraps a listener with fault injection on accepted conns.
type FaultyListener struct {
	net.Listener
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultyListener injects the configured faults into every connection
// accepted from inner.
func NewFaultyListener(inner net.Listener, cfg FaultConfig) *FaultyListener {
	return &FaultyListener{
		Listener: inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Accept implements net.Listener.
func (l *FaultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultyConn{Conn: c, parent: l}, nil
}

// roll draws a uniform variate under the listener's lock.
func (l *FaultyListener) roll() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// faultyConn applies the parent's fault model to writes.
type faultyConn struct {
	net.Conn
	parent *FaultyListener
	warmed bool
}

// Write implements net.Conn.
func (c *faultyConn) Write(p []byte) (int, error) {
	cfg := c.parent.cfg
	if !c.warmed {
		c.warmed = true
		if cfg.Latency > 0 {
			time.Sleep(cfg.Latency)
		}
	} else if cfg.Latency > 0 {
		time.Sleep(cfg.Latency / 10)
	}
	if cfg.DropRate > 0 && c.parent.roll() < cfg.DropRate {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}
