package emu

import (
	"net/http"
	"strings"
	"time"

	"mpcdash/internal/obs"
)

// Server-side observability: request counters, a server-side download
// latency histogram (which, behind a shaped listener, measures the shaped
// transfer the client experiences) and a per-request delivery throughput
// histogram for chunk requests.

// Server metric names, exported-by-convention via internal/obs constants
// so dashboards and tests agree on the spelling.
const (
	MetricServerRequests       = "mpcdash_server_requests_total"
	MetricServerRequestSeconds = "mpcdash_server_request_seconds"
	MetricServerBytesTotal     = "mpcdash_server_bytes_total"
	MetricServerThroughputKbps = "mpcdash_server_throughput_kbps"
)

// Instrument registers request metrics on reg and splices the measuring
// middleware into the server's handler chain. Call before Start/ServeOn,
// like Wrap.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	type handlerMetrics struct {
		requests *obs.Counter
		latency  *obs.Histogram
	}
	perHandler := make(map[string]handlerMetrics, 3)
	for _, h := range []string{"manifest", "chunk", "other"} {
		perHandler[h] = handlerMetrics{
			requests: reg.Counter(MetricServerRequests, "HTTP requests served.", "handler", h),
			latency:  reg.Histogram(MetricServerRequestSeconds, "Wall-clock request duration (shaped transfer included).", obs.DefTimeBuckets, "handler", h),
		}
	}
	bytes := reg.Counter(MetricServerBytesTotal, "Response bytes written.")
	throughput := reg.Histogram(MetricServerThroughputKbps, "Delivered throughput per chunk request in kbps.", obs.DefKbpsBuckets)

	s.Wrap(func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler := "other"
			switch {
			case r.URL.Path == "/manifest.mpd":
				handler = "manifest"
			case strings.HasPrefix(r.URL.Path, "/video/"):
				handler = "chunk"
			}
			cw := &countingWriter{ResponseWriter: w}
			begin := time.Now()
			next.ServeHTTP(cw, r)
			elapsed := time.Since(begin).Seconds()

			m := perHandler[handler]
			m.requests.Inc()
			m.latency.Observe(elapsed)
			bytes.Add(uint64(cw.n))
			if handler == "chunk" && elapsed > 0 && cw.n > 0 {
				throughput.Observe(float64(cw.n) * 8 / 1000 / elapsed)
			}
		})
	})
}

// countingWriter counts response body bytes.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}
