package emu

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mpcdash/internal/model"
	"mpcdash/internal/mpd"
)

// Server is the chunk origin: it serves the MPD manifest at /manifest.mpd
// and chunk payloads at /video/<level>/<number>.m4s, the node.js role in
// the paper's testbed. Payload bytes are a deterministic pattern of the
// exact manifest-declared length.
type Server struct {
	Manifest *model.Manifest

	http *http.Server
	addr string
}

// NewServer builds a server for the given video.
func NewServer(m *model.Manifest) *Server {
	s := &Server{Manifest: m}
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.mpd", s.handleManifest)
	mux.HandleFunc("/video/", s.handleChunk)
	s.http = &http.Server{Handler: mux}
	return s
}

// Wrap replaces the server's handler with mw(current). Call before Start;
// it is how tests splice HTTP-level fault injection (see StatusFaults)
// into the request path.
func (s *Server) Wrap(mw func(http.Handler) http.Handler) {
	s.http.Handler = mw(s.http.Handler)
}

// Start begins serving on a loopback port with all responses shaped by s's
// trace, returning the base URL (e.g. "http://127.0.0.1:41234").
func (s *Server) Start(shaper *Shaper) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("emu: listen: %w", err)
	}
	s.addr = ln.Addr().String()
	go func() { //lint:allow ctxleak Serve exits when Server.Close closes the listener
		// Serve returns ErrServerClosed on Close; other errors mean the
		// listener died, which the client will observe as request errors.
		_ = s.http.Serve(NewListener(ln, shaper))
	}()
	return "http://" + s.addr, nil
}

// ServeOn serves on a caller-provided listener (typically an emu.Listener
// wrapping a shaped link) and blocks until the server is closed.
func (s *Server) ServeOn(ln net.Listener) error {
	s.addr = ln.Addr().String()
	return s.http.Serve(ln)
}

// defaultDrain bounds how long Close waits for in-flight downloads. A
// chunk at the lowest Envivio level over a starved link finishes well
// inside this on the shaped loopback paths the server exists for.
const defaultDrain = 10 * time.Second

// Close shuts the server down gracefully: the listener closes at once (no
// new requests), in-flight chunk downloads run to completion, and only
// past the default drain deadline are their connections cut. A player
// mid-download across a Close sees its GET complete instead of an
// "unexpected EOF" it would then burn a retry on.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), defaultDrain)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown is Close with a caller-bounded drain deadline: it stops
// accepting, waits for in-flight requests until ctx is done, then
// hard-closes whatever remains.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Drain deadline blown: cut the remaining connections.
		_ = s.http.Close()
	}
	return err
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	doc := mpd.FromManifest(s.Manifest, "/video")
	data, err := doc.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	_, _ = w.Write(data)
}

// handleChunk serves /video/<level>/<number>.m4s; numbers are 1-based as in
// DASH $Number$ templates.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/video/"), "/")
	if len(parts) != 2 || !strings.HasSuffix(parts[1], ".m4s") {
		http.NotFound(w, r)
		return
	}
	level, err1 := strconv.Atoi(parts[0])
	number, err2 := strconv.Atoi(strings.TrimSuffix(parts[1], ".m4s"))
	if err1 != nil || err2 != nil ||
		level < 0 || level >= s.Manifest.Levels() ||
		number < 1 || number > s.Manifest.ChunkCount {
		http.NotFound(w, r)
		return
	}
	size := mpd.ChunkBytes(s.Manifest, number-1, level)
	w.Header().Set("Content-Type", "video/iso.segment")
	w.Header().Set("Accept-Ranges", "bytes")

	// Honour single-range "bytes=N-" requests so the client can resume a
	// truncated transfer instead of re-downloading the whole chunk.
	offset, ok := parseRangeStart(r.Header.Get("Range"), size)
	if !ok {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		http.Error(w, "unsatisfiable range", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	remaining := size - offset
	w.Header().Set("Content-Length", strconv.Itoa(remaining))
	if offset > 0 {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", offset, size-1, size))
		w.WriteHeader(http.StatusPartialContent)
	}

	// Deterministic payload; written in slices to cooperate with shaping.
	buf := make([]byte, 32*1024)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	for remaining > 0 {
		n := remaining
		if n > len(buf) {
			n = len(buf)
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return // client went away
		}
		remaining -= n
	}
}

// parseRangeStart interprets a Range header against a body of the given
// size. An empty header or one in an unsupported form (multi-range,
// suffix-range) yields offset 0 — a full response, the behaviour of a
// server that ignores Range. A well-formed "bytes=N-" beyond the end is
// unsatisfiable (ok = false).
func parseRangeStart(h string, size int) (offset int, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	start, open := strings.CutSuffix(spec, "-")
	if !found || !open || strings.ContainsAny(start, ",-") {
		return 0, true
	}
	n, err := strconv.Atoi(start)
	if err != nil || n < 0 {
		return 0, true
	}
	if n >= size {
		return 0, false
	}
	return n, true
}
