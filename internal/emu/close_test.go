package emu

import (
	"io"
	"net/http"
	"testing"
	"time"

	"mpcdash/internal/mpd"
	"mpcdash/internal/trace"
)

// TestInFlightDownloadCompletesAcrossClose pins the graceful-close
// contract: Close stops the listener at once but an in-flight chunk
// download runs to completion, so a player mid-chunk sees a full body
// instead of an unexpected EOF it would burn a retry on.
func TestInFlightDownloadCompletesAcrossClose(t *testing.T) {
	m := testVideo(t, 2)
	// 1400 kbps link vs a 1400 kbit lowest-level chunk: the download takes
	// about a second — long enough to close the server around it.
	tr, err := trace.FromRates("slow", 10, []float64{1400})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	base, err := srv.Start(NewShaper(tr))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/video/0/1.m4s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Make sure the transfer is genuinely in flight before closing.
	var first [1]byte
	if _, err := io.ReadFull(resp.Body, first[:]); err != nil {
		t.Fatal(err)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()

	// New connections are refused once the listener closes; poll because
	// Close runs concurrently with us.
	probe := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(5 * time.Second)
	refused := false
	for time.Now().Before(deadline) {
		r, err := probe.Get(base + "/manifest.mpd")
		if err != nil {
			refused = true
			break
		}
		r.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("server still accepting new connections long after Close")
	}

	// The in-flight body still arrives complete.
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("in-flight download broken by Close: %v", err)
	}
	if got, want := 1+len(rest), mpd.ChunkBytes(m, 0, 0); got != want {
		t.Fatalf("in-flight download delivered %d bytes across Close, want %d", got, want)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
