// Package emu is the real-network counterpart of the simulator (Sec 7.2):
// an HTTP chunk server and a DASH client exchanging real bytes over real
// TCP sockets, with the link throughput shaped to follow a throughput trace
// — the role the paper's `tc` throttling plays on Emulab. A time-scale
// factor compresses the experiment so a 260 s session can run in seconds of
// wall time while exercising the identical controller code path.
package emu

import (
	"net"
	"time"

	"mpcdash/internal/trace"
)

// shapeQuantum is the pacing granularity of the shaper. Small enough that
// chunk downloads span many quanta even under time compression.
const shapeQuantum = 2 * time.Millisecond

// Shaper paces writes on a connection so the delivered rate follows the
// trace (already time-compressed by the caller if desired). One Shaper
// shapes one direction of one link; concurrent connections sharing it
// contend for the same tokens like flows sharing a bottleneck.
type Shaper struct {
	Trace *trace.Trace
	start time.Time
}

// NewShaper starts the shaping clock now.
func NewShaper(tr *trace.Trace) *Shaper {
	return &Shaper{Trace: tr, start: time.Now()}
}

// allowance returns how many bytes may be sent during the quantum starting
// at elapsed time e.
func (s *Shaper) allowance(e time.Duration) int {
	kbps := s.Trace.RateAt(e.Seconds())
	b := int(kbps * 1000 / 8 * shapeQuantum.Seconds())
	if b < 1 {
		b = 1 // never stall completely; a real link drains eventually
	}
	return b
}

// shapedConn rate-limits Write according to the shaper's trace.
type shapedConn struct {
	net.Conn
	s *Shaper
}

// Write implements net.Conn, pacing the payload into per-quantum slices.
func (c *shapedConn) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		e := time.Since(c.s.start)
		n := c.s.allowance(e)
		if n > len(p) {
			n = len(p)
		}
		w, err := c.Conn.Write(p[:n])
		written += w
		if err != nil {
			return written, err
		}
		p = p[w:]
		if len(p) > 0 {
			// Wait out the remainder of the quantum before the next slice.
			time.Sleep(shapeQuantum)
		}
	}
	return written, nil
}

// Listener wraps an accepting listener so every connection's writes are
// shaped by the same Shaper (one bottleneck link).
type Listener struct {
	net.Listener
	Shaper *Shaper
}

// NewListener shapes all connections accepted from inner.
func NewListener(inner net.Listener, s *Shaper) *Listener {
	return &Listener{Listener: inner, Shaper: s}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &shapedConn{Conn: c, s: l.Shaper}, nil
}
