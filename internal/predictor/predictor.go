// Package predictor implements the throughput predictors of Sec 7.1.2: the
// harmonic-mean estimator used by RB, FESTIVE and the MPC family, the
// error-tracking wrapper that supplies RobustMPC's lower bound, and the
// oracle predictors (perfect and noisy) used by MPC-OPT and the Fig 11a
// sensitivity sweep.
package predictor

// Predictor forecasts the throughput of upcoming chunk downloads.
// Implementations are stateful per playback session and not safe for
// concurrent use; the runner creates a fresh predictor per session.
type Predictor interface {
	// Name identifies the predictor in logs and experiment output.
	Name() string
	// Observe records the measured average throughput (kbps) of a
	// completed chunk download, in order.
	Observe(kbps float64)
	// Predict returns the predicted throughput in kbps for each of the
	// next n chunk downloads. A non-positive prediction means "unknown";
	// controllers fall back to the lowest bitrate.
	Predict(n int) []float64
}

// LowerBounder is implemented by predictors that can report a conservative
// throughput bound; RobustMPC consumes it (Theorem 1).
type LowerBounder interface {
	// LowerBound returns per-chunk lower bounds aligned with Predict(n).
	LowerBound(n int) []float64
}

// TimeAware is implemented by oracle predictors that need to know the
// current session time before predicting. The simulator calls SetTime
// immediately before each Predict.
type TimeAware interface {
	SetTime(sec float64)
}

// repeat returns v replicated n times.
func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// HarmonicMean predicts the harmonic mean of the last Window observed
// per-chunk throughputs (default 5), the estimator Jiang et al. found
// robust to outliers. Before any observation it predicts zero ("unknown").
type HarmonicMean struct {
	Window int
	obs    []float64
}

// NewHarmonicMean returns a harmonic-mean predictor over the last window
// observations; window ≤ 0 selects the paper's default of 5.
func NewHarmonicMean(window int) *HarmonicMean {
	if window <= 0 {
		window = 5
	}
	return &HarmonicMean{Window: window}
}

// Name implements Predictor.
func (h *HarmonicMean) Name() string { return "harmonic" }

// Observe implements Predictor.
func (h *HarmonicMean) Observe(kbps float64) {
	if kbps <= 0 {
		kbps = 1e-3 // a failed download still counts as terrible throughput
	}
	h.obs = append(h.obs, kbps)
	if len(h.obs) > h.Window {
		h.obs = h.obs[len(h.obs)-h.Window:]
	}
}

// Predict implements Predictor.
func (h *HarmonicMean) Predict(n int) []float64 {
	return repeat(h.Current(), n)
}

// Current returns the scalar harmonic-mean estimate (0 if no observations).
func (h *HarmonicMean) Current() float64 {
	if len(h.obs) == 0 {
		return 0
	}
	var inv float64
	for _, o := range h.obs {
		inv += 1 / o
	}
	return float64(len(h.obs)) / inv
}

// LastSample predicts the most recent observation; the naive baseline.
type LastSample struct{ last float64 }

// Name implements Predictor.
func (l *LastSample) Name() string { return "last" }

// Observe implements Predictor.
func (l *LastSample) Observe(kbps float64) { l.last = kbps }

// Predict implements Predictor.
func (l *LastSample) Predict(n int) []float64 { return repeat(l.last, n) }

// EWMA predicts an exponentially weighted moving average with smoothing
// factor Alpha in (0,1]; higher alpha weights recent samples more.
type EWMA struct {
	Alpha float64
	est   float64
	seen  bool
}

// NewEWMA returns an EWMA predictor; alpha outside (0,1] selects 0.4.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	return &EWMA{Alpha: alpha}
}

// Name implements Predictor.
func (e *EWMA) Name() string { return "ewma" }

// Observe implements Predictor.
func (e *EWMA) Observe(kbps float64) {
	if !e.seen {
		e.est = kbps
		e.seen = true
		return
	}
	e.est = e.Alpha*kbps + (1-e.Alpha)*e.est
}

// Predict implements Predictor.
func (e *EWMA) Predict(n int) []float64 {
	if !e.seen {
		return repeat(0, n)
	}
	return repeat(e.est, n)
}
