package predictor

import (
	"math/rand"

	"mpcdash/internal/trace"
)

// Oracle predicts future throughput by reading the ground-truth trace:
// step i of the forecast is the trace's average rate over the window
// [t + i·Step, t + (i+1)·Step] where t is the current session time. With
// Step equal to the chunk duration this is the "perfect prediction"
// MPC-OPT uses; the window average is the natural definition of a chunk's
// future throughput before its exact download interval is known.
type Oracle struct {
	Trace *trace.Trace
	Step  float64 // forecast window per chunk, seconds (the chunk duration)

	now float64
}

// NewOracle returns a perfect predictor over tr with the given per-chunk
// window (seconds).
func NewOracle(tr *trace.Trace, step float64) *Oracle {
	return &Oracle{Trace: tr, Step: step}
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// SetTime implements TimeAware.
func (o *Oracle) SetTime(sec float64) { o.now = sec }

// Observe implements Predictor (the oracle needs no feedback).
func (o *Oracle) Observe(kbps float64) {}

// Predict implements Predictor.
func (o *Oracle) Predict(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = o.Trace.AverageRate(o.now+float64(i)*o.Step, o.Step)
	}
	return out
}

// NoisyOracle corrupts a perfect forecast with multiplicative noise so the
// average absolute percentage error equals ErrorLevel, the independent
// variable of Fig 11a. Each forecast entry is true·(1+e) with
// e ~ Uniform(−2·ErrorLevel, 2·ErrorLevel) clamped above −0.95, which has
// E[|e|] = ErrorLevel.
type NoisyOracle struct {
	Oracle
	ErrorLevel float64
	rng        *rand.Rand
}

// NewNoisyOracle returns an oracle with the given average error level,
// deterministic for a given seed.
func NewNoisyOracle(tr *trace.Trace, step, errorLevel float64, seed int64) *NoisyOracle {
	return &NoisyOracle{
		Oracle:     Oracle{Trace: tr, Step: step},
		ErrorLevel: errorLevel,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Name implements Predictor.
func (o *NoisyOracle) Name() string { return "noisy-oracle" }

// Predict implements Predictor.
func (o *NoisyOracle) Predict(n int) []float64 {
	out := o.Oracle.Predict(n)
	for i := range out {
		e := (o.rng.Float64()*2 - 1) * 2 * o.ErrorLevel
		if e < -0.95 {
			e = -0.95
		}
		out[i] *= 1 + e
	}
	return out
}
