package predictor

import (
	"math"
	"testing"

	"mpcdash/internal/trace"
)

func TestAR1ColdAndDefaults(t *testing.T) {
	a := NewAR1(0)
	if a.Window != 12 {
		t.Errorf("default window = %d, want 12", a.Window)
	}
	if got := a.Predict(3); got[0] != 0 || got[2] != 0 {
		t.Errorf("cold AR1 = %v, want zeros", got)
	}
	if a.Name() != "ar1" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestAR1ConstantSeries(t *testing.T) {
	a := NewAR1(10)
	for i := 0; i < 10; i++ {
		a.Observe(1500)
	}
	for i, v := range a.Predict(5) {
		if math.Abs(v-1500) > 1 {
			t.Errorf("step %d = %v, want ≈1500", i, v)
		}
	}
}

func TestAR1TracksTrend(t *testing.T) {
	// A geometric ramp x_{t+1} = 1.0·x_t + 100 should be captured and
	// extrapolated upward.
	a := NewAR1(12)
	x := 500.0
	for i := 0; i < 12; i++ {
		a.Observe(x)
		x += 100
	}
	p := a.Predict(3)
	last := x - 100
	if p[0] <= last {
		t.Errorf("AR1 should extrapolate the ramp: next %v after %v", p[0], last)
	}
	if p[1] <= p[0] {
		t.Errorf("multi-step forecast should continue rising: %v", p)
	}
}

func TestAR1OutperformsHarmonicOnAR1Channel(t *testing.T) {
	// Synthesize an actual AR(1) series and compare one-step errors.
	ar := NewAR1(12)
	hm := NewHarmonicMean(5)
	x := 2000.0
	var arErr, hmErr float64
	n := 0
	rng := func(i int) float64 { // deterministic pseudo-noise
		return math.Sin(float64(i)*12.9898) * 200
	}
	for i := 0; i < 200; i++ {
		next := 0.9*x + 150 + rng(i)
		if i > 20 {
			pa, ph := ar.Predict(1)[0], hm.Predict(1)[0]
			arErr += math.Abs(pa - next)
			hmErr += math.Abs(ph - next)
			n++
		}
		ar.Observe(next)
		hm.Observe(next)
		x = next
	}
	if arErr >= hmErr {
		t.Errorf("AR1 error %v should beat harmonic %v on an AR(1) channel", arErr/float64(n), hmErr/float64(n))
	}
}

func TestAR1NonPositiveGuard(t *testing.T) {
	a := NewAR1(5)
	a.Observe(-100)
	a.Observe(0)
	for _, v := range a.Predict(3) {
		if v < 0 {
			t.Errorf("negative forecast %v", v)
		}
	}
}

func TestEnsembleWeighting(t *testing.T) {
	// One member is an oracle-like perfect predictor, the other is always
	// wrong; after a few observations the ensemble must lean to the good
	// one.
	good := &LastSample{}
	bad := NewHarmonicMean(5)
	e := NewEnsemble(5, good, bad)
	if e.Name() != "ensemble" {
		t.Errorf("Name = %q", e.Name())
	}

	// Feed a constant channel to the good member and poison the bad one's
	// history directly so its forecasts are far off.
	for i := 0; i < 10; i++ {
		bad.Observe(10000)
	}
	const truth = 1000.0
	for i := 0; i < 6; i++ {
		e.Predict(1)
		// Only score/observe: LastSample will lock onto the truth while
		// the harmonic member keeps predicting its poisoned history for
		// the first rounds.
		good.last = truth
		e.Observe(truth)
		for j := 0; j < 9; j++ {
			bad.Observe(10000) // keep the bad member wrong
		}
	}
	p := e.Predict(1)[0]
	if math.Abs(p-truth) > math.Abs(p-10000) {
		t.Errorf("ensemble %v should sit nearer the accurate member (%v) than the poisoned one", p, truth)
	}
}

func TestEnsembleForwardsSetTime(t *testing.T) {
	tr, err := trace.FromRates("e", 4, []float64{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnsemble(5, NewOracle(tr, 4))
	e.SetTime(4)
	if got := e.Predict(1)[0]; math.Abs(got-2000) > 1e-9 {
		t.Errorf("forwarded SetTime: %v, want 2000", got)
	}
}

func TestEnsembleEmpty(t *testing.T) {
	e := NewEnsemble(5)
	if got := e.Predict(2); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty ensemble = %v", got)
	}
	e.Observe(100) // must not panic
}
