package predictor

import "math"

// AR1 fits a first-order autoregressive model x_{t+1} = a·x_t + b to the
// observed per-chunk throughputs by sliding-window least squares and
// iterates it forward for multi-step forecasts. Sec 8 calls for better
// predictors than the harmonic mean; AR(1) is the natural next step when
// throughput has momentum (regime drifts) rather than isolated outliers.
type AR1 struct {
	Window int // observations retained for the fit (default 12)
	obs    []float64
}

// NewAR1 returns an AR(1) predictor; window ≤ 2 selects 12.
func NewAR1(window int) *AR1 {
	if window <= 2 {
		window = 12
	}
	return &AR1{Window: window}
}

// Name implements Predictor.
func (a *AR1) Name() string { return "ar1" }

// Observe implements Predictor.
func (a *AR1) Observe(kbps float64) {
	if kbps <= 0 {
		kbps = 1e-3
	}
	a.obs = append(a.obs, kbps)
	if len(a.obs) > a.Window {
		a.obs = a.obs[len(a.obs)-a.Window:]
	}
}

// fit returns the least-squares (a, b) of x_{t+1} = a·x_t + b over the
// window, falling back to a random-walk (1, 0) when the fit is degenerate.
func (a *AR1) fit() (slope, intercept float64) {
	n := len(a.obs) - 1
	if n < 2 {
		return 1, 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x, y := a.obs[i], a.obs[i+1]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := float64(n)*sxx - sx*sx
	if math.Abs(den) < 1e-9 {
		return 1, 0
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	// Clamp to a stable, mean-reverting regime; an explosive fit on a
	// short window is noise, not signal.
	if slope > 1 {
		slope = 1
	}
	if slope < -1 {
		slope = -1
	}
	return slope, intercept
}

// Predict implements Predictor: iterate the fitted recurrence n steps.
func (a *AR1) Predict(n int) []float64 {
	out := make([]float64, n)
	if len(a.obs) == 0 {
		return out
	}
	slope, intercept := a.fit()
	x := a.obs[len(a.obs)-1]
	for i := range out {
		x = slope*x + intercept
		if x < 1e-3 {
			x = 1e-3
		}
		out[i] = x
	}
	return out
}

// Ensemble averages the forecasts of several predictors with inverse-error
// weighting: each member's weight is 1/(recent mean absolute percentage
// error + ε), so whichever model currently tracks the channel dominates.
type Ensemble struct {
	Members []Predictor
	Window  int // error-averaging window (default 5)

	pending [][]float64 // last first-step prediction per member
	errs    [][]float64 // recent errors per member
}

// NewEnsemble combines members (at least one) with inverse-error weights.
func NewEnsemble(window int, members ...Predictor) *Ensemble {
	if window <= 0 {
		window = 5
	}
	return &Ensemble{
		Members: members,
		Window:  window,
		errs:    make([][]float64, len(members)),
	}
}

// Name implements Predictor.
func (e *Ensemble) Name() string { return "ensemble" }

// SetTime forwards to time-aware members.
func (e *Ensemble) SetTime(sec float64) {
	for _, m := range e.Members {
		if ta, ok := m.(TimeAware); ok {
			ta.SetTime(sec)
		}
	}
}

// Observe implements Predictor: score every member's pending prediction,
// then forward the observation.
func (e *Ensemble) Observe(kbps float64) {
	for i, m := range e.Members {
		if e.pending != nil && len(e.pending[i]) > 0 && kbps > 0 && e.pending[i][0] > 0 {
			err := math.Abs(e.pending[i][0]-kbps) / kbps
			e.errs[i] = append(e.errs[i], err)
			if len(e.errs[i]) > e.Window {
				e.errs[i] = e.errs[i][len(e.errs[i])-e.Window:]
			}
		}
		m.Observe(kbps)
	}
	e.pending = nil
}

// weight returns member i's current inverse-error weight.
func (e *Ensemble) weight(i int) float64 {
	const eps = 0.02
	if len(e.errs[i]) == 0 {
		return 1 / eps
	}
	var sum float64
	for _, v := range e.errs[i] {
		sum += v
	}
	return 1 / (sum/float64(len(e.errs[i])) + eps)
}

// Predict implements Predictor.
func (e *Ensemble) Predict(n int) []float64 {
	if len(e.Members) == 0 {
		return make([]float64, n)
	}
	e.pending = make([][]float64, len(e.Members))
	out := make([]float64, n)
	var totalW float64
	for i, m := range e.Members {
		p := m.Predict(n)
		e.pending[i] = p
		w := e.weight(i)
		totalW += w
		for j := range out {
			if j < len(p) {
				out[j] += w * p[j]
			}
		}
	}
	if totalW > 0 {
		for j := range out {
			out[j] /= totalW
		}
	}
	return out
}
