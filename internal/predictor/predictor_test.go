package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"mpcdash/internal/trace"
)

func TestHarmonicMean(t *testing.T) {
	h := NewHarmonicMean(5)
	if got := h.Predict(3); got[0] != 0 || len(got) != 3 {
		t.Errorf("cold predictor: %v, want zeros", got)
	}
	h.Observe(100)
	h.Observe(400)
	// Harmonic mean of {100, 400} = 2/(1/100+1/400) = 160.
	if got := h.Current(); math.Abs(got-160) > 1e-9 {
		t.Errorf("harmonic mean = %v, want 160", got)
	}
	// Window slides: after 5 more observations the first two are gone.
	for i := 0; i < 5; i++ {
		h.Observe(1000)
	}
	if got := h.Current(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("after window slide = %v, want 1000", got)
	}
	p := h.Predict(4)
	for _, v := range p {
		if v != h.Current() {
			t.Errorf("Predict entries should equal Current: %v", p)
		}
	}
}

// TestHarmonicMeanRobustToOutliers: the reason the paper uses it — one
// outlier spike moves the harmonic mean less than the arithmetic mean.
func TestHarmonicMeanRobustToOutliers(t *testing.T) {
	h := NewHarmonicMean(5)
	obs := []float64{1000, 1000, 1000, 1000, 100000}
	var arith float64
	for _, o := range obs {
		h.Observe(o)
		arith += o / float64(len(obs))
	}
	if hm := h.Current(); hm >= arith/4 {
		t.Errorf("harmonic mean %v not robust vs arithmetic %v", hm, arith)
	}
}

func TestHarmonicMeanNonPositiveObservation(t *testing.T) {
	h := NewHarmonicMean(5)
	h.Observe(0)
	h.Observe(-10)
	if got := h.Current(); got <= 0 || math.IsNaN(got) {
		t.Errorf("degenerate observations should yield tiny positive mean, got %v", got)
	}
}

func TestDefaultWindows(t *testing.T) {
	if NewHarmonicMean(0).Window != 5 {
		t.Error("default harmonic window should be 5")
	}
	if NewEWMA(0).Alpha != 0.4 || NewEWMA(2).Alpha != 0.4 {
		t.Error("default EWMA alpha should be 0.4")
	}
	if NewErrorTracked(NewHarmonicMean(5), 0).Window != 5 {
		t.Error("default error window should be 5")
	}
}

func TestLastSample(t *testing.T) {
	l := &LastSample{}
	l.Observe(500)
	l.Observe(800)
	if got := l.Predict(2); got[0] != 800 || got[1] != 800 {
		t.Errorf("LastSample = %v, want 800s", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Predict(1); got[0] != 0 {
		t.Errorf("cold EWMA = %v, want 0", got[0])
	}
	e.Observe(1000)
	e.Observe(2000)
	if got := e.Predict(1)[0]; math.Abs(got-1500) > 1e-9 {
		t.Errorf("EWMA = %v, want 1500", got)
	}
}

func TestErrorTrackedLowerBound(t *testing.T) {
	et := NewErrorTracked(NewHarmonicMean(5), 5)
	// No prediction scored yet: lower bound equals the prediction.
	et.Inner.Observe(1000)
	lb := et.LowerBound(1)
	if math.Abs(lb[0]-1000) > 1e-9 {
		t.Errorf("unscored lower bound = %v, want 1000", lb[0])
	}
	// Predict 1000, observe 800: error = |1000-800|/800 = 0.25.
	et.Predict(1)
	et.Observe(800)
	if got := et.MaxError(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("MaxError = %v, want 0.25", got)
	}
	pred := et.Inner.Predict(1)[0]
	lb = et.LowerBound(1)
	if want := pred / 1.25; math.Abs(lb[0]-want) > 1e-9 {
		t.Errorf("LowerBound = %v, want %v", lb[0], want)
	}
}

// TestErrorTrackedBoundProperty: the bound never exceeds the prediction and
// stays positive for positive predictions.
func TestErrorTrackedBoundProperty(t *testing.T) {
	f := func(obs []float64) bool {
		et := NewErrorTracked(NewHarmonicMean(5), 5)
		for _, o := range obs {
			et.Predict(1)
			et.Observe(math.Abs(o) + 1)
		}
		p := et.Inner.Predict(1)[0]
		lb := et.LowerBound(1)[0]
		return lb <= p+1e-9 && (p <= 0 || lb > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestErrorTrackedName(t *testing.T) {
	et := NewErrorTracked(NewHarmonicMean(5), 5)
	if et.Name() != "harmonic+err" {
		t.Errorf("Name = %q", et.Name())
	}
}

func TestOracle(t *testing.T) {
	tr, err := trace.FromRates("o", 4, []float64{1000, 2000, 3000})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(tr, 4)
	o.SetTime(0)
	got := o.Predict(3)
	want := []float64{1000, 2000, 3000}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("oracle[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Mid-window prediction averages two segments.
	o.SetTime(2)
	if got := o.Predict(1)[0]; math.Abs(got-1500) > 1e-9 {
		t.Errorf("oracle mid = %v, want 1500", got)
	}
	o.Observe(123) // must be a no-op
	o.SetTime(0)
	if got := o.Predict(1)[0]; got != 1000 {
		t.Errorf("oracle after Observe = %v, want 1000", got)
	}
}

func TestNoisyOracle(t *testing.T) {
	tr, err := trace.FromRates("n", 4, []float64{1000, 1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	const level = 0.2
	no := NewNoisyOracle(tr, 4, level, 42)
	no.SetTime(0)
	var sumAbs float64
	const n = 3000
	for i := 0; i < n; i++ {
		p := no.Predict(1)[0]
		if p <= 0 {
			t.Fatalf("noisy prediction %v not positive", p)
		}
		sumAbs += math.Abs(p-1000) / 1000
	}
	avg := sumAbs / n
	if math.Abs(avg-level) > 0.03 {
		t.Errorf("average error = %v, want ≈%v", avg, level)
	}
	// Determinism for a fixed seed.
	a := NewNoisyOracle(tr, 4, level, 7)
	b := NewNoisyOracle(tr, 4, level, 7)
	a.SetTime(0)
	b.SetTime(0)
	for i := 0; i < 10; i++ {
		if a.Predict(1)[0] != b.Predict(1)[0] {
			t.Fatal("noisy oracle not deterministic per seed")
		}
	}
}

func TestErrorTrackedForwardsSetTime(t *testing.T) {
	tr, err := trace.FromRates("f", 4, []float64{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	et := NewErrorTracked(NewOracle(tr, 4), 5)
	et.SetTime(4)
	if got := et.Predict(1)[0]; math.Abs(got-2000) > 1e-9 {
		t.Errorf("forwarded SetTime: predict = %v, want 2000", got)
	}
}
