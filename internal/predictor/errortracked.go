package predictor

import "math"

// ErrorTracked wraps another predictor and tracks its realized percentage
// error, exposing the RobustMPC lower bound of Sec 7.1.2:
//
//	Ĉ_lower = Ĉ / (1 + err)
//
// where err is the maximum absolute percentage prediction error over the
// past Window chunks (default 5).
type ErrorTracked struct {
	Inner  Predictor
	Window int

	pending float64 // prediction issued for the chunk now downloading
	primed  bool
	errs    []float64 // recent |pred-actual|/actual
}

// NewErrorTracked wraps inner with error tracking over the last window
// chunks; window ≤ 0 selects 5.
func NewErrorTracked(inner Predictor, window int) *ErrorTracked {
	if window <= 0 {
		window = 5
	}
	return &ErrorTracked{Inner: inner, Window: window}
}

// Name implements Predictor.
func (e *ErrorTracked) Name() string { return e.Inner.Name() + "+err" }

// SetTime forwards to the inner predictor when it is time-aware.
func (e *ErrorTracked) SetTime(sec float64) {
	if ta, ok := e.Inner.(TimeAware); ok {
		ta.SetTime(sec)
	}
}

// Observe implements Predictor: it scores the pending prediction against
// the realized throughput, then forwards the observation.
func (e *ErrorTracked) Observe(kbps float64) {
	if e.primed && kbps > 0 && e.pending > 0 {
		e.errs = append(e.errs, math.Abs(e.pending-kbps)/kbps)
		if len(e.errs) > e.Window {
			e.errs = e.errs[len(e.errs)-e.Window:]
		}
	}
	e.primed = false
	e.Inner.Observe(kbps)
}

// Predict implements Predictor: it forwards to the inner predictor and
// remembers the first-step prediction for error scoring.
func (e *ErrorTracked) Predict(n int) []float64 {
	p := e.Inner.Predict(n)
	if len(p) > 0 {
		e.pending = p[0]
		e.primed = true
	}
	return p
}

// MaxError returns the maximum absolute percentage error over the window
// (0 before any scored prediction).
func (e *ErrorTracked) MaxError() float64 {
	var max float64
	for _, v := range e.errs {
		if v > max {
			max = v
		}
	}
	return max
}

// LowerBound implements LowerBounder: Ĉ/(1+err) per horizon step.
func (e *ErrorTracked) LowerBound(n int) []float64 {
	p := e.Inner.Predict(n)
	err := e.MaxError()
	for i := range p {
		p[i] /= 1 + err
	}
	return p
}
