package multiplayer

import (
	"math"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

func shortVideo(t *testing.T) *model.Manifest {
	t.Helper()
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func constLink(t *testing.T, kbps float64) *trace.Trace {
	t.Helper()
	tr, err := trace.FromRates("link", 1000, []float64{kbps})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rbPlayer(name string, m *model.Manifest) Player {
	return Player{
		Name:       name,
		Controller: abr.NewRB(1)(m),
		Predictor:  predictor.NewHarmonicMean(5),
	}
}

func TestRunValidation(t *testing.T) {
	m := shortVideo(t)
	link := constLink(t, 2000)
	if _, err := Run(m, link, []Player{rbPlayer("a", m)}, Config{BufferMax: 0}); err == nil {
		t.Error("zero buffer should fail")
	}
	if _, err := Run(m, link, nil, Config{BufferMax: 30}); err == nil {
		t.Error("no players should fail")
	}
	dead, err := trace.FromRates("dead", 10, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, dead, []Player{rbPlayer("a", m)}, Config{BufferMax: 30}); err == nil {
		t.Error("dead link should fail")
	}
}

func TestSinglePlayerCompletes(t *testing.T) {
	m := shortVideo(t)
	res, err := Run(m, constLink(t, 2000), []Player{rbPlayer("solo", m)}, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 || len(res.Sessions[0].Chunks) != m.ChunkCount {
		t.Fatalf("session incomplete: %d chunks", len(res.Sessions[0].Chunks))
	}
	if res.JainIndex != 1 {
		t.Errorf("single player Jain = %v, want 1", res.JainIndex)
	}
	// A lone downloader on an ample link should measure close to the full
	// link rate.
	mid := res.Sessions[0].Chunks[5]
	if mid.Throughput < 1500 || mid.Throughput > 2100 {
		t.Errorf("solo throughput %v, want ≈2000", mid.Throughput)
	}
}

func TestTwoPlayersShareFairly(t *testing.T) {
	m := shortVideo(t)
	players := []Player{rbPlayer("a", m), rbPlayer("b", m)}
	res, err := Run(m, constLink(t, 3000), players, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.JainIndex < 0.9 {
		t.Errorf("identical players should share fairly: Jain = %v", res.JainIndex)
	}
	// While both are downloading each sees about half the link.
	early := res.Sessions[0].Chunks[1]
	if early.Throughput > 2200 {
		t.Errorf("shared throughput %v too high for a 3000 kbps link with 2 players", early.Throughput)
	}
	for _, sr := range res.Sessions {
		if len(sr.Chunks) != m.ChunkCount {
			t.Fatalf("%s incomplete: %d chunks", sr.Algorithm, len(sr.Chunks))
		}
	}
}

// TestSoloVsShared: adding a competitor must not increase a player's
// average bitrate.
func TestSoloVsShared(t *testing.T) {
	m := shortVideo(t)
	link := constLink(t, 2500)
	solo, err := Run(m, link, []Player{rbPlayer("a", m)}, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(m, link, []Player{rbPlayer("a", m), rbPlayer("b", m)}, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	soloAvg := solo.Sessions[0].ComputeMetrics(model.QIdentity).AvgBitrate
	sharedAvg := shared.Sessions[0].ComputeMetrics(model.QIdentity).AvgBitrate
	if sharedAvg > soloAvg+1e-9 {
		t.Errorf("sharing increased bitrate: solo %v vs shared %v", soloAvg, sharedAvg)
	}
}

func TestStartOffsets(t *testing.T) {
	m := shortVideo(t)
	players := []Player{rbPlayer("early", m), rbPlayer("late", m)}
	players[1].StartOffset = 20
	res, err := Run(m, constLink(t, 2000), players, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions[1].Chunks[0].StartTime < 20 {
		t.Errorf("late player started at %v, want ≥20", res.Sessions[1].Chunks[0].StartTime)
	}
}

func TestBufferCapRespected(t *testing.T) {
	m := shortVideo(t)
	res, err := Run(m, constLink(t, 20000), []Player{rbPlayer("fast", m)}, Config{BufferMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Sessions[0].Chunks {
		if c.BufferAfter > 12+1e-6 {
			t.Errorf("chunk %d buffer %v exceeds cap", c.Index, c.BufferAfter)
		}
	}
}

func TestUndersizedLinkStalls(t *testing.T) {
	m := shortVideo(t)
	// Two players on a link that cannot sustain even two lowest-rate
	// streams: 500 kbps shared vs 2×350.
	players := []Player{rbPlayer("a", m), rbPlayer("b", m)}
	res, err := Run(m, constLink(t, 500), players, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	var stall float64
	for _, sr := range res.Sessions {
		stall += sr.ComputeMetrics(model.QIdentity).RebufferTime
	}
	if stall <= 0 {
		t.Error("expected stalls on a starved shared link")
	}
}

// TestMPCPlayersCoexist: the shared-link loop must handle MPC controllers
// (with error-tracked predictors) without deadlock and deliver full
// sessions.
func TestMPCPlayersCoexist(t *testing.T) {
	m := shortVideo(t)
	mk := func(name string) Player {
		return Player{
			Name:       name,
			Controller: core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5)(m),
			Predictor:  predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5),
		}
	}
	res, err := Run(m, constLink(t, 4000), []Player{mk("a"), mk("b")}, Config{BufferMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Sessions {
		if len(sr.Chunks) != m.ChunkCount {
			t.Fatalf("%s incomplete", sr.Algorithm)
		}
		qoe := sr.QoE(model.Balanced, model.QIdentity)
		if math.IsNaN(qoe) || math.IsInf(qoe, 0) {
			t.Fatalf("QoE = %v", qoe)
		}
	}
	if res.Utilization <= 0 || res.Utilization > 1.05 {
		t.Errorf("utilization = %v", res.Utilization)
	}
}

func TestJain(t *testing.T) {
	if got := jain([]float64{100, 100, 100}); math.Abs(got-1) > 1e-9 {
		t.Errorf("equal shares Jain = %v", got)
	}
	if got := jain([]float64{100, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("max skew Jain = %v, want 0.25", got)
	}
	if got := jain(nil); got != 0 {
		t.Errorf("empty Jain = %v", got)
	}
	if got := jain([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero Jain = %v, want 1", got)
	}
}
