// Package multiplayer extends the single-player model to the Sec 8
// discussion: several adaptive players share one bottleneck link. The link
// capacity follows a trace and is split equally among players that are
// actively downloading (the standard TCP-fairness approximation); players
// that pause with a full buffer release their share, which is precisely
// the interaction that makes multi-player adaptation unstable and that
// FESTIVE was designed around. The simulator is event-driven in continuous
// time and produces per-player session logs plus cross-player fairness,
// efficiency and stability metrics.
package multiplayer

import (
	"fmt"
	"math"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

// Player binds one controller + predictor pair to a session slot.
type Player struct {
	Name       string
	Controller abr.Controller
	Predictor  predictor.Predictor
	// StartOffset delays the player's arrival (seconds), modelling viewers
	// joining at different times.
	StartOffset float64
}

// Config parameterizes the shared-link simulation.
type Config struct {
	BufferMax float64 // per-player buffer cap, seconds
	Horizon   int     // forecast length requested from predictors
}

// Result is the outcome for one player plus the cross-player metrics.
type Result struct {
	Sessions []*model.SessionResult // one per player, in input order

	// Fairness metrics over the overlap period.
	JainIndex   float64 // Jain fairness index of average bitrates
	Utilization float64 // delivered kilobits / link capacity while ≥1 player active
	Instability float64 // mean per-player bitrate switches per chunk
}

// phase of a player's chunk loop.
type phase int

const (
	phaseArriving phase = iota // not yet started
	phaseDeciding              // about to pick the next chunk
	phaseDownload              // transferring
	phaseWaiting               // buffer full, holding off
	phaseDone
)

// state is one player's live simulation state.
type state struct {
	player Player
	phase  phase

	chunk     int
	prev      int
	buffer    float64
	playing   bool
	waitUntil float64

	// current download
	remaining  float64 // kbits left
	size       float64 // total kbits
	dlStart    float64
	dlStall    float64 // stall seconds accumulated during this download
	level      int
	predicted  float64
	bufAtStart float64

	records []model.ChunkRecord
	startup float64
}

// Run simulates all players over the shared link until every player
// finishes its video.
func Run(m *model.Manifest, link *trace.Trace, players []Player, cfg Config) (*Result, error) {
	if cfg.BufferMax <= 0 {
		return nil, fmt.Errorf("multiplayer: BufferMax must be positive, got %v", cfg.BufferMax)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 5
	}
	if len(players) == 0 {
		return nil, fmt.Errorf("multiplayer: no players")
	}
	if link.MaxRate() <= 0 {
		return nil, fmt.Errorf("multiplayer: link %q is dead", link.Name)
	}

	states := make([]*state, len(players))
	for i, p := range players {
		states[i] = &state{player: p, phase: phaseArriving, prev: -1}
	}

	const dt = 0.05 // integration step, seconds
	now := 0.0
	var deliveredKbits, capacityKbits float64

	for !allDone(states) {
		// Start decisions for players that are due.
		for _, s := range states {
			if s.phase == phaseArriving && now >= s.player.StartOffset {
				s.phase = phaseDeciding
			}
			if s.phase == phaseWaiting && now >= s.waitUntil {
				s.phase = phaseDeciding
			}
			if s.phase == phaseDeciding {
				beginChunk(m, s, now, cfg.Horizon)
			}
		}

		// Count active downloaders and split the link.
		active := 0
		for _, s := range states {
			if s.phase == phaseDownload {
				active++
			}
		}
		rate := link.RateAt(now)
		if active > 0 {
			capacityKbits += rate * dt
		}
		share := 0.0
		if active > 0 {
			share = rate / float64(active)
		}

		// Advance one step: transfer bytes, drain buffers, accrue stalls.
		for _, s := range states {
			if s.phase == phaseDownload {
				got := share * dt
				if got > s.remaining {
					got = s.remaining
				}
				s.remaining -= got
				deliveredKbits += got
			}
			if s.playing && s.phase != phaseDone {
				drain := dt
				if s.buffer < drain {
					stall := drain - s.buffer
					if s.phase == phaseDownload {
						s.dlStall += stall
					}
					s.buffer = 0
				} else {
					s.buffer -= drain
				}
			}
		}
		now += dt

		// Complete downloads.
		for _, s := range states {
			if s.phase == phaseDownload && s.remaining <= 1e-9 {
				finishChunk(m, s, now, cfg)
			}
		}

		if now > 1e6 {
			return nil, fmt.Errorf("multiplayer: simulation did not converge (t=%v)", now)
		}
	}

	res := &Result{Sessions: make([]*model.SessionResult, len(states))}
	var bitrates []float64
	var switches, chunks int
	for i, s := range states {
		sr := &model.SessionResult{
			Algorithm:    s.player.Controller.Name(),
			StartupDelay: s.startup,
			Chunks:       s.records,
		}
		res.Sessions[i] = sr
		met := sr.ComputeMetrics(model.QIdentity)
		bitrates = append(bitrates, met.AvgBitrate)
		switches += met.Switches
		chunks += len(sr.Chunks)
	}
	res.JainIndex = jain(bitrates)
	if capacityKbits > 0 {
		res.Utilization = deliveredKbits / capacityKbits
	}
	if chunks > 0 {
		res.Instability = float64(switches) / float64(chunks)
	}
	return res, nil
}

// beginChunk asks the controller for the next level and starts the
// transfer.
func beginChunk(m *model.Manifest, s *state, now float64, horizon int) {
	if ta, ok := s.player.Predictor.(predictor.TimeAware); ok {
		ta.SetTime(now)
	}
	forecast := s.player.Predictor.Predict(horizon)
	var lower []float64
	if lb, ok := s.player.Predictor.(predictor.LowerBounder); ok {
		lower = lb.LowerBound(horizon)
	}
	dec := s.player.Controller.Decide(abr.State{
		Chunk:    s.chunk,
		Buffer:   s.buffer,
		Prev:     s.prev,
		Time:     now,
		Forecast: forecast,
		Lower:    lower,
	})
	s.level = m.Ladder.Clamp(dec.Level)
	s.size = m.ChunkSize(s.chunk, s.level)
	s.remaining = s.size
	s.dlStart = now
	s.dlStall = 0
	s.bufAtStart = s.buffer
	if len(forecast) > 0 {
		s.predicted = forecast[0]
	}
	s.phase = phaseDownload
}

// finishChunk records the completed transfer and schedules what's next.
func finishChunk(m *model.Manifest, s *state, now float64, cfg Config) {
	dl := now - s.dlStart
	throughput := s.size / math.Max(dl, 1e-9)
	s.player.Predictor.Observe(throughput)

	if s.chunk == 0 {
		// Play as soon as the first chunk arrives.
		s.playing = true
		s.startup = dl
	}
	s.buffer += m.ChunkDuration
	wait := math.Max(s.buffer-cfg.BufferMax, 0)
	s.buffer -= wait

	s.records = append(s.records, model.ChunkRecord{
		Index:        s.chunk,
		Level:        s.level,
		Bitrate:      m.Ladder[s.level],
		SizeKbits:    s.size,
		StartTime:    s.dlStart,
		DownloadTime: dl,
		Throughput:   throughput,
		BufferBefore: s.bufAtStart,
		BufferAfter:  s.buffer,
		Rebuffer:     s.dlStall,
		Wait:         wait,
		Predicted:    s.predicted,
	})
	s.prev = s.level
	s.chunk++
	if s.chunk >= m.ChunkCount {
		s.phase = phaseDone
		return
	}
	if wait > 0 {
		s.phase = phaseWaiting
		s.waitUntil = now + wait
		return
	}
	s.phase = phaseDeciding
	beginChunk(m, s, now, cfg.Horizon)
}

func allDone(states []*state) bool {
	for _, s := range states {
		if s.phase != phaseDone {
			return false
		}
	}
	return true
}

// jain computes the Jain fairness index: (Σx)² / (n·Σx²), 1 for perfect
// equality, → 1/n for maximal skew.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 { //lint:allow floateq exact-zero divisor guard; epsilon would misclassify tiny allocations
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
