package mdp

import (
	"mpcdash/internal/abr"
	"mpcdash/internal/model"
)

// Controller adapts bitrate with a value-iteration policy. It starts from a
// prior chain (e.g. fitted offline to the dataset family) and re-solves the
// policy every RefitEvery chunks from the session's own observations, the
// online-learning variant sketched in Sec 8.
type Controller struct {
	Manifest  *model.Manifest
	Weights   model.Weights
	Quality   model.QualityFunc
	BufferMax float64

	// ChainStates and RefitEvery configure the online chain learning;
	// RefitEvery = 0 disables refitting (pure prior policy).
	ChainStates int
	RefitEvery  int

	policy *Policy
	obs    []float64
	since  int
}

// NewController returns a Factory for the MDP controller with the given
// prior chain (nil lets the first refit establish the model; until then it
// behaves rate-based).
func NewController(w model.Weights, q model.QualityFunc, bufferMax float64, prior *ThroughputChain, chainStates, refitEvery int) abr.Factory {
	return func(m *model.Manifest) abr.Controller {
		c := &Controller{
			Manifest:    m,
			Weights:     w,
			Quality:     q,
			BufferMax:   bufferMax,
			ChainStates: chainStates,
			RefitEvery:  refitEvery,
		}
		if prior != nil {
			// Solve eagerly so the first chunks already follow the prior.
			if p, err := Solve(m, w, q, prior, bufferMax, 60, 0.9, 200); err == nil {
				c.policy = p
			}
		}
		return c
	}
}

// Name implements abr.Controller.
func (c *Controller) Name() string { return "MDP" }

// Decide implements abr.Controller.
func (c *Controller) Decide(s abr.State) abr.Decision {
	rate := s.PredictedRate()
	if rate > 0 {
		c.obs = append(c.obs, rate)
	}
	c.since++
	if c.RefitEvery > 0 && c.since >= c.RefitEvery && len(c.obs) >= 2*c.ChainStates {
		if chain, err := LearnChain(c.obs, c.ChainStates); err == nil {
			if p, err := Solve(c.Manifest, c.Weights, c.Quality, chain, c.BufferMax, 60, 0.9, 200); err == nil {
				c.policy = p
				c.since = 0
			}
		}
	}
	if c.policy == nil || rate <= 0 {
		// No model yet: fall back to the rate-based rule.
		lvl := 0
		if rate > 0 {
			lvl = c.Manifest.Ladder.HighestBelow(rate)
		}
		return abr.Decision{Level: lvl}
	}
	return abr.Decision{Level: c.policy.Action(s.Buffer, rate, s.Prev)}
}
