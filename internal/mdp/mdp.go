// Package mdp implements the Markov-decision-process control strawman the
// paper weighs against MPC (Sec 4.1) and defers to future work (Sec 8):
// model throughput as a finite Markov chain, discretize the player state,
// and compute an optimal policy by value iteration. The comparison is
// instructive — MDP control is optimal exactly when throughput really is
// Markov (the Synthetic dataset), and degrades when that assumption breaks
// (the measured-like traces), which is the paper's stated reason for
// preferring MPC.
package mdp

import (
	"fmt"
	"math"

	"mpcdash/internal/model"
)

// ThroughputChain is a finite-state Markov model of the channel: state i
// means "the next chunk downloads at about Rates[i] kbps".
type ThroughputChain struct {
	Rates      []float64   // representative kbps per state, ascending
	Transition [][]float64 // row-stochastic transition matrix
}

// Validate reports structural errors.
func (c *ThroughputChain) Validate() error {
	n := len(c.Rates)
	if n == 0 {
		return fmt.Errorf("mdp: chain has no states")
	}
	if len(c.Transition) != n {
		return fmt.Errorf("mdp: %d rates but %d transition rows", n, len(c.Transition))
	}
	for i, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("mdp: non-positive rate %v in state %d", r, i)
		}
		if i > 0 && r <= c.Rates[i-1] {
			return fmt.Errorf("mdp: rates not ascending at state %d", i)
		}
	}
	for i, row := range c.Transition {
		if len(row) != n {
			return fmt.Errorf("mdp: transition row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("mdp: negative probability in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("mdp: transition row %d sums to %v", i, sum)
		}
	}
	return nil
}

// StateOf quantizes an observed throughput to the nearest chain state.
func (c *ThroughputChain) StateOf(kbps float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, r := range c.Rates {
		if d := math.Abs(r - kbps); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// LearnChain fits a Markov chain to a sequence of per-chunk throughput
// observations: rates are quantized onto `states` log-spaced levels between
// the observed min and max, and transitions are counted with add-one
// smoothing. This is the paper's "formulate the throughput transition as a
// Markov process and learn it from history".
func LearnChain(observations []float64, states int) (*ThroughputChain, error) {
	if states < 2 {
		return nil, fmt.Errorf("mdp: need at least 2 states, got %d", states)
	}
	if len(observations) < 2 {
		return nil, fmt.Errorf("mdp: need at least 2 observations, got %d", len(observations))
	}
	lo, hi := math.Inf(1), 0.0
	for _, o := range observations {
		if o <= 0 {
			return nil, fmt.Errorf("mdp: non-positive observation %v", o)
		}
		lo = math.Min(lo, o)
		hi = math.Max(hi, o)
	}
	if hi <= lo {
		hi = lo * 1.01 // degenerate constant series
	}
	chain := &ThroughputChain{Rates: make([]float64, states)}
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := range chain.Rates {
		frac := (float64(i) + 0.5) / float64(states)
		chain.Rates[i] = math.Exp(logLo + frac*(logHi-logLo))
	}
	counts := make([][]float64, states)
	for i := range counts {
		counts[i] = make([]float64, states)
		for j := range counts[i] {
			counts[i][j] = 1 // Laplace smoothing
		}
	}
	prev := chain.StateOf(observations[0])
	for _, o := range observations[1:] {
		cur := chain.StateOf(o)
		counts[prev][cur]++
		prev = cur
	}
	chain.Transition = make([][]float64, states)
	for i, row := range counts {
		var sum float64
		for _, c := range row {
			sum += c
		}
		norm := make([]float64, states)
		for j, c := range row {
			norm[j] = c / sum
		}
		chain.Transition[i] = norm
	}
	return chain, nil
}

// Policy is a solved MDP policy: the optimal level for each discretized
// (buffer bin, throughput state, previous level) triple.
type Policy struct {
	Chain      *ThroughputChain
	BufferBins int
	BufferMax  float64
	Levels     int
	actions    []uint8 // bufferBin-major, then chain state, then prev level
}

// index computes the flat offset of a policy cell.
func (p *Policy) index(bBin, cState, prev int) int {
	return (bBin*len(p.Chain.Rates)+cState)*p.Levels + prev
}

// Action returns the policy's level for a player state.
func (p *Policy) Action(buffer float64, throughputKbps float64, prev int) int {
	bBin := int(buffer / p.BufferMax * float64(p.BufferBins))
	if bBin < 0 {
		bBin = 0
	}
	if bBin >= p.BufferBins {
		bBin = p.BufferBins - 1
	}
	if prev < 0 {
		prev = 0
	}
	if prev >= p.Levels {
		prev = p.Levels - 1
	}
	return int(p.actions[p.index(bBin, p.Chain.StateOf(throughputKbps), prev)])
}

// Solve computes the optimal stationary policy by value iteration with
// discount gamma, maximizing the expected per-chunk QoE gain of Eq. (5)
// under the chain's dynamics.
func Solve(m *model.Manifest, w model.Weights, q model.QualityFunc, chain *ThroughputChain, bufferMax float64, bufferBins int, gamma float64, iterations int) (*Policy, error) {
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	if bufferMax <= 0 || bufferBins < 2 {
		return nil, fmt.Errorf("mdp: need positive BufferMax and ≥2 buffer bins, got %v/%d", bufferMax, bufferBins)
	}
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("mdp: discount must be in (0,1), got %v", gamma)
	}
	if iterations <= 0 {
		iterations = 200
	}
	if q == nil {
		q = model.QIdentity
	}
	nC := len(chain.Rates)
	levels := m.Levels()
	p := &Policy{
		Chain:      chain,
		BufferBins: bufferBins,
		BufferMax:  bufferMax,
		Levels:     levels,
		actions:    make([]uint8, bufferBins*nC*levels),
	}
	bufOf := func(bin int) float64 {
		return (float64(bin) + 0.5) * bufferMax / float64(bufferBins)
	}
	binOf := func(buf float64) int {
		bin := int(buf / bufferMax * float64(bufferBins))
		if bin < 0 {
			return 0
		}
		if bin >= bufferBins {
			return bufferBins - 1
		}
		return bin
	}
	// Chunk sizes use the CBR nominal (multiplier 1), as the chain has no
	// notion of which chunk is next.
	size := func(lvl int) float64 { return m.ChunkDuration * m.Ladder[lvl] }

	value := make([]float64, bufferBins*nC*levels)
	next := make([]float64, len(value))
	for iter := 0; iter < iterations; iter++ {
		var delta float64
		for bBin := 0; bBin < bufferBins; bBin++ {
			buf := bufOf(bBin)
			for cs := 0; cs < nC; cs++ {
				rate := chain.Rates[cs]
				for prev := 0; prev < levels; prev++ {
					bestV := math.Inf(-1)
					bestA := 0
					for a := 0; a < levels; a++ {
						dl := size(a) / rate
						rebuffer := math.Max(dl-buf, 0)
						afterDrain := math.Max(buf-dl, 0) + m.ChunkDuration
						wait := math.Max(afterDrain-bufferMax, 0)
						nb := afterDrain - wait
						gain := q(m.Ladder[a]) - w.Mu*rebuffer -
							w.Lambda*math.Abs(q(m.Ladder[a])-q(m.Ladder[prev]))
						var future float64
						nBin := binOf(nb)
						for ncs, prob := range chain.Transition[cs] {
							future += prob * value[p.index(nBin, ncs, a)]
						}
						if v := gain + gamma*future; v > bestV {
							bestV, bestA = v, a
						}
					}
					idx := p.index(bBin, cs, prev)
					next[idx] = bestV
					p.actions[idx] = uint8(bestA)
					if d := math.Abs(bestV - value[idx]); d > delta {
						delta = d
					}
				}
			}
		}
		value, next = next, value
		if delta < 1e-6 {
			break
		}
	}
	return p, nil
}
