package mdp

import (
	"math"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// twoState is a simple good/bad channel.
func twoState() *ThroughputChain {
	return &ThroughputChain{
		Rates: []float64{400, 3000},
		Transition: [][]float64{
			{0.8, 0.2},
			{0.2, 0.8},
		},
	}
}

func TestChainValidate(t *testing.T) {
	if err := twoState().Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := []*ThroughputChain{
		{},
		{Rates: []float64{100}, Transition: [][]float64{{1}, {1}}},
		{Rates: []float64{100, 50}, Transition: [][]float64{{1, 0}, {0, 1}}},
		{Rates: []float64{-1, 50}, Transition: [][]float64{{1, 0}, {0, 1}}},
		{Rates: []float64{100, 200}, Transition: [][]float64{{0.5, 0.4}, {0, 1}}},
		{Rates: []float64{100, 200}, Transition: [][]float64{{1.5, -0.5}, {0, 1}}},
		{Rates: []float64{100, 200}, Transition: [][]float64{{1, 0, 0}, {0, 1, 0}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad chain %d accepted", i)
		}
	}
}

func TestStateOf(t *testing.T) {
	c := twoState()
	cases := []struct {
		kbps float64
		want int
	}{{100, 0}, {400, 0}, {1600, 0}, {1800, 1}, {3000, 1}, {9000, 1}}
	for _, cse := range cases {
		if got := c.StateOf(cse.kbps); got != cse.want {
			t.Errorf("StateOf(%v) = %d, want %d", cse.kbps, got, cse.want)
		}
	}
}

func TestLearnChain(t *testing.T) {
	// Alternating high/low series should learn strong cross transitions.
	var obs []float64
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			obs = append(obs, 500)
		} else {
			obs = append(obs, 2500)
		}
	}
	chain, err := LearnChain(obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo := chain.StateOf(500)
	hi := chain.StateOf(2500)
	if lo == hi {
		t.Fatalf("states collapsed: %d == %d", lo, hi)
	}
	if chain.Transition[lo][hi] < 0.9 || chain.Transition[hi][lo] < 0.9 {
		t.Errorf("alternation not learned: %v", chain.Transition)
	}

	// Sticky series → diagonal-dominant transitions.
	obs = obs[:0]
	for i := 0; i < 100; i++ {
		obs = append(obs, 500)
	}
	for i := 0; i < 100; i++ {
		obs = append(obs, 2500)
	}
	chain, err = LearnChain(obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi = chain.StateOf(500), chain.StateOf(2500)
	if chain.Transition[lo][lo] < 0.9 || chain.Transition[hi][hi] < 0.9 {
		t.Errorf("stickiness not learned: %v", chain.Transition)
	}
}

func TestLearnChainErrors(t *testing.T) {
	if _, err := LearnChain([]float64{1, 2, 3}, 1); err == nil {
		t.Error("one state should fail")
	}
	if _, err := LearnChain([]float64{1}, 2); err == nil {
		t.Error("one observation should fail")
	}
	if _, err := LearnChain([]float64{1, -2}, 2); err == nil {
		t.Error("negative observation should fail")
	}
	// Constant series must not degenerate.
	chain, err := LearnChain([]float64{1000, 1000, 1000}, 2)
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	if err := chain.Validate(); err != nil {
		t.Fatalf("constant-series chain invalid: %v", err)
	}
}

func TestSolveValidation(t *testing.T) {
	m := model.EnvivioManifest()
	if _, err := Solve(m, model.Balanced, model.QIdentity, &ThroughputChain{}, 30, 60, 0.9, 100); err == nil {
		t.Error("invalid chain should fail")
	}
	if _, err := Solve(m, model.Balanced, model.QIdentity, twoState(), 0, 60, 0.9, 100); err == nil {
		t.Error("zero buffer should fail")
	}
	if _, err := Solve(m, model.Balanced, model.QIdentity, twoState(), 30, 1, 0.9, 100); err == nil {
		t.Error("one buffer bin should fail")
	}
	if _, err := Solve(m, model.Balanced, model.QIdentity, twoState(), 30, 60, 1.0, 100); err == nil {
		t.Error("discount 1 should fail")
	}
}

// TestPolicyShape: in the good channel state with a full buffer the policy
// streams high; in the bad state with an empty buffer it streams low.
func TestPolicyShape(t *testing.T) {
	m := model.EnvivioManifest()
	p, err := Solve(m, model.Balanced, model.QIdentity, twoState(), 30, 60, 0.9, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Action(29, 3000, 4); got < 3 {
		t.Errorf("rich state action %d, want ≥3", got)
	}
	if got := p.Action(0.5, 400, 0); got != 0 {
		t.Errorf("poor state action %d, want 0", got)
	}
	// Out-of-range inputs clamp rather than panic.
	_ = p.Action(-5, 1e9, -1)
	_ = p.Action(99, 0.0001, 99)
}

// TestMDPOnMarkovTrace: on a genuinely Markov channel the MDP controller
// should be competitive with (or beat) the rate-based rule — the condition
// under which the paper says MDP control is justified.
func TestMDPOnMarkovTrace(t *testing.T) {
	m := model.EnvivioManifest()
	cfgTrace := trace.DefaultMarkovConfig()
	qoe := func(factory abr.Factory) float64 {
		var total float64
		for seed := int64(0); seed < 5; seed++ {
			tr, err := trace.GenMarkov(cfgTrace, seed, m.Duration()+120)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(m, tr, factory(m), predictor.NewHarmonicMean(5), sim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			total += res.QoE(model.Balanced, model.QIdentity)
		}
		return total / 5
	}
	prior := &ThroughputChain{
		Rates:      cfgTrace.Means,
		Transition: cfgTrace.Transition,
	}
	mdpQoE := qoe(NewController(model.Balanced, model.QIdentity, 30, prior, 4, 0))
	rbQoE := qoe(abr.NewRB(1))
	if mdpQoE < rbQoE*0.9-3000 {
		t.Errorf("MDP (%v) should be competitive with RB (%v) on a Markov channel", mdpQoE, rbQoE)
	}
}

func TestControllerFallback(t *testing.T) {
	m := model.EnvivioManifest()
	ctrl := NewController(model.Balanced, model.QIdentity, 30, nil, 4, 0)(m)
	if ctrl.Name() != "MDP" {
		t.Errorf("Name = %q", ctrl.Name())
	}
	// No model and no rate → lowest.
	if got := ctrl.Decide(abr.State{Chunk: 0, Prev: -1}).Level; got != 0 {
		t.Errorf("cold decide = %d, want 0", got)
	}
	// No model with a rate → rate-based.
	if got := ctrl.Decide(abr.State{Chunk: 1, Prev: 0, Forecast: []float64{2500}}).Level; got != 3 {
		t.Errorf("fallback decide = %d, want 3", got)
	}
}

func TestControllerOnlineRefit(t *testing.T) {
	m := model.EnvivioManifest()
	ctrl := NewController(model.Balanced, model.QIdentity, 30, nil, 3, 10)(m).(*Controller)
	// Feed enough observations to trigger a refit.
	for k := 0; k < 30; k++ {
		rate := 800.0
		if k%2 == 0 {
			rate = 2400
		}
		ctrl.Decide(abr.State{Chunk: k, Buffer: 15, Prev: 1, Forecast: []float64{rate}})
	}
	if ctrl.policy == nil {
		t.Fatal("online refit never produced a policy")
	}
	if math.IsNaN(float64(ctrl.policy.BufferBins)) || ctrl.policy.BufferBins <= 0 {
		t.Fatal("policy malformed")
	}
}
