package fastmpc

import (
	"sync"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
)

// Controller is the online half of FastMPC: a pure table lookup keyed by
// the binned (buffer, previous level, predicted throughput) state. With
// Robust set it queries the table with the forecast's lower bound, giving
// the RobustMPC behaviour at FastMPC cost (Theorem 1 makes the two
// controllers differ only in the throughput input).
//
// The table covers the steady-state problem; pair FastMPC sessions with
// sim.StartupFirstChunk, the policy the dash.js prototype uses.
type Controller struct {
	Table  *CompressedTable
	Robust bool
	Label  string
}

// NewController returns a Factory that resolves the decision table through
// the shared content-addressed registry and shares it across sessions
// (lookups are read-only and safe for concurrent use): factories and
// populations with equal configuration share one build per process, and a
// configured table-cache directory (SetTableCacheDir) lets repeated runs
// skip the enumeration entirely. Table construction panics on
// configuration errors, as factories are assembled from validated
// experiment configs.
func NewController(w model.Weights, q model.QualityFunc, bufferMax float64, horizon int, spec *BinSpec, robust bool, label string) abr.Factory {
	var (
		mu sync.Mutex
		// Per-factory manifest memo: skips re-hashing the manifest for
		// every session the factory spawns.
		cache = map[*model.Manifest]*CompressedTable{}
	)
	return func(m *model.Manifest) abr.Controller {
		mu.Lock()
		defer mu.Unlock()
		table, ok := cache[m]
		if !ok {
			opt, err := core.NewOptimizer(m, w, q, bufferMax, horizon)
			if err != nil {
				panic(err)
			}
			sp := DefaultBins(bufferMax, m.Ladder.Max())
			if spec != nil {
				sp = *spec
			}
			table, err = Shared.Table(opt, sp)
			if err != nil {
				panic(err)
			}
			cache[m] = table
		}
		return &Controller{Table: table, Robust: robust, Label: label}
	}
}

// Name implements abr.Controller.
func (c *Controller) Name() string {
	if c.Label != "" {
		return c.Label
	}
	if c.Robust {
		return "RobustFastMPC"
	}
	return "FastMPC"
}

// Decide implements abr.Controller.
func (c *Controller) Decide(s abr.State) abr.Decision {
	rate := s.PredictedRate()
	if c.Robust && len(s.Lower) > 0 && s.Lower[0] > 0 {
		rate = s.Lower[0]
	}
	return abr.Decision{Level: c.Table.Lookup(s.Buffer, s.Prev, rate)}
}
