package fastmpc

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"

	"mpcdash/internal/fuzzcorpus"
)

// The binary table formats ("MPCT" flat tables, "MPCR" run-length tables,
// "MPCF" cache files) are the service's only parsers of untrusted bytes: a
// cache directory is writable by anything on the machine, and fleet nodes
// exchange serialized tables. The fuzz targets below hold the decoders to
// the contract the rest of the package relies on: every input either fails
// with an error or yields a table whose every Lookup is in range — no
// panics, no out-of-bounds levels, no decode-accepting-garbage.

// fuzzSpec is the small deterministic geometry every fuzz seed is built
// around: 4×3×3 = 36 entries keeps seed blobs readable in the corpus files.
var fuzzSpec = BinSpec{BufferBins: 4, BufferMax: 12, RateBins: 3, RateMin: 10, RateMax: 100}

const fuzzLevels = 3

// fuzzTable builds a small valid table by hand — no optimizer enumeration,
// so the fuzz setup stays microseconds.
func fuzzTable() *Table {
	t := &Table{
		Spec:    fuzzSpec,
		Levels:  fuzzLevels,
		Entries: make([]uint8, fuzzSpec.BufferBins*fuzzLevels*fuzzSpec.RateBins),
	}
	for i := range t.Entries {
		t.Entries[i] = uint8(i % fuzzLevels)
	}
	return t
}

// legacyTableBlob serializes a table in the pre-versioning v1 format
// (24-byte header, float32 scalars) that Deserialize must still read.
func legacyTableBlob(t *Table) []byte {
	buf := make([]byte, legacyTableHeaderLen, legacyTableHeaderLen+len(t.Entries))
	binary.LittleEndian.PutUint32(buf[0:], uint32(t.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[4:], uint32(t.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.Levels))
	binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(float32(t.Spec.BufferMax)))
	binary.LittleEndian.PutUint32(buf[16:], math.Float32bits(float32(t.Spec.RateMin)))
	binary.LittleEndian.PutUint32(buf[20:], math.Float32bits(float32(t.Spec.RateMax)))
	return append(buf, t.Entries...)
}

// legacyRLEBlob serializes a compressed table in the v1 format (28-byte
// header, float32 scalars).
func legacyRLEBlob(c *CompressedTable) []byte {
	buf := make([]byte, legacyRLEHeaderLen, legacyRLEHeaderLen+5*len(c.Starts))
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[4:], uint32(c.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[8:], uint32(c.Levels))
	binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(float32(c.Spec.BufferMax)))
	binary.LittleEndian.PutUint32(buf[16:], math.Float32bits(float32(c.Spec.RateMin)))
	binary.LittleEndian.PutUint32(buf[20:], math.Float32bits(float32(c.Spec.RateMax)))
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(c.Starts)))
	var entry [5]byte
	for r := range c.Starts {
		binary.LittleEndian.PutUint32(entry[0:], c.Starts[r])
		entry[4] = c.Values[r]
		buf = append(buf, entry[:]...)
	}
	return buf
}

// probeLookups exercises Lookup across the hostile corners of the state
// space — NaN, ±Inf, negatives, out-of-range prev — and fails the fuzz run
// if any decision escapes [0, levels).
func probeLookups(t *testing.T, levels int, lookup func(buffer float64, prev int, rate float64) int) {
	t.Helper()
	buffers := []float64{-1, 0, 5, 1e308, math.Inf(1), math.Inf(-1), math.NaN()}
	prevs := []int{-5, -1, 0, levels - 1, levels, levels + 7}
	rates := []float64{-10, 0, 55, 1e308, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, b := range buffers {
		for _, p := range prevs {
			for _, r := range rates {
				if lvl := lookup(b, p, r); lvl < 0 || lvl >= levels {
					t.Fatalf("Lookup(%v, %d, %v) = %d, outside [0, %d)", b, p, r, lvl, levels)
				}
			}
		}
	}
}

// deserializeTableSeeds is the committed seed corpus for
// FuzzDeserializeTable: a valid v2 blob, its legacy v1 form, and the
// truncation/corruption/versioning edges the decoder must reject.
func deserializeTableSeeds() [][]byte {
	full := fuzzTable()
	valid := full.Serialize()
	corrupt := append([]byte(nil), valid...)
	corrupt[tableHeaderLen] = 0xFF // entry beyond Levels
	wrongVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(wrongVersion[4:], 99)
	return [][]byte{
		valid,
		legacyTableBlob(full),
		valid[:len(valid)-1], // truncated payload
		valid[:tableHeaderLen],
		{},
		[]byte("MPCT"),
		corrupt,
		wrongVersion,
	}
}

// FuzzDeserializeTable holds Deserialize ("MPCT" v2 and legacy v1 flat
// tables) to its contract: error, or a structurally valid table that
// re-serializes bit-exactly and never looks up an out-of-range level.
func FuzzDeserializeTable(f *testing.F) {
	for _, s := range deserializeTableSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Deserialize(data)
		if err != nil {
			return
		}
		want, err := entryCount(tab.Spec.BufferBins, tab.Levels, tab.Spec.RateBins)
		if err != nil || len(tab.Entries) != want {
			t.Fatalf("accepted table with inconsistent geometry: %d entries, entryCount says (%d, %v)", len(tab.Entries), want, err)
		}
		if err := validEntries(tab.Entries, tab.Levels); err != nil {
			t.Fatalf("accepted table with out-of-range entries: %v", err)
		}
		// Round trip: re-serializing always emits v2; decoding that again
		// must reproduce the same bytes (scalar bits preserved exactly).
		re := tab.Serialize()
		tab2, err := Deserialize(re)
		if err != nil {
			t.Fatalf("re-deserialize failed: %v", err)
		}
		if !bytes.Equal(re, tab2.Serialize()) {
			t.Fatal("serialize/deserialize round trip not bit-exact")
		}
		probeLookups(t, tab.Levels, tab.Lookup)
	})
}

// deserializeCompressedSeeds is the committed seed corpus for
// FuzzDeserializeCompressed.
func deserializeCompressedSeeds() [][]byte {
	c := Compress(fuzzTable())
	valid := c.Serialize()
	nonzeroStart := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(nonzeroStart[rleHeaderLen:], 7) // first run must start at 0
	return [][]byte{
		valid,
		legacyRLEBlob(c),
		valid[:len(valid)-3], // torn run entry
		valid[:rleHeaderLen],
		{},
		nonzeroStart,
	}
}

// FuzzDeserializeCompressed holds DeserializeCompressed ("MPCR" v2 and
// legacy v1 run-length tables) to the same contract, and cross-checks the
// compressed Lookup against the decompressed flat table when the logical
// length is small enough to expand.
func FuzzDeserializeCompressed(f *testing.F) {
	for _, s := range deserializeCompressedSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := DeserializeCompressed(data)
		if err != nil {
			return
		}
		if ct.Runs() < 1 || ct.Starts[0] != 0 {
			t.Fatalf("accepted encoding with bad run structure: %d runs, first start %v", ct.Runs(), ct.Starts)
		}
		for r := 1; r < len(ct.Starts); r++ {
			if ct.Starts[r] <= ct.Starts[r-1] {
				t.Fatalf("accepted non-ascending run starts at %d: %v", r, ct.Starts)
			}
		}
		if int(ct.Starts[len(ct.Starts)-1]) >= ct.Length {
			t.Fatalf("accepted run starting at %d beyond length %d", ct.Starts[len(ct.Starts)-1], ct.Length)
		}
		re := ct.Serialize()
		ct2, err := DeserializeCompressed(re)
		if err != nil {
			t.Fatalf("re-deserialize failed: %v", err)
		}
		if !bytes.Equal(re, ct2.Serialize()) {
			t.Fatal("serialize/deserialize round trip not bit-exact")
		}
		probeLookups(t, ct.Levels, ct.Lookup)
		// Length is header-implied and can be huge with a tiny payload;
		// only expand (Length bytes) when it is fuzz-affordable.
		if ct.Length <= 1<<16 {
			flat := ct.Decompress()
			for _, buffer := range []float64{0, 5, math.NaN()} {
				for _, rate := range []float64{0, 55, math.Inf(1)} {
					if a, b := ct.Lookup(buffer, 1, rate), flat.Lookup(buffer, 1, rate); a != b {
						t.Fatalf("compressed Lookup(%v, 1, %v) = %d, decompressed = %d", buffer, rate, a, b)
					}
				}
			}
		}
	})
}

// fuzzCacheKey is the content key every FuzzCacheFile seed claims; the
// decoder must reject any blob claiming a different identity.
const fuzzCacheKey uint64 = 0xDEADBEEFCAFEF00D

// cacheBlob wraps a serialized table in the 16-byte "MPCF" keyed header,
// mirroring storeDisk's layout.
func cacheBlob(key uint64, table []byte) []byte {
	buf := make([]byte, cacheFileHeader, cacheFileHeader+len(table))
	binary.LittleEndian.PutUint32(buf[0:], cacheFileMagic)
	binary.LittleEndian.PutUint32(buf[4:], cacheFileVersion)
	binary.LittleEndian.PutUint64(buf[8:], key)
	return append(buf, table...)
}

// cacheFileSeeds is the committed seed corpus for FuzzCacheFile.
func cacheFileSeeds() [][]byte {
	blob := fuzzTable().Serialize()
	badVersion := cacheBlob(fuzzCacheKey, blob)
	binary.LittleEndian.PutUint32(badVersion[4:], 2)
	return [][]byte{
		cacheBlob(fuzzCacheKey, blob),
		cacheBlob(fuzzCacheKey+1, blob), // key mismatch
		cacheBlob(fuzzCacheKey, blob[:len(blob)-1]),
		cacheBlob(fuzzCacheKey, nil),
		{},
		badVersion,
	}
}

// FuzzCacheFile holds decodeCacheFile (the pure half of the disk-cache
// loader) to its contract: anything that decodes carries exactly the
// requested identity — key, ladder size, and bit-exact BinSpec.
func FuzzCacheFile(f *testing.F) {
	for _, s := range cacheFileSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		full, err := decodeCacheFile(data, fuzzCacheKey, fuzzLevels, fuzzSpec)
		if err != nil {
			return
		}
		if full.Levels != fuzzLevels || !specIdentical(full.Spec, fuzzSpec) {
			t.Fatalf("accepted cache file with foreign geometry: levels %d, spec %+v", full.Levels, full.Spec)
		}
		if len(data) < cacheFileHeader || binary.LittleEndian.Uint64(data[8:]) != fuzzCacheKey {
			t.Fatal("accepted cache file not claiming the requested key")
		}
		probeLookups(t, full.Levels, full.Lookup)
		if Compress(full).Runs() < 1 {
			t.Fatal("decoded table compresses to zero runs")
		}
	})
}

// TestFuzzCorpusCommitted keeps the committed seed corpora under
// testdata/fuzz in sync with the f.Add seeds above: the files are read as
// seeds by every `go test` run, so drift would silently shrink coverage.
func TestFuzzCorpusCommitted(t *testing.T) {
	for _, target := range []struct {
		name  string
		seeds [][]byte
	}{
		{"FuzzDeserializeTable", deserializeTableSeeds()},
		{"FuzzDeserializeCompressed", deserializeCompressedSeeds()},
		{"FuzzCacheFile", cacheFileSeeds()},
	} {
		problems, err := fuzzcorpus.Sync(filepath.Join("testdata", "fuzz", target.name), target.seeds)
		if err != nil {
			t.Fatalf("%s: %v", target.name, err)
		}
		for _, p := range problems {
			t.Errorf("%s: %s", target.name, p)
		}
	}
}
