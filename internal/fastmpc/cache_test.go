package fastmpc

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mpcdash/internal/core"
	"mpcdash/internal/model"
)

func testOptimizer(t *testing.T) *core.Optimizer {
	t.Helper()
	opt, err := core.NewOptimizer(model.EnvivioManifest(), model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

// testSpec uses scalars that are not exactly representable in float32, so
// any remaining narrowing in a serialization path shifts bin edges and
// fails the exactness tests.
var testSpec = BinSpec{BufferBins: 12, BufferMax: 30.1, RateBins: 12, RateMin: 10.3, RateMax: 5827.7}

// --- clampBin determinism (NaN / ±Inf) -------------------------------

func TestBinNaNAndInfDeterministic(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	s := testSpec
	if got := s.BufferBin(nan); got != 0 {
		t.Errorf("BufferBin(NaN) = %d, want 0", got)
	}
	if got := s.RateBin(nan); got != 0 {
		t.Errorf("RateBin(NaN) = %d, want 0", got)
	}
	if got := s.BufferBin(inf); got != s.BufferBins-1 {
		t.Errorf("BufferBin(+Inf) = %d, want %d", got, s.BufferBins-1)
	}
	if got := s.RateBin(inf); got != s.RateBins-1 {
		t.Errorf("RateBin(+Inf) = %d, want %d", got, s.RateBins-1)
	}
	if got := s.BufferBin(-inf); got != 0 {
		t.Errorf("BufferBin(-Inf) = %d, want 0", got)
	}
	if got := s.RateBin(-inf); got != 0 {
		t.Errorf("RateBin(-Inf) = %d, want 0", got)
	}

	opt, table := smallTable(t)
	_ = opt
	// A poisoned state (0/0 throughput sample, NaN buffer) must resolve to
	// the same decision as the deterministic clamp target, bin 0.
	if got, want := table.Lookup(nan, 2, nan), table.Lookup(0, 2, 0); got != want {
		t.Errorf("Lookup(NaN,2,NaN) = %d, want the bin-0 decision %d", got, want)
	}
	if got, want := table.Lookup(inf, 2, inf), table.Lookup(1e18, 2, 1e18); got != want {
		t.Errorf("Lookup(+Inf) = %d, want the top-bin decision %d", got, want)
	}
	c := Compress(table)
	if got, want := c.Lookup(nan, -1, nan), table.Lookup(nan, -1, nan); got != want {
		t.Errorf("compressed Lookup(NaN) = %d, flat = %d", got, want)
	}
}

// --- versioned serialization -----------------------------------------

// TestSerializeRoundTripBitExact: the v2 header stores the BinSpec scalars
// as float64, so a round trip reproduces the builder's binning bit for bit
// (the v1 float32 header shifted bin edges for non-representable scalars).
func TestSerializeRoundTripBitExact(t *testing.T) {
	opt := testOptimizer(t)
	table, err := Build(opt, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Deserialize(table.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !specIdentical(back.Spec, table.Spec) {
		t.Fatalf("round-tripped spec %+v is not bit-identical to %+v", back.Spec, table.Spec)
	}
	if !bytes.Equal(back.Serialize(), table.Serialize()) {
		t.Fatal("double round trip is not byte-identical")
	}

	c := Compress(table)
	cback, err := DeserializeCompressed(c.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !specIdentical(cback.Spec, c.Spec) {
		t.Fatalf("round-tripped compressed spec %+v is not bit-identical to %+v", cback.Spec, c.Spec)
	}
}

// legacySerialize writes the pre-versioning v1 blob (float32 scalars) the
// old Serialize produced, to pin backward compatibility.
func legacySerialize(t *Table) []byte {
	buf := make([]byte, 24, 24+len(t.Entries))
	binary.LittleEndian.PutUint32(buf[0:], uint32(t.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[4:], uint32(t.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.Levels))
	binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(float32(t.Spec.BufferMax)))
	binary.LittleEndian.PutUint32(buf[16:], math.Float32bits(float32(t.Spec.RateMin)))
	binary.LittleEndian.PutUint32(buf[20:], math.Float32bits(float32(t.Spec.RateMax)))
	return append(buf, t.Entries...)
}

func TestDeserializeReadsLegacyFormat(t *testing.T) {
	_, table := smallTable(t)
	back, err := Deserialize(legacySerialize(table))
	if err != nil {
		t.Fatalf("legacy blob rejected: %v", err)
	}
	if back.Spec.BufferBins != table.Spec.BufferBins || back.Levels != table.Levels ||
		back.Spec.RateBins != table.Spec.RateBins {
		t.Fatalf("legacy header mismatch: %+v vs %+v", back.Spec, table.Spec)
	}
	if !bytes.Equal(back.Entries, table.Entries) {
		t.Fatal("legacy entries differ")
	}
}

// TestDeserializeOverflowSafe: a crafted header whose dimension product
// overflows int must be rejected, not wrapped into a plausible small
// entry count that matches an attacker-chosen payload length.
func TestDeserializeOverflowSafe(t *testing.T) {
	// Legacy layout, dims 2^30 × 16 × 2^30: the naive int product wraps.
	crafted := make([]byte, 24)
	binary.LittleEndian.PutUint32(crafted[0:], 1<<30)
	binary.LittleEndian.PutUint32(crafted[4:], 1<<30)
	binary.LittleEndian.PutUint32(crafted[8:], 16)
	if _, err := Deserialize(crafted); err == nil {
		t.Error("overflowing legacy header accepted")
	}
	// v2 layout with the same dimensions.
	crafted = make([]byte, tableHeaderLen)
	binary.LittleEndian.PutUint32(crafted[0:], tableMagic)
	binary.LittleEndian.PutUint32(crafted[4:], tableVersion)
	binary.LittleEndian.PutUint32(crafted[8:], 1<<30)
	binary.LittleEndian.PutUint32(crafted[12:], 1<<30)
	binary.LittleEndian.PutUint32(crafted[16:], 16)
	if _, err := Deserialize(crafted); err == nil {
		t.Error("overflowing v2 header accepted")
	}
	// Unknown future version must be rejected, not misparsed.
	binary.LittleEndian.PutUint32(crafted[4:], tableVersion+1)
	if _, err := Deserialize(crafted); err == nil {
		t.Error("unknown version accepted")
	}
	// Compressed header with overflowing dimensions.
	ccrafted := make([]byte, 28)
	binary.LittleEndian.PutUint32(ccrafted[0:], 1<<30)
	binary.LittleEndian.PutUint32(ccrafted[4:], 1<<30)
	binary.LittleEndian.PutUint32(ccrafted[8:], 16)
	binary.LittleEndian.PutUint32(ccrafted[24:], 1)
	if _, err := DeserializeCompressed(ccrafted); err == nil {
		t.Error("overflowing compressed header accepted")
	}
}

// --- content-addressed key -------------------------------------------

func TestTableKeySensitivity(t *testing.T) {
	opt := testOptimizer(t)
	base := TableKey(opt, "identity", testSpec)
	if TableKey(opt, "identity", testSpec) != base {
		t.Error("key is not deterministic")
	}
	if TableKey(opt, "other", testSpec) == base {
		t.Error("key ignores the quality id")
	}
	sp := testSpec
	sp.RateBins++
	if TableKey(opt, "identity", sp) == base {
		t.Error("key ignores the bin spec")
	}
	opt2 := testOptimizer(t)
	opt2.Weights.Mu++
	if TableKey(opt2, "identity", testSpec) == base {
		t.Error("key ignores the QoE weights")
	}
	opt3 := testOptimizer(t)
	opt3.Horizon = 4
	if TableKey(opt3, "identity", testSpec) == base {
		t.Error("key ignores the horizon")
	}
	m, err := model.NewVBRManifest(model.EnvivioLadder(), 65, 4, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt4, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if TableKey(opt4, "identity", testSpec) == base {
		t.Error("key ignores the manifest's chunk sizes")
	}
}

// --- registry ---------------------------------------------------------

// TestRegistrySharesBuilds: two optimizers with equal content (distinct
// pointers) resolve to the same table instance, building once.
func TestRegistrySharesBuilds(t *testing.T) {
	reg := NewRegistry()
	a, err := reg.Table(testOptimizer(t), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Table(testOptimizer(t), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal-content optimizers did not share one table")
	}
	st := reg.Stats()
	if st.Builds != 1 || st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want 1 build and 1 memory hit", st)
	}
}

// TestRegistryUnknownQualityNotShared: parameterized quality closures are
// indistinguishable by function value, so they must never share tables.
func TestRegistryUnknownQualityNotShared(t *testing.T) {
	reg := NewRegistry()
	mk := func(q model.QualityFunc) *core.Optimizer {
		opt, err := core.NewOptimizer(model.EnvivioManifest(), model.Balanced, q, 30, 5)
		if err != nil {
			t.Fatal(err)
		}
		return opt
	}
	a, err := reg.Table(mk(model.QLog(100)), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Table(mk(model.QLog(100)), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("closure quality functions must not share a table instance")
	}
}

// TestRegistryDiskRoundTrip is the cold/warm contract: a second registry
// pointed at the same directory loads the persisted table instead of
// building, and the loaded table is byte-identical to the fresh one.
func TestRegistryDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cold := NewRegistry()
	cold.SetDir(dir)
	a, err := cold.Table(testOptimizer(t), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want 1 build", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.fastmpc"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir has %d files (%v), want 1", len(files), err)
	}

	warm := NewRegistry()
	warm.SetDir(dir)
	b, err := warm.Table(testOptimizer(t), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 builds and 1 disk hit", st)
	}
	if !bytes.Equal(a.Serialize(), b.Serialize()) {
		t.Fatal("disk-loaded table is not byte-identical to the fresh build")
	}

	// A corrupted cache file is a miss that falls back to a rebuild.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	again := NewRegistry()
	again.SetDir(dir)
	c, err := again.Table(testOptimizer(t), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st := again.Stats(); st.Builds != 1 {
		t.Fatalf("corrupt-cache stats = %+v, want a rebuild", st)
	}
	if !bytes.Equal(a.Serialize(), c.Serialize()) {
		t.Fatal("rebuild after corruption differs from the original build")
	}
}

// TestCachedTableMatchesOptimizerEverywhere is the satellite property
// test: after a full serialize → disk → deserialize round trip, Lookup at
// every bin center must equal a direct exact-MPC solve, and the cached
// table must be byte-identical to the freshly built one.
func TestCachedTableMatchesOptimizerEverywhere(t *testing.T) {
	dir := t.TempDir()
	opt := testOptimizer(t)
	spec := BinSpec{BufferBins: 10, BufferMax: 30.1, RateBins: 10, RateMin: 10.3, RateMax: 5827.7}

	cold := NewRegistry()
	cold.SetDir(dir)
	fresh, err := cold.Table(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRegistry()
	warm.SetDir(dir)
	cached, err := warm.Table(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().DiskHits != 1 {
		t.Fatal("second registry did not hit the disk cache")
	}
	if !bytes.Equal(fresh.Serialize(), cached.Serialize()) {
		t.Fatal("cached table is not byte-identical to the fresh build")
	}

	var scratch core.Scratch
	forecast := make([]float64, 1)
	for bBin := 0; bBin < spec.BufferBins; bBin++ {
		for prev := 0; prev < opt.Manifest.Levels(); prev++ {
			for rBin := 0; rBin < spec.RateBins; rBin++ {
				buffer := spec.BufferValue(bBin)
				forecast[0] = spec.RateValue(rBin)
				want, _, _ := opt.PlanScratch(&scratch, 0, buffer, prev, forecast, false)
				if got := cached.Lookup(buffer, prev, forecast[0]); got != want {
					t.Fatalf("cached Lookup(%.2f,%d,%.2f) = %d, optimizer says %d",
						buffer, prev, forecast[0], got, want)
				}
			}
		}
	}
}
