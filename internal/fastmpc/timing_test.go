package fastmpc

import (
	"testing"
	"time"

	"mpcdash/internal/core"
	"mpcdash/internal/model"
)

func TestBuildTiming(t *testing.T) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	table, err := Build(opt, DefaultBins(30, m.Ladder.Max()))
	if err != nil {
		t.Fatal(err)
	}
	c := Compress(table)
	t.Logf("build 100x5x100: %.3fs, %d entries, %d runs, rle %d bytes",
		time.Since(start).Seconds(), len(table.Entries), c.Runs(), c.SizeBytes())
}
