package fastmpc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/model"
)

func smallTable(t *testing.T) (*core.Optimizer, *Table) {
	t.Helper()
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := BinSpec{BufferBins: 20, BufferMax: 30, RateBins: 20, RateMin: 10, RateMax: 6000}
	table, err := Build(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	return opt, table
}

func TestBinSpecValidate(t *testing.T) {
	good := DefaultBins(30, 3000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []BinSpec{
		{BufferBins: 1, BufferMax: 30, RateBins: 10, RateMin: 10, RateMax: 100},
		{BufferBins: 10, BufferMax: 0, RateBins: 10, RateMin: 10, RateMax: 100},
		{BufferBins: 10, BufferMax: 30, RateBins: 1, RateMin: 10, RateMax: 100},
		{BufferBins: 10, BufferMax: 30, RateBins: 10, RateMin: 0, RateMax: 100},
		{BufferBins: 10, BufferMax: 30, RateBins: 10, RateMin: 100, RateMax: 100},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestBinQuantization(t *testing.T) {
	s := BinSpec{BufferBins: 10, BufferMax: 30, RateBins: 10, RateMin: 0.001, RateMax: 1000}
	if s.BufferBin(-5) != 0 || s.BufferBin(0) != 0 {
		t.Error("buffer underflow should clamp to bin 0")
	}
	if s.BufferBin(30) != 9 || s.BufferBin(100) != 9 {
		t.Error("buffer overflow should clamp to last bin")
	}
	if s.BufferBin(15) != 5 {
		t.Errorf("BufferBin(15) = %d, want 5", s.BufferBin(15))
	}
	// Round trip: a bin's representative value quantizes to the same bin.
	for b := 0; b < 10; b++ {
		if got := s.BufferBin(s.BufferValue(b)); got != b {
			t.Errorf("buffer bin %d round-trips to %d", b, got)
		}
		if got := s.RateBin(s.RateValue(b)); got != b {
			t.Errorf("rate bin %d round-trips to %d", b, got)
		}
	}
}

// TestTableMatchesOptimizer: looking up a bin's representative state must
// return exactly what the optimizer decides for it.
func TestTableMatchesOptimizer(t *testing.T) {
	opt, table := smallTable(t)
	for bBin := 0; bBin < table.Spec.BufferBins; bBin += 3 {
		for prev := 0; prev < table.Levels; prev++ {
			for rBin := 0; rBin < table.Spec.RateBins; rBin += 3 {
				buffer := table.Spec.BufferValue(bBin)
				rate := table.Spec.RateValue(rBin)
				want, _, _ := opt.Plan(0, buffer, prev, []float64{rate}, false)
				if got := table.Lookup(buffer, prev, rate); got != want {
					t.Fatalf("Lookup(%.1f,%d,%.0f) = %d, optimizer says %d", buffer, prev, rate, got, want)
				}
			}
		}
	}
}

func TestLookupPrevClamping(t *testing.T) {
	_, table := smallTable(t)
	if got, want := table.Lookup(10, -1, 1000), table.Lookup(10, 0, 1000); got != want {
		t.Errorf("prev=-1 should clamp to 0: %d vs %d", got, want)
	}
	if got, want := table.Lookup(10, 99, 1000), table.Lookup(10, 4, 1000); got != want {
		t.Errorf("prev=99 should clamp to top: %d vs %d", got, want)
	}
}

// TestTableAnchors pins the table's corners: starved states choose the
// bottom of the ladder, rich states the top. (Full monotonicity in rate is
// not a theorem — the optimal timing of up-switches can invert locally —
// but the corners are unambiguous.)
func TestTableAnchors(t *testing.T) {
	_, table := smallTable(t)
	for prev := 0; prev < table.Levels; prev++ {
		// Lowest rate bin, nearly empty buffer: any higher level only adds
		// rebuffer.
		if got := table.Lookup(0.5, prev, table.Spec.RateMin); got != 0 {
			t.Errorf("starved state prev=%d chose %d, want 0", prev, got)
		}
		// Highest rate bin, full buffer: bandwidth covers the top level
		// with room to spare.
		if got := table.Lookup(table.Spec.BufferMax, prev, table.Spec.RateMax); got != table.Levels-1 {
			t.Errorf("rich state prev=%d chose %d, want %d", prev, got, table.Levels-1)
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	_, table := smallTable(t)
	c := Compress(table)
	if c.Runs() >= len(table.Entries) {
		t.Errorf("RLE did not compress: %d runs for %d entries", c.Runs(), len(table.Entries))
	}
	back := c.Decompress()
	if len(back.Entries) != len(table.Entries) {
		t.Fatalf("decompressed length %d, want %d", len(back.Entries), len(table.Entries))
	}
	for i := range table.Entries {
		if back.Entries[i] != table.Entries[i] {
			t.Fatalf("entry %d: %d != %d", i, back.Entries[i], table.Entries[i])
		}
	}
}

// TestCompressedLookupEquivalence: binary-search lookup over runs equals
// flat-table indexing for every state, the Sec 5.2 correctness claim.
func TestCompressedLookupEquivalence(t *testing.T) {
	_, table := smallTable(t)
	c := Compress(table)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		buffer := rng.Float64()*40 - 5
		prev := rng.Intn(7) - 1
		rate := rng.Float64() * 8000
		if got, want := c.Lookup(buffer, prev, rate), table.Lookup(buffer, prev, rate); got != want {
			t.Fatalf("compressed lookup (%v,%d,%v) = %d, flat = %d", buffer, prev, rate, got, want)
		}
	}
}

// TestRLEProperty: encode→decode is the identity on arbitrary byte tables.
func TestRLEProperty(t *testing.T) {
	f := func(entries []uint8) bool {
		if len(entries) == 0 {
			return true
		}
		tbl := &Table{
			Spec:    BinSpec{BufferBins: len(entries), BufferMax: 30, RateBins: 1, RateMin: 1, RateMax: 2},
			Levels:  1,
			Entries: entries,
		}
		c := Compress(tbl)
		back := c.Decompress()
		if len(back.Entries) != len(entries) {
			return false
		}
		for i := range entries {
			if back.Entries[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	_, table := smallTable(t)
	blob := table.Serialize()
	back, err := Deserialize(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec.BufferBins != table.Spec.BufferBins || back.Levels != table.Levels {
		t.Fatalf("header mismatch: %+v vs %+v", back.Spec, table.Spec)
	}
	for i := range table.Entries {
		if back.Entries[i] != table.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}

	c := Compress(table)
	cblob := c.Serialize()
	if len(cblob) != c.SizeBytes() {
		t.Errorf("SizeBytes = %d, serialized = %d", c.SizeBytes(), len(cblob))
	}
	cback, err := DeserializeCompressed(cblob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		buffer := float64(i%40) - 2
		rate := float64(i * 7 % 7000)
		if cback.Lookup(buffer, i%5, rate) != c.Lookup(buffer, i%5, rate) {
			t.Fatalf("lookup %d differs after round trip", i)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte{1, 2, 3}); err == nil {
		t.Error("short blob should fail")
	}
	if _, err := DeserializeCompressed([]byte{1, 2, 3}); err == nil {
		t.Error("short compressed blob should fail")
	}
	_, table := smallTable(t)
	blob := table.Serialize()
	if _, err := Deserialize(blob[:len(blob)-5]); err == nil {
		t.Error("truncated blob should fail")
	}
	cblob := Compress(table).Serialize()
	if _, err := DeserializeCompressed(cblob[:len(cblob)-3]); err == nil {
		t.Error("truncated compressed blob should fail")
	}
}

func TestControllerDecide(t *testing.T) {
	m := model.EnvivioManifest()
	spec := BinSpec{BufferBins: 20, BufferMax: 30, RateBins: 20, RateMin: 10, RateMax: 6000}
	factory := NewController(model.Balanced, model.QIdentity, 30, 5, &spec, false, "")
	ctrl := factory(m)
	if ctrl.Name() != "FastMPC" {
		t.Errorf("Name = %q", ctrl.Name())
	}
	// Plentiful bandwidth and buffer → top level; starvation → bottom.
	high := ctrl.Decide(abr.State{Chunk: 10, Buffer: 29, Prev: 4, Forecast: []float64{5500}})
	if high.Level != 4 {
		t.Errorf("rich state level = %d, want 4", high.Level)
	}
	low := ctrl.Decide(abr.State{Chunk: 10, Buffer: 0.5, Prev: 0, Forecast: []float64{50}})
	if low.Level != 0 {
		t.Errorf("poor state level = %d, want 0", low.Level)
	}

	// The factory caches the table per manifest.
	if factory(m).(*Controller).Table != ctrl.(*Controller).Table {
		t.Error("table not shared across sessions for the same manifest")
	}

	robust := NewController(model.Balanced, model.QIdentity, 30, 5, &spec, true, "")(m)
	if robust.Name() != "RobustFastMPC" {
		t.Errorf("Name = %q", robust.Name())
	}
	s := abr.State{Chunk: 10, Buffer: 8, Prev: 2, Forecast: []float64{5000}, Lower: []float64{100}}
	if r, g := robust.Decide(s).Level, ctrl.Decide(s).Level; r > g {
		t.Errorf("robust level %d above regular %d", r, g)
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(opt, BinSpec{}); err == nil {
		t.Error("empty spec should fail")
	}
}
