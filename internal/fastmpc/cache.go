package fastmpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mpcdash/internal/core"
	"mpcdash/internal/model"
)

// The offline half of FastMPC (Sec 5.1, the "CPLEX farm") is the dominant
// startup cost of table-driven runs: a 100×L×100 enumeration re-solved from
// scratch by every process, and by every population inside one process.
// The cache layer makes the table content-addressed: an in-process registry
// builds each distinct (manifest, weights, quality, player config, bin
// spec) key exactly once and shares the compressed table across all
// sessions and populations, and an optional on-disk cache persists the
// built table so subsequent runs skip the enumeration entirely. Tables are
// pure functions of their key, so a cache hit is byte-identical to a fresh
// build and cold/warm runs produce identical decisions.

// CacheStats counts registry activity since construction (or Reset).
type CacheStats struct {
	Builds     uint64 // tables enumerated from scratch
	MemoryHits uint64 // lookups served by an already-resident table
	DiskHits   uint64 // tables loaded from the on-disk cache
	DiskErrors uint64 // unreadable, corrupt or mismatched cache files (rebuilt)
}

// Registry deduplicates FastMPC table construction by content key. The
// zero value is not usable; create instances with NewRegistry. Shared is
// the process-wide instance the controller factory consults.
type Registry struct {
	mu      sync.Mutex
	dir     string // on-disk cache directory; "" disables persistence
	entries map[uint64]*regEntry

	builds, memHits, diskHits, diskErrors atomic.Uint64
}

// regEntry is one table slot: the once gate makes concurrent requests for
// the same key block on a single build.
type regEntry struct {
	once  sync.Once
	done  atomic.Bool
	table *CompressedTable
	err   error
}

// NewRegistry returns an empty registry with no disk cache directory.
func NewRegistry() *Registry {
	return &Registry{entries: map[uint64]*regEntry{}}
}

// Shared is the process-wide registry: every NewController factory resolves
// its table through it, so populations and repeated factories sharing a
// configuration build the table once per process.
var Shared = NewRegistry()

// SetDir sets the on-disk cache directory; "" disables persistence.
// Already-resident tables are unaffected.
func (r *Registry) SetDir(dir string) {
	r.mu.Lock()
	r.dir = dir
	r.mu.Unlock()
}

// Dir returns the current on-disk cache directory.
func (r *Registry) Dir() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dir
}

// Stats returns a snapshot of the registry's activity counters.
func (r *Registry) Stats() CacheStats {
	return CacheStats{
		Builds:     r.builds.Load(),
		MemoryHits: r.memHits.Load(),
		DiskHits:   r.diskHits.Load(),
		DiskErrors: r.diskErrors.Load(),
	}
}

// Reset drops every resident table and zeroes the counters, keeping the
// disk directory: the next request for a key falls through to the disk
// cache (or a rebuild). Intended for tests and cold/warm benchmarks.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.entries = map[uint64]*regEntry{}
	r.mu.Unlock()
	r.builds.Store(0)
	r.memHits.Store(0)
	r.diskHits.Store(0)
	r.diskErrors.Store(0)
}

// Table returns the compressed decision table for (opt, spec), building it
// at most once per content key: resident tables are returned immediately,
// then the disk cache is consulted, and only a full miss pays the
// enumeration (whose result is persisted when a directory is set).
//
// Quality functions without a stable identity (model.QualityID returns "")
// are never shared — two closures of the same family are indistinguishable
// by function value — so those requests build privately on every call.
func (r *Registry) Table(opt *core.Optimizer, spec BinSpec) (*CompressedTable, error) {
	qualityID := model.QualityID(opt.Quality)
	if qualityID == "" {
		full, err := Build(opt, spec)
		if err != nil {
			return nil, err
		}
		r.builds.Add(1)
		return Compress(full), nil
	}
	key := TableKey(opt, qualityID, spec)
	r.mu.Lock()
	e := r.entries[key]
	if e == nil {
		e = &regEntry{}
		r.entries[key] = e
	}
	dir := r.dir
	r.mu.Unlock()

	if e.done.Load() {
		r.memHits.Add(1)
		return e.table, e.err
	}
	e.once.Do(func() {
		defer e.done.Store(true)
		if dir != "" {
			if full, ok := r.loadDisk(dir, key, opt.Manifest.Levels(), spec); ok {
				e.table = Compress(full)
				r.diskHits.Add(1)
				return
			}
		}
		full, err := Build(opt, spec)
		if err != nil {
			e.err = err
			return
		}
		r.builds.Add(1)
		e.table = Compress(full)
		if dir != "" {
			r.storeDisk(dir, key, full)
		}
	})
	return e.table, e.err
}

// On-disk cache file layout: a 16-byte keyed header (magic, format version,
// the content key) followed by the flat table in the versioned Serialize
// format. The key in the header is the file's claimed identity; a mismatch
// with the file name or the requested key means a corrupt or renamed file
// and falls back to a rebuild.
const (
	cacheFileMagic   = 0x4D504346 // "MPCF"
	cacheFileVersion = 1
	cacheFileHeader  = 16
)

// cachePath names the cache file for a key inside dir.
func cachePath(dir string, key uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.fastmpc", key))
}

// decodeCacheFile validates and decodes one cache-file blob against the
// identity it must carry: the content key, the ladder size, and the exact
// BinSpec of the request. It is a pure function over the bytes — the
// fuzz-hardened half of loadDisk — and any error means "treat as corrupt".
func decodeCacheFile(data []byte, key uint64, levels int, spec BinSpec) (*Table, error) {
	if len(data) < cacheFileHeader {
		return nil, fmt.Errorf("fastmpc: cache file truncated (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != cacheFileMagic {
		return nil, fmt.Errorf("fastmpc: cache file magic %#x, want %#x", m, uint32(cacheFileMagic))
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != cacheFileVersion {
		return nil, fmt.Errorf("fastmpc: cache file version %d, want %d", v, cacheFileVersion)
	}
	if k := binary.LittleEndian.Uint64(data[8:]); k != key {
		return nil, fmt.Errorf("fastmpc: cache file claims key %016x, want %016x", k, key)
	}
	full, err := Deserialize(data[cacheFileHeader:])
	if err != nil {
		return nil, err
	}
	if full.Levels != levels || !specIdentical(full.Spec, spec) {
		return nil, fmt.Errorf("fastmpc: cached table geometry disagrees with request")
	}
	return full, nil
}

// loadDisk reads and validates one cached table. Any failure — missing
// file, wrong magic or version, key mismatch, undecodable table, or a
// table whose geometry disagrees with the request — is a miss; corrupt
// files additionally count as DiskErrors.
func (r *Registry) loadDisk(dir string, key uint64, levels int, spec BinSpec) (*Table, bool) {
	data, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil, false
	}
	full, err := decodeCacheFile(data, key, levels, spec)
	if err != nil {
		r.diskErrors.Add(1)
		return nil, false
	}
	return full, true
}

// storeDisk persists a freshly built table, best-effort: the cache is an
// accelerator, so write failures only count toward DiskErrors. The write
// goes through a unique temp file renamed into place, so concurrent
// processes never observe a torn file.
func (r *Registry) storeDisk(dir string, key uint64, t *Table) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		r.diskErrors.Add(1)
		return
	}
	blob := t.Serialize()
	buf := make([]byte, cacheFileHeader, cacheFileHeader+len(blob))
	binary.LittleEndian.PutUint32(buf[0:], cacheFileMagic)
	binary.LittleEndian.PutUint32(buf[4:], cacheFileVersion)
	binary.LittleEndian.PutUint64(buf[8:], key)
	buf = append(buf, blob...)

	path := cachePath(dir, key)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		r.diskErrors.Add(1)
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		r.diskErrors.Add(1)
	}
}

// specIdentical reports bit-exact equality of two bin specs: a cached
// table must reproduce the requested binning down to the last float bit,
// or edge states would bin differently than a fresh build.
func specIdentical(a, b BinSpec) bool {
	return a.BufferBins == b.BufferBins && a.RateBins == b.RateBins &&
		math.Float64bits(a.BufferMax) == math.Float64bits(b.BufferMax) &&
		math.Float64bits(a.RateMin) == math.Float64bits(b.RateMin) &&
		math.Float64bits(a.RateMax) == math.Float64bits(b.RateMax)
}

// SetTableCacheDir points the shared registry's on-disk cache at dir
// ("" disables persistence). Typically wired to a -table-cache flag.
func SetTableCacheDir(dir string) { Shared.SetDir(dir) }

// TableCacheStats snapshots the shared registry's counters.
func TableCacheStats() CacheStats { return Shared.Stats() }

// ResetSharedTables drops the shared registry's resident tables and
// counters (the disk directory is kept). Intended for cold/warm cache
// tests and benchmarks.
func ResetSharedTables() { Shared.Reset() }
