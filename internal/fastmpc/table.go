// Package fastmpc implements the table-enumeration approximation of MPC
// (Sec 5): the state space (buffer level × previous bitrate × predicted
// throughput) is binned, every bin is solved offline with the exact
// optimizer, and the online controller reduces to a table lookup. The
// decision table is stored run-length encoded and queried by binary search
// (Sec 5.2), which is what keeps the player footprint at tens of kilobytes.
package fastmpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mpcdash/internal/core"
)

// BinSpec defines the discretization of the FastMPC state space.
type BinSpec struct {
	BufferBins int     // bins over [0, BufferMax] (paper default: 100)
	BufferMax  float64 // seconds
	RateBins   int     // bins over [RateMin, RateMax] (paper default: 100)
	RateMin    float64 // kbps
	RateMax    float64 // kbps
}

// DefaultBins returns the paper's 100×100 binning for the given buffer cap
// and ladder maximum: throughput bins span [10, 2·maxKbps] so predictions
// above the top rung still resolve distinctly.
func DefaultBins(bufferMax, maxKbps float64) BinSpec {
	return BinSpec{
		BufferBins: 100,
		BufferMax:  bufferMax,
		RateBins:   100,
		RateMin:    10,
		RateMax:    2 * maxKbps,
	}
}

// Validate reports structural errors in the spec.
func (s BinSpec) Validate() error {
	if s.BufferBins < 2 || s.RateBins < 2 {
		return fmt.Errorf("fastmpc: need at least 2 bins per dimension, got %d×%d", s.BufferBins, s.RateBins)
	}
	if s.BufferMax <= 0 {
		return fmt.Errorf("fastmpc: BufferMax must be positive, got %v", s.BufferMax)
	}
	if s.RateMin <= 0 || s.RateMax <= s.RateMin {
		return fmt.Errorf("fastmpc: need 0 < RateMin < RateMax, got [%v, %v]", s.RateMin, s.RateMax)
	}
	return nil
}

// BufferBin quantizes a buffer level to its bin index (clamped).
//
//mpc:noalloc
func (s BinSpec) BufferBin(buffer float64) int {
	return clampBin(buffer/s.BufferMax, s.BufferBins)
}

// BufferValue returns the representative buffer level of a bin (its center).
func (s BinSpec) BufferValue(bin int) float64 {
	return (float64(bin) + 0.5) * s.BufferMax / float64(s.BufferBins)
}

// RateBin quantizes a throughput prediction to its bin index (clamped).
//
//mpc:noalloc
func (s BinSpec) RateBin(kbps float64) int {
	return clampBin((kbps-s.RateMin)/(s.RateMax-s.RateMin), s.RateBins)
}

// RateValue returns the representative throughput of a bin (its center).
func (s BinSpec) RateValue(bin int) float64 {
	return s.RateMin + (float64(bin)+0.5)*(s.RateMax-s.RateMin)/float64(s.RateBins)
}

// clampBin maps a fraction of the binned range to a bin index, clamping to
// [0, bins). The comparisons are ordered so that NaN and ±Inf never reach a
// float→int conversion — Go leaves the conversion of out-of-range values
// (including NaN) implementation-defined, which would make the chosen bin
// platform-dependent. A NaN input (a poisoned trace, a 0/0 throughput
// sample) deterministically lands in bin 0.
//
//mpc:noalloc
func clampBin(frac float64, bins int) int {
	v := frac * float64(bins)
	if !(v > 0) { // NaN, -Inf, negatives and zero
		return 0
	}
	if v >= float64(bins) { // +Inf and overflow clamp to the top bin
		return bins - 1
	}
	return int(v)
}

// Table is the enumerated decision table. Entries are ladder-level indices
// laid out bufferBin-major, then previous level, then rate bin.
type Table struct {
	Spec    BinSpec
	Levels  int // ladder size
	Entries []uint8
}

// index computes the flat offset of a (bufferBin, prev, rateBin) cell.
//
//mpc:noalloc
func (t *Table) index(bBin, prev, rBin int) int {
	return (bBin*t.Levels+prev)*t.Spec.RateBins + rBin
}

// Lookup returns the stored optimal level for the given player state.
// prev < 0 (no previous chunk) is treated as the lowest level.
//
//mpc:noalloc
func (t *Table) Lookup(buffer float64, prev int, predictedKbps float64) int {
	if prev < 0 {
		prev = 0
	}
	if prev >= t.Levels {
		prev = t.Levels - 1
	}
	return int(t.Entries[t.index(t.Spec.BufferBin(buffer), prev, t.Spec.RateBin(predictedKbps))])
}

// Build enumerates the state space and solves every bin with the exact
// optimizer (the offline "CPLEX farm" of Fig 5, parallelized across CPUs).
// The representative chunk is chunk 0 with the horizon fully inside the
// video, which for CBR manifests is exact for every steady-state chunk.
func Build(opt *core.Optimizer, spec BinSpec) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	levels := opt.Manifest.Levels()
	if levels > math.MaxUint8+1 {
		return nil, fmt.Errorf("fastmpc: ladder has %d levels, table stores at most %d", levels, math.MaxUint8+1)
	}
	t := &Table{
		Spec:    spec,
		Levels:  levels,
		Entries: make([]uint8, spec.BufferBins*levels*spec.RateBins),
	}
	// Parallelize over buffer bins; each worker owns disjoint table rows
	// and its own solver Scratch, so the enumeration allocates nothing
	// beyond the table itself.
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch core.Scratch
			forecast := make([]float64, 1)
			for bBin := range rows {
				buffer := spec.BufferValue(bBin)
				for prev := 0; prev < levels; prev++ {
					for rBin := 0; rBin < spec.RateBins; rBin++ {
						forecast[0] = spec.RateValue(rBin)
						lvl, _, _ := opt.PlanScratch(&scratch, 0, buffer, prev, forecast, false)
						t.Entries[t.index(bBin, prev, rBin)] = uint8(lvl)
					}
				}
			}
		}()
	}
	for bBin := 0; bBin < spec.BufferBins; bBin++ {
		rows <- bBin
	}
	close(rows)
	wg.Wait()
	return t, nil
}

// FullSizeBytes returns the serialized size of the uncompressed table with
// the given bytes per entry. The paper's Table 1 counts 2 bytes per entry
// (the JavaScript literal encoding); our binary form needs 1.
func (t *Table) FullSizeBytes(bytesPerEntry int) int {
	return len(t.Entries) * bytesPerEntry
}

// Serialized formats. The legacy (v1) headers stored the three BinSpec
// scalars as float32: a deserialized table could disagree with the builder's
// float64 binning at bin edges, so Lookup on the round-tripped table
// returned a different level than the table it was serialized from. The
// current format is versioned behind a magic word and stores the scalars as
// float64 — a round trip is bit-exact. Deserialize still reads v1 blobs.
const (
	tableMagic   = 0x4D504354 // "MPCT", little-endian on the wire
	tableVersion = 2

	tableHeaderLen       = 44 // magic, version, 3×uint32 dims, 3×float64 scalars
	legacyTableHeaderLen = 24 // 3×uint32 dims, 3×float32 scalars
)

// maxTableDim bounds each table dimension read from an untrusted header so
// the entry-count product cannot overflow (2^20 per axis keeps the uint64
// product below 2^60) and an absurd header fails fast.
const maxTableDim = 1 << 20

// entryCount validates header dimensions and returns the implied entry
// count bufferBins·levels·rateBins. The multiplication is overflow-safe: a
// crafted header with huge dimensions is rejected before the product is
// trusted, instead of wrapping around int and matching a short payload.
func entryCount(bufferBins, levels, rateBins int) (int, error) {
	if bufferBins <= 0 || levels <= 0 || rateBins <= 0 ||
		bufferBins > maxTableDim || levels > maxTableDim || rateBins > maxTableDim {
		return 0, fmt.Errorf("fastmpc: table header has invalid dimensions %d×%d×%d", bufferBins, levels, rateBins)
	}
	n := uint64(bufferBins) * uint64(levels) * uint64(rateBins)
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("fastmpc: table header implies %d entries, beyond the %d cap", n, math.MaxInt32)
	}
	return int(n), nil
}

// validEntries rejects payload bytes that name a ladder level the header
// does not have — the cheapest integrity check a corrupted or truncated
// cache file fails, since valid tables only store levels below Levels.
func validEntries(entries []uint8, levels int) error {
	for i, e := range entries {
		if int(e) >= levels {
			return fmt.Errorf("fastmpc: table entry %d is level %d, header has %d levels", i, e, levels)
		}
	}
	return nil
}

// Serialize writes the versioned uncompressed table: the 44-byte v2 header
// (magic, version, the three dimensions as uint32 and the three BinSpec
// scalars as float64) followed by the entries.
func (t *Table) Serialize() []byte {
	buf := make([]byte, tableHeaderLen, tableHeaderLen+len(t.Entries))
	binary.LittleEndian.PutUint32(buf[0:], tableMagic)
	binary.LittleEndian.PutUint32(buf[4:], tableVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.Levels))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(t.Spec.BufferMax))
	binary.LittleEndian.PutUint64(buf[28:], math.Float64bits(t.Spec.RateMin))
	binary.LittleEndian.PutUint64(buf[36:], math.Float64bits(t.Spec.RateMax))
	return append(buf, t.Entries...)
}

// Deserialize reconstructs a table from Serialize output, current or legacy
// v1 format (recognized by the absence of the magic word).
func Deserialize(data []byte) (*Table, error) {
	if len(data) >= 8 && binary.LittleEndian.Uint32(data[0:]) == tableMagic {
		return deserializeV2(data)
	}
	return deserializeLegacy(data)
}

func deserializeV2(data []byte) (*Table, error) {
	if v := binary.LittleEndian.Uint32(data[4:]); v != tableVersion {
		return nil, fmt.Errorf("fastmpc: table blob version %d, want %d", v, tableVersion)
	}
	if len(data) < tableHeaderLen {
		return nil, fmt.Errorf("fastmpc: table blob too short (%d bytes)", len(data))
	}
	t := &Table{}
	t.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[8:]))
	t.Spec.RateBins = int(binary.LittleEndian.Uint32(data[12:]))
	t.Levels = int(binary.LittleEndian.Uint32(data[16:]))
	t.Spec.BufferMax = math.Float64frombits(binary.LittleEndian.Uint64(data[20:]))
	t.Spec.RateMin = math.Float64frombits(binary.LittleEndian.Uint64(data[28:]))
	t.Spec.RateMax = math.Float64frombits(binary.LittleEndian.Uint64(data[36:]))
	want, err := entryCount(t.Spec.BufferBins, t.Levels, t.Spec.RateBins)
	if err != nil {
		return nil, err
	}
	if len(data)-tableHeaderLen != want {
		return nil, fmt.Errorf("fastmpc: table blob has %d entries, header implies %d", len(data)-tableHeaderLen, want)
	}
	if err := validEntries(data[tableHeaderLen:], t.Levels); err != nil {
		return nil, err
	}
	t.Entries = append([]uint8(nil), data[tableHeaderLen:]...)
	return t, nil
}

// deserializeLegacy reads the pre-versioning v1 blob. Its float32 scalars
// are widened back to float64, so a v1 table keeps exactly the (possibly
// edge-shifted) binning it had when written — re-serialize to upgrade.
func deserializeLegacy(data []byte) (*Table, error) {
	if len(data) < legacyTableHeaderLen {
		return nil, fmt.Errorf("fastmpc: table blob too short (%d bytes)", len(data))
	}
	t := &Table{}
	t.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[0:]))
	t.Spec.RateBins = int(binary.LittleEndian.Uint32(data[4:]))
	t.Levels = int(binary.LittleEndian.Uint32(data[8:]))
	t.Spec.BufferMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[12:])))
	t.Spec.RateMin = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[16:])))
	t.Spec.RateMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[20:])))
	want, err := entryCount(t.Spec.BufferBins, t.Levels, t.Spec.RateBins)
	if err != nil {
		return nil, err
	}
	if len(data)-legacyTableHeaderLen != want {
		return nil, fmt.Errorf("fastmpc: table blob has %d entries, header implies %d", len(data)-legacyTableHeaderLen, want)
	}
	if err := validEntries(data[legacyTableHeaderLen:], t.Levels); err != nil {
		return nil, err
	}
	t.Entries = append([]uint8(nil), data[legacyTableHeaderLen:]...)
	return t, nil
}
