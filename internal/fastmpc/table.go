// Package fastmpc implements the table-enumeration approximation of MPC
// (Sec 5): the state space (buffer level × previous bitrate × predicted
// throughput) is binned, every bin is solved offline with the exact
// optimizer, and the online controller reduces to a table lookup. The
// decision table is stored run-length encoded and queried by binary search
// (Sec 5.2), which is what keeps the player footprint at tens of kilobytes.
package fastmpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mpcdash/internal/core"
)

// BinSpec defines the discretization of the FastMPC state space.
type BinSpec struct {
	BufferBins int     // bins over [0, BufferMax] (paper default: 100)
	BufferMax  float64 // seconds
	RateBins   int     // bins over [RateMin, RateMax] (paper default: 100)
	RateMin    float64 // kbps
	RateMax    float64 // kbps
}

// DefaultBins returns the paper's 100×100 binning for the given buffer cap
// and ladder maximum: throughput bins span [10, 2·maxKbps] so predictions
// above the top rung still resolve distinctly.
func DefaultBins(bufferMax, maxKbps float64) BinSpec {
	return BinSpec{
		BufferBins: 100,
		BufferMax:  bufferMax,
		RateBins:   100,
		RateMin:    10,
		RateMax:    2 * maxKbps,
	}
}

// Validate reports structural errors in the spec.
func (s BinSpec) Validate() error {
	if s.BufferBins < 2 || s.RateBins < 2 {
		return fmt.Errorf("fastmpc: need at least 2 bins per dimension, got %d×%d", s.BufferBins, s.RateBins)
	}
	if s.BufferMax <= 0 {
		return fmt.Errorf("fastmpc: BufferMax must be positive, got %v", s.BufferMax)
	}
	if s.RateMin <= 0 || s.RateMax <= s.RateMin {
		return fmt.Errorf("fastmpc: need 0 < RateMin < RateMax, got [%v, %v]", s.RateMin, s.RateMax)
	}
	return nil
}

// BufferBin quantizes a buffer level to its bin index (clamped).
func (s BinSpec) BufferBin(buffer float64) int {
	return clampBin(buffer/s.BufferMax, s.BufferBins)
}

// BufferValue returns the representative buffer level of a bin (its center).
func (s BinSpec) BufferValue(bin int) float64 {
	return (float64(bin) + 0.5) * s.BufferMax / float64(s.BufferBins)
}

// RateBin quantizes a throughput prediction to its bin index (clamped).
func (s BinSpec) RateBin(kbps float64) int {
	return clampBin((kbps-s.RateMin)/(s.RateMax-s.RateMin), s.RateBins)
}

// RateValue returns the representative throughput of a bin (its center).
func (s BinSpec) RateValue(bin int) float64 {
	return s.RateMin + (float64(bin)+0.5)*(s.RateMax-s.RateMin)/float64(s.RateBins)
}

func clampBin(frac float64, bins int) int {
	i := int(frac * float64(bins))
	if i < 0 {
		return 0
	}
	if i >= bins {
		return bins - 1
	}
	return i
}

// Table is the enumerated decision table. Entries are ladder-level indices
// laid out bufferBin-major, then previous level, then rate bin.
type Table struct {
	Spec    BinSpec
	Levels  int // ladder size
	Entries []uint8
}

// index computes the flat offset of a (bufferBin, prev, rateBin) cell.
func (t *Table) index(bBin, prev, rBin int) int {
	return (bBin*t.Levels+prev)*t.Spec.RateBins + rBin
}

// Lookup returns the stored optimal level for the given player state.
// prev < 0 (no previous chunk) is treated as the lowest level.
func (t *Table) Lookup(buffer float64, prev int, predictedKbps float64) int {
	if prev < 0 {
		prev = 0
	}
	if prev >= t.Levels {
		prev = t.Levels - 1
	}
	return int(t.Entries[t.index(t.Spec.BufferBin(buffer), prev, t.Spec.RateBin(predictedKbps))])
}

// Build enumerates the state space and solves every bin with the exact
// optimizer (the offline "CPLEX farm" of Fig 5, parallelized across CPUs).
// The representative chunk is chunk 0 with the horizon fully inside the
// video, which for CBR manifests is exact for every steady-state chunk.
func Build(opt *core.Optimizer, spec BinSpec) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	levels := opt.Manifest.Levels()
	if levels > math.MaxUint8+1 {
		return nil, fmt.Errorf("fastmpc: ladder has %d levels, table stores at most %d", levels, math.MaxUint8+1)
	}
	t := &Table{
		Spec:    spec,
		Levels:  levels,
		Entries: make([]uint8, spec.BufferBins*levels*spec.RateBins),
	}
	// Parallelize over buffer bins; each worker owns disjoint table rows.
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			forecast := make([]float64, 1)
			for bBin := range rows {
				buffer := spec.BufferValue(bBin)
				for prev := 0; prev < levels; prev++ {
					for rBin := 0; rBin < spec.RateBins; rBin++ {
						forecast[0] = spec.RateValue(rBin)
						lvl, _, _ := opt.Plan(0, buffer, prev, forecast, false)
						t.Entries[t.index(bBin, prev, rBin)] = uint8(lvl)
					}
				}
			}
		}()
	}
	for bBin := 0; bBin < spec.BufferBins; bBin++ {
		rows <- bBin
	}
	close(rows)
	wg.Wait()
	return t, nil
}

// FullSizeBytes returns the serialized size of the uncompressed table with
// the given bytes per entry. The paper's Table 1 counts 2 bytes per entry
// (the JavaScript literal encoding); our binary form needs 1.
func (t *Table) FullSizeBytes(bytesPerEntry int) int {
	return len(t.Entries) * bytesPerEntry
}

// Serialize writes the uncompressed table: a 6×uint32 header (buffer bins,
// rate bins, levels, and the three float32 spec scalars bit-cast) followed
// by the entries.
func (t *Table) Serialize() []byte {
	buf := make([]byte, 0, 24+len(t.Entries))
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.Spec.BufferBins))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.Spec.RateBins))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.Levels))
	binary.LittleEndian.PutUint32(hdr[12:], math.Float32bits(float32(t.Spec.BufferMax)))
	binary.LittleEndian.PutUint32(hdr[16:], math.Float32bits(float32(t.Spec.RateMin)))
	binary.LittleEndian.PutUint32(hdr[20:], math.Float32bits(float32(t.Spec.RateMax)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, t.Entries...)
	return buf
}

// Deserialize reconstructs a table from Serialize output.
func Deserialize(data []byte) (*Table, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("fastmpc: table blob too short (%d bytes)", len(data))
	}
	t := &Table{}
	t.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[0:]))
	t.Spec.RateBins = int(binary.LittleEndian.Uint32(data[4:]))
	t.Levels = int(binary.LittleEndian.Uint32(data[8:]))
	t.Spec.BufferMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[12:])))
	t.Spec.RateMin = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[16:])))
	t.Spec.RateMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[20:])))
	want := t.Spec.BufferBins * t.Levels * t.Spec.RateBins
	if t.Spec.BufferBins <= 0 || t.Levels <= 0 || t.Spec.RateBins <= 0 || len(data)-24 != want {
		return nil, fmt.Errorf("fastmpc: table blob has %d entries, header implies %d", len(data)-24, want)
	}
	t.Entries = append([]uint8(nil), data[24:]...)
	return t, nil
}
