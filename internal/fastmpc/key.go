package fastmpc

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"

	"mpcdash/internal/core"
)

// keyFormat versions the cache-key byte layout: bump it whenever the table
// semantics change (solver objective, binning, serialization) so stale
// on-disk tables miss instead of being trusted.
const keyFormat = "mpcdash/fastmpc/table/v2\x00"

// TableKey returns the content-addressed identity of the decision table
// Build would produce for (opt, spec): a 64-bit FNV-1a hash over every
// input the enumeration depends on — the manifest (ladder, chunk geometry,
// VBR multipliers), the QoE weights, the quality function identity, the
// player configuration (buffer cap, horizon, terminal-buffer weight) and
// the bin spec. Two optimizers with equal content hash equally regardless
// of pointer identity, which is what lets N fleet populations sharing a
// configuration share one table build. qualityID must come from
// model.QualityID; keys for distinct quality functions must differ.
func TableKey(opt *core.Optimizer, qualityID string, spec BinSpec) uint64 {
	h := fnv.New64a()
	var b [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	io.WriteString(h, keyFormat)
	io.WriteString(h, qualityID)
	h.Write([]byte{0})

	m := opt.Manifest
	writeInt(m.ChunkCount)
	writeFloat(m.ChunkDuration)
	writeInt(m.Levels())
	for _, kbps := range m.Ladder {
		writeFloat(kbps)
	}
	for k := 0; k < m.ChunkCount; k++ {
		writeFloat(m.SizeMultiplier(k))
	}

	writeFloat(opt.Weights.Lambda)
	writeFloat(opt.Weights.Mu)
	writeFloat(opt.Weights.MuS)
	writeFloat(opt.BufferMax)
	writeInt(opt.Horizon)
	writeFloat(opt.TerminalBufferWeight)

	writeInt(spec.BufferBins)
	writeInt(spec.RateBins)
	writeFloat(spec.BufferMax)
	writeFloat(spec.RateMin)
	writeFloat(spec.RateMax)
	return h.Sum64()
}
