package fastmpc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The enumerated table is highly structured — neighbouring states share the
// same optimal decision — so a run-length encoding compresses it well
// (Sec 5.2). Runs are stored as (start offset, value) pairs and queried by
// binary search over the starts, exactly the paper's online lookup.

// CompressedTable is the run-length encoded decision table.
type CompressedTable struct {
	Spec   BinSpec
	Levels int
	Length int      // number of logical entries
	Starts []uint32 // first flat index of each run, ascending
	Values []uint8  // decision for each run
}

// Compress run-length encodes a table.
func Compress(t *Table) *CompressedTable {
	c := &CompressedTable{Spec: t.Spec, Levels: t.Levels, Length: len(t.Entries)}
	for i, v := range t.Entries {
		if i == 0 || v != t.Entries[i-1] {
			c.Starts = append(c.Starts, uint32(i))
			c.Values = append(c.Values, v)
		}
	}
	return c
}

// Decompress expands back to the flat table; the inverse of Compress.
func (c *CompressedTable) Decompress() *Table {
	t := &Table{Spec: c.Spec, Levels: c.Levels, Entries: make([]uint8, c.Length)}
	for r := range c.Starts {
		end := c.Length
		if r+1 < len(c.Starts) {
			end = int(c.Starts[r+1])
		}
		for i := int(c.Starts[r]); i < end; i++ {
			t.Entries[i] = c.Values[r]
		}
	}
	return t
}

// Runs returns the number of runs in the encoding.
func (c *CompressedTable) Runs() int { return len(c.Starts) }

// at returns the value at flat index i via binary search over run starts.
// The search is hand-rolled rather than sort.Search: the closure argument
// is a capture the noalloc contract forbids, and the per-decision lookup
// is the one operation the paper's online phase pays for.
//
//mpc:noalloc
func (c *CompressedTable) at(i int) uint8 {
	// Largest r with Starts[r] <= i is the run containing i; Starts[0] == 0
	// guarantees one exists.
	lo, hi := 0, len(c.Starts) // invariant: Starts[lo] <= i < Starts[hi]
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if int(c.Starts[mid]) <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return c.Values[lo]
}

// Lookup returns the stored optimal level for the given player state,
// without decompressing.
//
//mpc:noalloc
func (c *CompressedTable) Lookup(buffer float64, prev int, predictedKbps float64) int {
	if prev < 0 {
		prev = 0
	}
	if prev >= c.Levels {
		prev = c.Levels - 1
	}
	i := (c.Spec.BufferBin(buffer)*c.Levels+prev)*c.Spec.RateBins + c.Spec.RateBin(predictedKbps)
	return int(c.at(i))
}

// Compressed serialized formats mirror the flat table's: the legacy (v1)
// 28-byte header stored the BinSpec scalars as float32; the current format
// is versioned behind its own magic word and stores them as float64 so the
// round-tripped binning is bit-exact. DeserializeCompressed reads both.
const (
	rleMagic     = 0x4D504352 // "MPCR", little-endian on the wire
	rleVersion   = 2
	rleHeaderLen = 48 // magic, version, 3×uint32 dims, 3×float64 scalars, run count

	legacyRLEHeaderLen = 28
)

// SizeBytes returns the serialized size: 5 bytes per run (uint32 start +
// uint8 value) plus the 48-byte versioned header.
func (c *CompressedTable) SizeBytes() int { return rleHeaderLen + 5*len(c.Starts) }

// Serialize writes the compressed table in the versioned format.
func (c *CompressedTable) Serialize() []byte {
	buf := make([]byte, rleHeaderLen, c.SizeBytes())
	binary.LittleEndian.PutUint32(buf[0:], rleMagic)
	binary.LittleEndian.PutUint32(buf[4:], rleVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(c.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[12:], uint32(c.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[16:], uint32(c.Levels))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(c.Spec.BufferMax))
	binary.LittleEndian.PutUint64(buf[28:], math.Float64bits(c.Spec.RateMin))
	binary.LittleEndian.PutUint64(buf[36:], math.Float64bits(c.Spec.RateMax))
	binary.LittleEndian.PutUint32(buf[44:], uint32(len(c.Starts)))
	var entry [5]byte
	for r := range c.Starts {
		binary.LittleEndian.PutUint32(entry[0:], c.Starts[r])
		entry[4] = c.Values[r]
		buf = append(buf, entry[:]...)
	}
	return buf
}

// DeserializeCompressed reconstructs a compressed table from current or
// legacy v1 blobs (recognized by the absence of the magic word).
func DeserializeCompressed(data []byte) (*CompressedTable, error) {
	if len(data) < legacyRLEHeaderLen {
		return nil, fmt.Errorf("fastmpc: compressed blob too short (%d bytes)", len(data))
	}
	c := &CompressedTable{}
	headerLen := legacyRLEHeaderLen
	if binary.LittleEndian.Uint32(data[0:]) == rleMagic {
		if v := binary.LittleEndian.Uint32(data[4:]); v != rleVersion {
			return nil, fmt.Errorf("fastmpc: compressed blob version %d, want %d", v, rleVersion)
		}
		if len(data) < rleHeaderLen {
			return nil, fmt.Errorf("fastmpc: compressed blob too short (%d bytes)", len(data))
		}
		headerLen = rleHeaderLen
		c.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[8:]))
		c.Spec.RateBins = int(binary.LittleEndian.Uint32(data[12:]))
		c.Levels = int(binary.LittleEndian.Uint32(data[16:]))
		c.Spec.BufferMax = math.Float64frombits(binary.LittleEndian.Uint64(data[20:]))
		c.Spec.RateMin = math.Float64frombits(binary.LittleEndian.Uint64(data[28:]))
		c.Spec.RateMax = math.Float64frombits(binary.LittleEndian.Uint64(data[36:]))
	} else {
		c.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[0:]))
		c.Spec.RateBins = int(binary.LittleEndian.Uint32(data[4:]))
		c.Levels = int(binary.LittleEndian.Uint32(data[8:]))
		c.Spec.BufferMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[12:])))
		c.Spec.RateMin = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[16:])))
		c.Spec.RateMax = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[20:])))
	}
	length, err := entryCount(c.Spec.BufferBins, c.Levels, c.Spec.RateBins)
	if err != nil {
		return nil, err
	}
	c.Length = length
	runs := int(binary.LittleEndian.Uint32(data[headerLen-4:]))
	if runs <= 0 || runs > c.Length || len(data)-headerLen != 5*runs {
		return nil, fmt.Errorf("fastmpc: compressed blob has %d payload bytes, header implies %d runs", len(data)-headerLen, runs)
	}
	c.Starts = make([]uint32, runs)
	c.Values = make([]uint8, runs)
	for r := 0; r < runs; r++ {
		off := headerLen + 5*r
		c.Starts[r] = binary.LittleEndian.Uint32(data[off:])
		c.Values[r] = data[off+4]
	}
	if c.Starts[0] != 0 {
		return nil, fmt.Errorf("fastmpc: compressed blob first run starts at %d, want 0", c.Starts[0])
	}
	for r := 1; r < runs; r++ {
		if c.Starts[r] <= c.Starts[r-1] {
			return nil, fmt.Errorf("fastmpc: compressed blob run starts not ascending at run %d", r)
		}
	}
	if int(c.Starts[runs-1]) >= c.Length {
		return nil, fmt.Errorf("fastmpc: compressed blob last run starts beyond table length")
	}
	// The flat decoder rejects entries naming a level the header does not
	// have (validEntries); the run values need the same check or a corrupt
	// blob decodes into a table whose Lookup returns out-of-range levels.
	for r := 0; r < runs; r++ {
		if int(c.Values[r]) >= c.Levels {
			return nil, fmt.Errorf("fastmpc: compressed blob run %d is level %d, header has %d levels", r, c.Values[r], c.Levels)
		}
	}
	return c, nil
}
