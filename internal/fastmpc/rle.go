package fastmpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// The enumerated table is highly structured — neighbouring states share the
// same optimal decision — so a run-length encoding compresses it well
// (Sec 5.2). Runs are stored as (start offset, value) pairs and queried by
// binary search over the starts, exactly the paper's online lookup.

// CompressedTable is the run-length encoded decision table.
type CompressedTable struct {
	Spec   BinSpec
	Levels int
	Length int      // number of logical entries
	Starts []uint32 // first flat index of each run, ascending
	Values []uint8  // decision for each run
}

// Compress run-length encodes a table.
func Compress(t *Table) *CompressedTable {
	c := &CompressedTable{Spec: t.Spec, Levels: t.Levels, Length: len(t.Entries)}
	for i, v := range t.Entries {
		if i == 0 || v != t.Entries[i-1] {
			c.Starts = append(c.Starts, uint32(i))
			c.Values = append(c.Values, v)
		}
	}
	return c
}

// Decompress expands back to the flat table; the inverse of Compress.
func (c *CompressedTable) Decompress() *Table {
	t := &Table{Spec: c.Spec, Levels: c.Levels, Entries: make([]uint8, c.Length)}
	for r := range c.Starts {
		end := c.Length
		if r+1 < len(c.Starts) {
			end = int(c.Starts[r+1])
		}
		for i := int(c.Starts[r]); i < end; i++ {
			t.Entries[i] = c.Values[r]
		}
	}
	return t
}

// Runs returns the number of runs in the encoding.
func (c *CompressedTable) Runs() int { return len(c.Starts) }

// at returns the value at flat index i via binary search over run starts.
func (c *CompressedTable) at(i int) uint8 {
	// First run with Starts > i, minus one, is the run containing i.
	r := sort.Search(len(c.Starts), func(j int) bool { return int(c.Starts[j]) > i })
	return c.Values[r-1] // Starts[0] == 0, so r ≥ 1 always
}

// Lookup returns the stored optimal level for the given player state,
// without decompressing.
func (c *CompressedTable) Lookup(buffer float64, prev int, predictedKbps float64) int {
	if prev < 0 {
		prev = 0
	}
	if prev >= c.Levels {
		prev = c.Levels - 1
	}
	i := (c.Spec.BufferBin(buffer)*c.Levels+prev)*c.Spec.RateBins + c.Spec.RateBin(predictedKbps)
	return int(c.at(i))
}

// SizeBytes returns the serialized size: 5 bytes per run (uint32 start +
// uint8 value) plus the 28-byte header.
func (c *CompressedTable) SizeBytes() int { return 28 + 5*len(c.Starts) }

// Serialize writes the compressed table.
func (c *CompressedTable) Serialize() []byte {
	buf := make([]byte, 28, c.SizeBytes())
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.Spec.BufferBins))
	binary.LittleEndian.PutUint32(buf[4:], uint32(c.Spec.RateBins))
	binary.LittleEndian.PutUint32(buf[8:], uint32(c.Levels))
	binary.LittleEndian.PutUint32(buf[12:], float32bits(c.Spec.BufferMax))
	binary.LittleEndian.PutUint32(buf[16:], float32bits(c.Spec.RateMin))
	binary.LittleEndian.PutUint32(buf[20:], float32bits(c.Spec.RateMax))
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(c.Starts)))
	var entry [5]byte
	for r := range c.Starts {
		binary.LittleEndian.PutUint32(entry[0:], c.Starts[r])
		entry[4] = c.Values[r]
		buf = append(buf, entry[:]...)
	}
	return buf
}

// DeserializeCompressed reconstructs a compressed table.
func DeserializeCompressed(data []byte) (*CompressedTable, error) {
	if len(data) < 28 {
		return nil, fmt.Errorf("fastmpc: compressed blob too short (%d bytes)", len(data))
	}
	c := &CompressedTable{}
	c.Spec.BufferBins = int(binary.LittleEndian.Uint32(data[0:]))
	c.Spec.RateBins = int(binary.LittleEndian.Uint32(data[4:]))
	c.Levels = int(binary.LittleEndian.Uint32(data[8:]))
	c.Spec.BufferMax = float64frombits(binary.LittleEndian.Uint32(data[12:]))
	c.Spec.RateMin = float64frombits(binary.LittleEndian.Uint32(data[16:]))
	c.Spec.RateMax = float64frombits(binary.LittleEndian.Uint32(data[20:]))
	runs := int(binary.LittleEndian.Uint32(data[24:]))
	if c.Spec.BufferBins <= 0 || c.Levels <= 0 || c.Spec.RateBins <= 0 {
		return nil, fmt.Errorf("fastmpc: compressed blob has invalid dimensions")
	}
	if len(data)-28 != 5*runs || runs == 0 {
		return nil, fmt.Errorf("fastmpc: compressed blob has %d payload bytes, header implies %d runs", len(data)-28, runs)
	}
	c.Length = c.Spec.BufferBins * c.Levels * c.Spec.RateBins
	c.Starts = make([]uint32, runs)
	c.Values = make([]uint8, runs)
	for r := 0; r < runs; r++ {
		off := 28 + 5*r
		c.Starts[r] = binary.LittleEndian.Uint32(data[off:])
		c.Values[r] = data[off+4]
	}
	if c.Starts[0] != 0 {
		return nil, fmt.Errorf("fastmpc: compressed blob first run starts at %d, want 0", c.Starts[0])
	}
	for r := 1; r < runs; r++ {
		if c.Starts[r] <= c.Starts[r-1] {
			return nil, fmt.Errorf("fastmpc: compressed blob run starts not ascending at run %d", r)
		}
	}
	if int(c.Starts[runs-1]) >= c.Length {
		return nil, fmt.Errorf("fastmpc: compressed blob last run starts beyond table length")
	}
	return c, nil
}

func float32bits(f float64) uint32     { return math.Float32bits(float32(f)) }
func float64frombits(b uint32) float64 { return float64(math.Float32frombits(b)) }
