// Package fuzzcorpus keeps committed fuzz seed corpora in sync with the
// f.Add seeds they mirror. Go's fuzzing reads testdata/fuzz/<Target>/* as
// seed inputs in every `go test` run, so committing the seeds makes the
// corpus part of tier-1 — but hand-maintaining the "go test fuzz v1" file
// encoding invites drift. Each fuzz target declares its seeds once in code;
// a companion test calls Sync to verify the committed files match, and
// regenerates them when UPDATE_FUZZ_CORPUS=1 is set.
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// UpdateEnv is the environment variable that switches Sync from verifying
// to rewriting: UPDATE_FUZZ_CORPUS=1 go test ./... -run TestFuzzCorpus
const UpdateEnv = "UPDATE_FUZZ_CORPUS"

// Encode renders one []byte seed in the corpus file encoding the Go fuzzing
// engine reads ("go test fuzz v1" followed by one Go literal per argument).
func Encode(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// seedName names the i-th committed seed file. A numeric suffix keeps the
// directory listing in seed order.
func seedName(i int) string { return fmt.Sprintf("seed-%02d", i) }

// Sync reconciles dir (testdata/fuzz/<Target>) against seeds. In update
// mode it rewrites the directory to exactly the encoded seeds and returns
// nil. In verify mode it returns one message per missing, stale or orphaned
// file; an empty slice means the committed corpus matches the code.
func Sync(dir string, seeds [][]byte) ([]string, error) {
	if os.Getenv(UpdateEnv) != "" {
		return nil, rewrite(dir, seeds)
	}
	var problems []string
	want := map[string][]byte{}
	for i, s := range seeds {
		want[seedName(i)] = Encode(s)
	}
	for name, enc := range want {
		got, err := os.ReadFile(filepath.Join(dir, name))
		switch {
		case err != nil:
			problems = append(problems, fmt.Sprintf("%s: missing (run with %s=1 to regenerate)", name, UpdateEnv))
		case string(got) != string(enc):
			problems = append(problems, fmt.Sprintf("%s: stale encoding (run with %s=1 to regenerate)", name, UpdateEnv))
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if _, ok := want[e.Name()]; !ok {
			problems = append(problems, fmt.Sprintf("%s: not declared by any f.Add seed", e.Name()))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// rewrite replaces dir's contents with exactly the encoded seeds.
func rewrite(dir string, seeds [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	for i, s := range seeds {
		if err := os.WriteFile(filepath.Join(dir, seedName(i)), Encode(s), 0o644); err != nil {
			return err
		}
	}
	return nil
}
