// Package viz renders small terminal graphics — sparklines, horizontal
// bars, and multi-series line plots on a character grid — so the CLI tools
// can show the shape of a CDF or a sensitivity sweep without leaving the
// terminal. Pure text, no dependencies.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eighth-block ramp used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character chart. NaN and
// ±Inf values render as spaces. A flat series renders mid-height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			b.WriteRune(' ')
		case hi == lo: //lint:allow floateq degenerate-range guard; exact equality is the definition
			b.WriteRune(sparkRunes[len(sparkRunes)/2])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// Bar renders a labelled horizontal bar scaled to width cells, with the
// numeric value appended.
func Bar(label string, value, max float64, width int) string {
	if width < 1 {
		width = 40
	}
	frac := 0.0
	if max > 0 && value > 0 {
		frac = value / max
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(math.Round(frac * float64(width)))
	return fmt.Sprintf("%-14s %s%s %.3f",
		label, strings.Repeat("█", fill), strings.Repeat("·", width-fill), value)
}

// Series is one labelled line of a Plot.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Plot renders series onto a rows×cols character grid with simple axis
// annotations; each series draws with its own marker rune (cycling
// 1,2,3…). Points outside the common range are clamped to the border.
func Plot(series []Series, rows, cols int) string {
	if rows < 4 {
		rows = 10
	}
	if cols < 8 {
		cols = 60
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xlo, xhi = math.Min(xlo, s.X[i]), math.Max(xhi, s.X[i])
			ylo, yhi = math.Min(ylo, s.Y[i]), math.Max(yhi, s.Y[i])
			any = true
		}
	}
	if !any {
		return "(no data)\n"
	}
	if xhi == xlo { //lint:allow floateq degenerate-range guard before division
		xhi = xlo + 1
	}
	if yhi == ylo { //lint:allow floateq degenerate-range guard before division
		yhi = ylo + 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		marker := rune('1' + si%9)
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - xlo) / (xhi - xlo) * float64(cols-1))
			r := rows - 1 - int((s.Y[i]-ylo)/(yhi-ylo)*float64(rows-1))
			if c < 0 {
				c = 0
			}
			if c >= cols {
				c = cols - 1
			}
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			grid[r][c] = marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3g ┤%s\n", yhi, string(grid[0]))
	for r := 1; r < rows-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", ylo, string(grid[rows-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", cols))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", cols/2, xlo, cols-cols/2, xhi)
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", rune('1'+si%9), s.Label)
	}
	return b.String()
}
