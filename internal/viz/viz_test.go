package viz

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length = %d runes", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes = %c %c", runes[0], runes[7])
	}
	// Monotone input → monotone ramp.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp not monotone at %d: %q", i, s)
		}
	}
	// Flat series renders uniformly at mid height.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	if flat[0] != flat[1] || flat[1] != flat[2] {
		t.Errorf("flat series not uniform: %q", string(flat))
	}
	// NaN renders as space.
	withNaN := []rune(Sparkline([]float64{1, math.NaN(), 2}))
	if withNaN[1] != ' ' {
		t.Errorf("NaN cell = %q", string(withNaN[1]))
	}
}

func TestBar(t *testing.T) {
	full := Bar("x", 10, 10, 10)
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar: %q", full)
	}
	half := Bar("x", 5, 10, 10)
	if strings.Count(half, "█") != 5 || strings.Count(half, "·") != 5 {
		t.Errorf("half bar: %q", half)
	}
	zero := Bar("x", 0, 10, 10)
	if strings.Count(zero, "█") != 0 {
		t.Errorf("zero bar: %q", zero)
	}
	over := Bar("x", 20, 10, 10)
	if strings.Count(over, "█") != 10 {
		t.Errorf("overflow bar should clamp: %q", over)
	}
	if !strings.Contains(full, "10.000") {
		t.Errorf("value missing: %q", full)
	}
}

func TestPlot(t *testing.T) {
	out := Plot([]Series{
		{Label: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Label: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}, 8, 40)
	if !strings.Contains(out, "1 = up") || !strings.Contains(out, "2 = down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Error("markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// rows + axis + xlabels + 2 legend lines
	if len(lines) != 8+1+1+2 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Increasing series: marker '1' appears in the top row (at the right).
	if !strings.Contains(lines[0], "1") {
		t.Errorf("top row should contain series 1's max:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if got := Plot(nil, 5, 20); got != "(no data)\n" {
		t.Errorf("nil series = %q", got)
	}
	if got := Plot([]Series{{Label: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}, 5, 20); got != "(no data)\n" {
		t.Errorf("all-NaN = %q", got)
	}
	// Single point must not divide by zero.
	out := Plot([]Series{{Label: "pt", X: []float64{1}, Y: []float64{2}}}, 5, 20)
	if !strings.Contains(out, "1 = pt") {
		t.Errorf("single point:\n%s", out)
	}
}
