package optimal

import (
	"math"
	"sort"

	"mpcdash/internal/trace"
)

// Plan is a reconstructed offline-optimal schedule: the startup delay and
// the per-chunk rate choices (in kbps — the relaxation may choose rates
// between ladder rungs), with the QoE the solver attributes to it.
type Plan struct {
	StartupDelay float64
	Rates        []float64 // chosen kbps per chunk
	QoE          float64
}

// SolvePlan is Solve with plan reconstruction: it re-runs the dynamic
// program keeping back-pointers and returns both the optimal value and one
// optimal schedule. It costs the same asymptotically but keeps per-chunk
// frontier snapshots in memory, so prefer Solve when only the value is
// needed (the normalizer path).
func (s *Solver) SolvePlan(tr *trace.Trace) Plan {
	actions := s.actions()
	noPrev := len(actions)
	timeBin := s.TimeBin
	if timeBin <= 0 {
		timeBin = 0.5
	}
	bufBin := s.BufferBin
	if bufBin <= 0 {
		bufBin = 0.5
	}
	tsStep := s.TsStep
	if tsStep <= 0 {
		tsStep = 1
	}
	tsMax := s.TsMax
	if tsMax <= 0 {
		tsMax = s.BufferMax
	}
	quantB := func(b float64) int16 {
		bin := int16(math.Round(b / bufBin))
		max := int16(math.Round(s.BufferMax / bufBin))
		if bin > max {
			bin = max
		}
		if bin < 0 {
			bin = 0
		}
		return bin
	}

	frontier := make(map[stateKey]bpNode)
	for ts := 0.0; ts <= tsMax+1e-9; ts += tsStep {
		key := stateKey{prev: noPrev, tBin: 0, bBin: quantB(ts)}
		n := bpNode{node: node{val: -s.Weights.MuS * ts, t: 0, buf: ts}, ts: ts, action: -1}
		if old, ok := frontier[key]; !ok || n.node.better(old.node) {
			frontier[key] = n
		}
	}

	qOf := make([]float64, len(actions))
	for i, r := range actions {
		qOf[i] = s.Quality(r)
	}

	history := make([]map[stateKey]bpNode, 0, s.Manifest.ChunkCount+1)
	history = append(history, frontier)

	for k := 0; k < s.Manifest.ChunkCount; k++ {
		next := make(map[stateKey]bpNode, len(frontier)*2)
		mult := s.Manifest.SizeMultiplier(k)
		for key, st := range frontier {
			for a, rate := range actions {
				size := s.Manifest.ChunkDuration * rate * mult
				dl := tr.DownloadTime(st.t, size)
				if math.IsInf(dl, 1) {
					continue
				}
				rebuffer := math.Max(dl-st.buf, 0)
				afterDrain := math.Max(st.buf-dl, 0) + s.Manifest.ChunkDuration
				wait := math.Max(afterDrain-s.BufferMax, 0)
				nb := afterDrain - wait
				nt := st.t + dl + wait
				gain := qOf[a] - s.Weights.Mu*rebuffer
				if key.prev != noPrev {
					gain -= s.Weights.Lambda * math.Abs(qOf[a]-qOf[key.prev])
				}
				nk := stateKey{prev: a, tBin: int32(math.Round(nt / timeBin)), bBin: quantB(nb)}
				nn := bpNode{
					node:   node{val: st.val + gain, t: nt, buf: nb},
					ts:     st.ts,
					action: a,
					from:   key,
				}
				if old, ok := next[nk]; !ok || nn.node.better(old.node) {
					next[nk] = nn
				}
			}
		}
		next = prunePlan(next, qOf, s.Weights.Lambda, noPrev)
		history = append(history, next)
		frontier = next
	}

	// Locate the best terminal state and walk back.
	var bestKey stateKey
	best := bpNode{node: node{val: math.Inf(-1)}}
	for k, n := range frontier {
		if n.val > best.val {
			best, bestKey = n, k
		}
	}
	plan := Plan{QoE: best.val, StartupDelay: best.ts}
	if math.IsInf(best.val, -1) {
		return plan // infeasible (dead trace)
	}
	rates := make([]float64, 0, s.Manifest.ChunkCount)
	key, n := bestKey, best
	for k := s.Manifest.ChunkCount; k > 0; k-- {
		rates = append(rates, actions[n.action])
		key = n.from
		n = history[k-1][key]
	}
	// Reverse into chronological order.
	for i, j := 0, len(rates)-1; i < j; i, j = i+1, j-1 {
		rates[i], rates[j] = rates[j], rates[i]
	}
	plan.Rates = rates
	return plan
}

// bpNode augments a DP node with back-pointers for plan reconstruction.
type bpNode struct {
	node
	ts     float64 // startup delay of the originating initial state
	action int     // action taken to reach this state (-1 initially)
	from   stateKey
}

// prunePlan mirrors prune for the back-pointer node type: dominated states
// within a tBin group are dropped using the same λ-gap criterion.
func prunePlan(frontier map[stateKey]bpNode, qOf []float64, lambda float64, noPrev int) map[stateKey]bpNode {
	type entry struct {
		prev int
		key  stateKey
		n    bpNode
	}
	groups := make(map[int32][]entry)
	for k, n := range frontier {
		groups[k.tBin] = append(groups[k.tBin], entry{k.prev, k, n})
	}
	qp := func(p int) float64 {
		if p == noPrev {
			return math.Inf(1)
		}
		return qOf[p]
	}
	out := make(map[stateKey]bpNode, len(frontier))
	for _, entries := range groups {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].n.buf != entries[j].n.buf { //lint:allow floateq deterministic sort key; exact compare is the tie-break contract
				return entries[i].n.buf > entries[j].n.buf
			}
			if entries[i].n.val != entries[j].n.val { //lint:allow floateq deterministic sort key; exact compare is the tie-break contract
				return entries[i].n.val > entries[j].n.val
			}
			if entries[i].prev != entries[j].prev {
				return entries[i].prev < entries[j].prev
			}
			return entries[i].n.t < entries[j].n.t
		})
		kept := entries[:0]
		for _, e := range entries {
			dominated := false
			for _, d := range kept {
				var gap float64
				if d.prev != e.prev {
					a, b := qp(d.prev), qp(e.prev)
					if math.IsInf(a, 1) || math.IsInf(b, 1) {
						continue
					}
					gap = lambda * math.Abs(a-b)
				}
				if d.n.val-e.n.val >= gap {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, e)
				out[e.key] = e.n
			}
		}
	}
	return out
}
