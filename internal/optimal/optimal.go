// Package optimal computes the offline-optimal QoE(OPT) used to normalize
// every result in Sec 7: the maximum Eq. (5) QoE attainable with perfect
// knowledge of the whole throughput trace. The paper solves this with
// CPLEX after relaxing bitrates to a continuous range (footnote 6); we
// solve the same relaxation by dynamic programming over the exact buffer
// and timing dynamics, quantizing time and buffer onto fine grids and
// pruning dominated states (a state with less buffer and less accumulated
// QoE at the same trace position can never win).
package optimal

import (
	"fmt"
	"math"
	"sort"

	"mpcdash/internal/model"
	"mpcdash/internal/trace"
)

// Solver configures the offline optimum computation.
type Solver struct {
	Manifest  *model.Manifest
	Weights   model.Weights
	Quality   model.QualityFunc
	BufferMax float64

	// TimeBin and BufferBin are the quantization grids in seconds
	// (defaults 0.5 and 0.5). Finer grids tighten the approximation at
	// quadratic cost.
	TimeBin   float64
	BufferBin float64

	// DenseLevels > 0 replaces the manifest ladder with that many rates
	// uniform in [R_min, R_max] — the paper's continuous-bitrate
	// relaxation (default 21). Zero keeps the discrete ladder, giving the
	// exact discrete offline optimum.
	DenseLevels int

	// Startup-delay search grid (defaults 1 s steps up to BufferMax).
	TsStep float64
	TsMax  float64
}

// NewSolver returns a Solver with the paper-comparable defaults.
func NewSolver(m *model.Manifest, w model.Weights, q model.QualityFunc, bufferMax float64) (*Solver, error) {
	if m == nil {
		return nil, fmt.Errorf("optimal: nil manifest")
	}
	if bufferMax <= 0 {
		return nil, fmt.Errorf("optimal: BufferMax must be positive, got %v", bufferMax)
	}
	if q == nil {
		q = model.QIdentity
	}
	return &Solver{
		Manifest:    m,
		Weights:     w,
		Quality:     q,
		BufferMax:   bufferMax,
		TimeBin:     1,
		BufferBin:   1,
		DenseLevels: 11,
		TsStep:      1,
		TsMax:       bufferMax,
	}, nil
}

type stateKey struct {
	prev int // action index of previous chunk; len(actions) = "none"
	tBin int32
	bBin int16
}

// node carries the exact dynamics alongside the accumulated value; bins are
// only dedup keys, so quantization error does not accumulate across chunks.
type node struct {
	val float64
	t   float64
	buf float64
}

// better orders nodes totally — by value, then buffer, then earlier time —
// so frontier updates are independent of map iteration order and the solver
// is bit-for-bit deterministic.
func (n node) better(o node) bool {
	if n.val != o.val { //lint:allow floateq deliberate total order for bit-stable frontier updates
		return n.val > o.val
	}
	if n.buf != o.buf { //lint:allow floateq deliberate total order for bit-stable frontier updates
		return n.buf > o.buf
	}
	return n.t < o.t
}

// Solve returns QoE(OPT) for the trace: the best achievable Eq. (5) value
// over all bitrate plans and startup delays.
func (s *Solver) Solve(tr *trace.Trace) float64 {
	actions := s.actions()
	noPrev := len(actions)
	timeBin := s.TimeBin
	if timeBin <= 0 {
		timeBin = 0.5
	}
	bufBin := s.BufferBin
	if bufBin <= 0 {
		bufBin = 0.5
	}
	tsStep := s.TsStep
	if tsStep <= 0 {
		tsStep = 1
	}
	tsMax := s.TsMax
	if tsMax <= 0 {
		tsMax = s.BufferMax
	}

	quantB := func(b float64) int16 {
		bin := int16(math.Round(b / bufBin))
		max := int16(math.Round(s.BufferMax / bufBin))
		if bin > max {
			bin = max
		}
		if bin < 0 {
			bin = 0
		}
		return bin
	}

	frontier := make(map[stateKey]node)
	for ts := 0.0; ts <= tsMax+1e-9; ts += tsStep {
		key := stateKey{prev: noPrev, tBin: 0, bBin: quantB(ts)}
		n := node{val: -s.Weights.MuS * ts, t: 0, buf: ts}
		if old, ok := frontier[key]; !ok || n.better(old) {
			frontier[key] = n
		}
	}

	qOf := make([]float64, len(actions))
	for i, r := range actions {
		qOf[i] = s.Quality(r)
	}

	for k := 0; k < s.Manifest.ChunkCount; k++ {
		next := make(map[stateKey]node, len(frontier)*2)
		mult := s.Manifest.SizeMultiplier(k)
		for key, st := range frontier {
			for a, rate := range actions {
				size := s.Manifest.ChunkDuration * rate * mult
				dl := tr.DownloadTime(st.t, size)
				if math.IsInf(dl, 1) {
					continue
				}
				rebuffer := math.Max(dl-st.buf, 0)
				afterDrain := math.Max(st.buf-dl, 0) + s.Manifest.ChunkDuration
				wait := math.Max(afterDrain-s.BufferMax, 0)
				nb := afterDrain - wait
				nt := st.t + dl + wait

				gain := qOf[a] - s.Weights.Mu*rebuffer
				if key.prev != noPrev {
					gain -= s.Weights.Lambda * math.Abs(qOf[a]-qOf[key.prev])
				}
				nk := stateKey{
					prev: a,
					tBin: int32(math.Round(nt / timeBin)),
					bBin: quantB(nb),
				}
				nn := node{val: st.val + gain, t: nt, buf: nb}
				if old, ok := next[nk]; !ok || nn.better(old) {
					next[nk] = nn
				}
			}
		}
		frontier = prune(next, qOf, s.Weights.Lambda, noPrev)
	}

	best := math.Inf(-1)
	for _, n := range frontier {
		if n.val > best {
			best = n.val
		}
	}
	return best
}

// actions returns the rate set the optimum may choose from.
func (s *Solver) actions() []float64 {
	if s.DenseLevels <= 0 {
		return append([]float64(nil), s.Manifest.Ladder...)
	}
	return model.UniformLadder(s.DenseLevels, s.Manifest.Ladder.Min(), s.Manifest.Ladder.Max())
}

// prune removes dominated states within each tBin group. State A dominates
// state B at the same trace position when A has at least as much buffer and
// A's value lead covers the worst-case extra switching penalty of adopting
// A's future plan from B's previous rate: by the triangle inequality that
// extra cost is at most λ·|q(prevA) − q(prevB)|.
func prune(frontier map[stateKey]node, qOf []float64, lambda float64, noPrev int) map[stateKey]node {
	type entry struct {
		prev int
		bBin int16
		n    node
	}
	groups := make(map[int32][]entry)
	for k, n := range frontier {
		groups[k.tBin] = append(groups[k.tBin], entry{k.prev, k.bBin, n})
	}
	qp := func(p int) float64 {
		if p == noPrev {
			return math.Inf(1) // "no previous chunk" is never interchangeable
		}
		return qOf[p]
	}
	out := make(map[stateKey]node, len(frontier))
	for tBin, entries := range groups {
		// Buffer-descending so a kept state can only be dominated by an
		// earlier (higher-buffer) kept state. The small exact-time spread
		// within a bin is treated as equal, an approximation inherent to
		// the binning.
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].n.buf != entries[j].n.buf { //lint:allow floateq deterministic sort key; exact compare is the tie-break contract
				return entries[i].n.buf > entries[j].n.buf
			}
			if entries[i].n.val != entries[j].n.val { //lint:allow floateq deterministic sort key; exact compare is the tie-break contract
				return entries[i].n.val > entries[j].n.val
			}
			if entries[i].prev != entries[j].prev {
				return entries[i].prev < entries[j].prev
			}
			return entries[i].n.t < entries[j].n.t
		})
		kept := entries[:0]
		for _, e := range entries {
			dominated := false
			for _, d := range kept {
				var gap float64
				if d.prev != e.prev {
					a, b := qp(d.prev), qp(e.prev)
					if math.IsInf(a, 1) || math.IsInf(b, 1) {
						continue
					}
					gap = lambda * math.Abs(a-b)
				}
				if d.n.val-e.n.val >= gap {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, e)
				out[stateKey{prev: e.prev, tBin: tBin, bBin: e.bBin}] = e.n
			}
		}
	}
	return out
}
