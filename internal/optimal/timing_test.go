package optimal

import (
	"testing"
	"time"

	"mpcdash/internal/model"
	"mpcdash/internal/trace"
)

func TestSolveTiming(t *testing.T) {
	m := model.EnvivioManifest()
	s, err := NewSolver(m, model.Balanced, model.QIdentity, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.GenFCC(7, m.Duration()+60)
	start := time.Now()
	v := s.Solve(tr)
	t.Logf("dense solve: %.3fs, QoE(OPT)=%.0f", time.Since(start).Seconds(), v)
}
