package optimal

import (
	"math"
	"testing"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

func newTestSolver(t *testing.T, m *model.Manifest) *Solver {
	t.Helper()
	s, err := NewSolver(m, model.Balanced, model.QIdentity, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil, model.Balanced, model.QIdentity, 30); err == nil {
		t.Error("expected error for nil manifest")
	}
	if _, err := NewSolver(model.EnvivioManifest(), model.Balanced, model.QIdentity, 0); err == nil {
		t.Error("expected error for zero buffer")
	}
	s, err := NewSolver(model.EnvivioManifest(), model.Balanced, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quality == nil {
		t.Error("nil quality should default")
	}
}

// TestSolveConstantAmple: on an ample constant link the optimum is easy to
// reason about — play the top bitrate throughout with no rebuffering, so
// QoE ≈ K·Rmax − µs·Ts, minus at most one ladder climb.
func TestSolveConstantAmple(t *testing.T) {
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.FromRates("ample", 10, []float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, m)
	s.DenseLevels = 0 // discrete ladder for an exact statement
	got := s.Solve(tr)
	// Upper bound: 20 top-rate chunks and free startup.
	upper := 20.0 * 3000
	// Achievable: Ts covering the first chunk's download (12000/20000 =
	// 0.6 s, grid rounds to 1 s), then top rate forever.
	lower := 20.0*3000 - model.Balanced.MuS*1 - 1e-6
	if got > upper+1e-6 || got < lower-3000 {
		t.Errorf("Solve = %v, want in [%v, %v]", got, lower, upper)
	}
}

// TestSolveDominatesOnlineControllers: the offline optimum must (up to the
// small quantization tolerance) upper-bound what any online algorithm
// achieves on the same trace — the defining property of the normalizer.
func TestSolveDominatesOnlineControllers(t *testing.T) {
	m := model.EnvivioManifest()
	s := newTestSolver(t, m)
	algs := []abr.Factory{abr.NewRB(1), abr.NewBB(5, 10), abr.NewFESTIVE(12, 1, 5)}
	for seed := int64(0); seed < 2; seed++ {
		for _, gen := range []func(int64, float64) *trace.Trace{trace.GenFCC, trace.GenHSDPA} {
			tr := gen(seed, m.Duration()+120)
			opt := s.Solve(tr)
			for _, factory := range algs {
				res, err := sim.Run(m, tr, factory(m), predictor.NewHarmonicMean(5), sim.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				qoe := res.QoE(model.Balanced, model.QIdentity)
				// Tolerance: binning can cost the DP a small sliver.
				if qoe > opt+0.02*math.Abs(opt)+3000 {
					t.Errorf("trace %s: %s QoE %v exceeds offline optimum %v",
						tr.Name, res.Algorithm, qoe, opt)
				}
			}
		}
	}
}

// TestDiscreteBelowRelaxed: the continuous-bitrate relaxation upper-bounds
// the discrete-ladder optimum (footnote 6's rationale).
func TestDiscreteBelowRelaxed(t *testing.T) {
	m := model.EnvivioManifest()
	tr := trace.GenFCC(12, m.Duration()+60)
	discrete := newTestSolver(t, m)
	discrete.DenseLevels = 0
	relaxed := newTestSolver(t, m)
	relaxed.DenseLevels = 21
	d, r := discrete.Solve(tr), relaxed.Solve(tr)
	if d > r+0.01*math.Abs(r)+1500 {
		t.Errorf("discrete optimum %v exceeds relaxation %v", d, r)
	}
}

// TestSolveDeterministic: same trace, same answer.
func TestSolveDeterministic(t *testing.T) {
	m := model.EnvivioManifest()
	tr := trace.GenHSDPA(5, m.Duration()+60)
	s := newTestSolver(t, m)
	if a, b := s.Solve(tr), s.Solve(tr); a != b {
		t.Errorf("Solve not deterministic: %v vs %v", a, b)
	}
}

// TestSolveDeadTrace: an all-zero trace has no feasible plan.
func TestSolveDeadTrace(t *testing.T) {
	m := model.EnvivioManifest()
	tr, err := trace.FromRates("dead", 10, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSolver(t, m)
	if got := s.Solve(tr); !math.IsInf(got, -1) {
		t.Errorf("dead-trace optimum = %v, want -Inf", got)
	}
}

// TestFinerBinsDoNotDegrade: refining the grids should track the same
// optimum (within tolerance), sanity-checking convergence.
func TestFinerBinsDoNotDegrade(t *testing.T) {
	m := model.EnvivioManifest()
	tr := trace.GenFCC(21, m.Duration()+60)
	coarse := newTestSolver(t, m)
	coarse.TimeBin, coarse.BufferBin = 2, 2
	fine := newTestSolver(t, m)
	fine.TimeBin, fine.BufferBin = 0.5, 0.5
	c, f := coarse.Solve(tr), fine.Solve(tr)
	if math.Abs(c-f) > 0.05*math.Abs(f)+3000 {
		t.Errorf("coarse %v and fine %v solutions diverge", c, f)
	}
}

// TestSolvePlanConsistency: the reconstructed plan's value matches Solve,
// replaying the plan through the exact dynamics reproduces the claimed QoE
// (within quantization tolerance), and the schedule is well-formed.
func TestSolvePlanConsistency(t *testing.T) {
	m, err := model.NewCBRManifest(model.EnvivioLadder(), 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(m, model.Balanced, model.QIdentity, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.GenFCC(31, m.Duration()+60)
	plan := s.SolvePlan(tr)
	value := s.Solve(tr)
	if math.Abs(plan.QoE-value) > 1e-6 {
		t.Errorf("plan QoE %v != Solve %v", plan.QoE, value)
	}
	if len(plan.Rates) != m.ChunkCount {
		t.Fatalf("plan has %d rates, want %d", len(plan.Rates), m.ChunkCount)
	}
	for i, r := range plan.Rates {
		if r < m.Ladder.Min()-1e-9 || r > m.Ladder.Max()+1e-9 {
			t.Errorf("rate %d = %v outside [Rmin, Rmax]", i, r)
		}
	}
	if plan.StartupDelay < 0 || plan.StartupDelay > 30 {
		t.Errorf("startup = %v", plan.StartupDelay)
	}

	// Replay with exact (unquantized) dynamics.
	buffer := plan.StartupDelay
	tm := 0.0
	qoe := -model.Balanced.MuS * plan.StartupDelay
	prevRate := math.NaN()
	for k, rate := range plan.Rates {
		size := m.ChunkDuration * rate * m.SizeMultiplier(k)
		dl := tr.DownloadTime(tm, size)
		rebuffer := math.Max(dl-buffer, 0)
		afterDrain := math.Max(buffer-dl, 0) + m.ChunkDuration
		wait := math.Max(afterDrain-30, 0)
		buffer = afterDrain - wait
		tm += dl + wait
		qoe += rate - model.Balanced.Mu*rebuffer
		if !math.IsNaN(prevRate) {
			qoe -= model.Balanced.Lambda * math.Abs(rate-prevRate)
		}
		prevRate = rate
	}
	// Quantization means replay and DP value differ slightly; they must
	// agree to within a few percent.
	if math.Abs(qoe-plan.QoE) > 0.05*math.Abs(plan.QoE)+3000 {
		t.Errorf("replayed QoE %v far from plan QoE %v", qoe, plan.QoE)
	}
}

func TestSolvePlanDeadTrace(t *testing.T) {
	m := model.EnvivioManifest()
	s, err := NewSolver(m, model.Balanced, model.QIdentity, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.FromRates("dead", 10, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	plan := s.SolvePlan(tr)
	if !math.IsInf(plan.QoE, -1) || plan.Rates != nil {
		t.Errorf("dead-trace plan = %+v, want infeasible", plan)
	}
}
