// Package mpd provides a minimal DASH Media Presentation Description: the
// XML manifest the HTTP emulation serves and the client parses to discover
// the bitrate ladder, chunk duration and — crucially for MPC — per-chunk
// sizes. Sec 6 notes the MPEG-DASH standard does not mandate reporting
// chunk sizes in the manifest; we expose them through a SegmentSizes
// extension element, implementing exactly the amendment the paper argues
// the specification needs.
package mpd

import (
	"encoding/xml"
	"fmt"
	"strings"

	"mpcdash/internal/model"
)

// MPD is the root manifest document (a pragmatic subset of ISO/IEC 23009-1).
type MPD struct {
	XMLName              xml.Name `xml:"MPD"`
	Type                 string   `xml:"type,attr"`
	MediaPresentationDur string   `xml:"mediaPresentationDuration,attr"`
	MinBufferTime        string   `xml:"minBufferTime,attr"`
	Period               Period   `xml:"Period"`
}

// Period holds the single adaptation set of the test video.
type Period struct {
	AdaptationSet AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet groups the representations (bitrate levels).
type AdaptationSet struct {
	MimeType        string           `xml:"mimeType,attr"`
	SegmentDuration float64          `xml:"segmentDurationSeconds,attr"`
	SegmentCount    int              `xml:"segmentCount,attr"`
	Representations []Representation `xml:"Representation"`
}

// Representation is one bitrate level with its media URL template and the
// per-chunk sizes extension.
type Representation struct {
	ID           string `xml:"id,attr"`
	Bandwidth    int    `xml:"bandwidth,attr"` // bits per second
	MediaPattern string `xml:"media,attr"`     // e.g. "video/600/$Number$.m4s"
	SegmentSizes string `xml:"SegmentSizes"`   // space-separated bytes per chunk
}

// FromManifest renders a model.Manifest as an MPD, with $Number$ media
// templates rooted at basePath.
func FromManifest(m *model.Manifest, basePath string) *MPD {
	doc := &MPD{
		Type:                 "static",
		MediaPresentationDur: fmt.Sprintf("PT%.0fS", m.Duration()),
		MinBufferTime:        fmt.Sprintf("PT%.0fS", m.ChunkDuration),
		Period: Period{AdaptationSet: AdaptationSet{
			MimeType:        "video/mp4",
			SegmentDuration: m.ChunkDuration,
			SegmentCount:    m.ChunkCount,
		}},
	}
	for lvl, kbps := range m.Ladder {
		sizes := make([]string, m.ChunkCount)
		for k := 0; k < m.ChunkCount; k++ {
			sizes[k] = fmt.Sprintf("%d", ChunkBytes(m, k, lvl))
		}
		doc.Period.AdaptationSet.Representations = append(doc.Period.AdaptationSet.Representations, Representation{
			ID:           fmt.Sprintf("%d", lvl),
			Bandwidth:    int(kbps * 1000),
			MediaPattern: fmt.Sprintf("%s/%d/$Number$.m4s", strings.TrimSuffix(basePath, "/"), lvl),
			SegmentSizes: strings.Join(sizes, " "),
		})
	}
	return doc
}

// ChunkBytes converts a manifest chunk size (kilobits) to whole bytes as
// served on the wire.
func ChunkBytes(m *model.Manifest, chunk, level int) int {
	return int(m.ChunkSize(chunk, level) * 1000 / 8)
}

// Encode renders the document as XML.
func (d *MPD) Encode() ([]byte, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("mpd: encode: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode parses an MPD document.
func Decode(data []byte) (*MPD, error) {
	var d MPD
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("mpd: decode: %w", err)
	}
	if len(d.Period.AdaptationSet.Representations) == 0 {
		return nil, fmt.Errorf("mpd: no representations in manifest")
	}
	return &d, nil
}

// LadderKbps extracts the bitrate ladder in kbps, in document order.
func (d *MPD) LadderKbps() []float64 {
	reps := d.Period.AdaptationSet.Representations
	out := make([]float64, len(reps))
	for i, r := range reps {
		out[i] = float64(r.Bandwidth) / 1000
	}
	return out
}

// SegmentBytes parses the per-chunk byte sizes of representation lvl.
func (d *MPD) SegmentBytes(lvl int) ([]int, error) {
	reps := d.Period.AdaptationSet.Representations
	if lvl < 0 || lvl >= len(reps) {
		return nil, fmt.Errorf("mpd: representation %d out of range [0,%d)", lvl, len(reps))
	}
	fields := strings.Fields(reps[lvl].SegmentSizes)
	if len(fields) != d.Period.AdaptationSet.SegmentCount {
		return nil, fmt.Errorf("mpd: representation %d lists %d sizes, manifest declares %d segments",
			lvl, len(fields), d.Period.AdaptationSet.SegmentCount)
	}
	out := make([]int, len(fields))
	for i, f := range fields {
		var v int
		if _, err := fmt.Sscanf(f, "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("mpd: representation %d segment %d has bad size %q", lvl, i, f)
		}
		out[i] = v
	}
	return out, nil
}
