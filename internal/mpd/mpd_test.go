package mpd

import (
	"strings"
	"testing"

	"mpcdash/internal/model"
)

func TestRoundTrip(t *testing.T) {
	m := model.EnvivioManifest()
	doc := FromManifest(m, "/video")
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<MPD") {
		t.Error("missing MPD element")
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Period.AdaptationSet.SegmentCount; got != 65 {
		t.Errorf("SegmentCount = %d, want 65", got)
	}
	if got := back.Period.AdaptationSet.SegmentDuration; got != 4 {
		t.Errorf("SegmentDuration = %v, want 4", got)
	}
	ladder := back.LadderKbps()
	want := model.EnvivioLadder()
	if len(ladder) != len(want) {
		t.Fatalf("ladder size = %d, want %d", len(ladder), len(want))
	}
	for i := range want {
		if ladder[i] != want[i] {
			t.Errorf("ladder[%d] = %v, want %v", i, ladder[i], want[i])
		}
	}
}

func TestSegmentBytes(t *testing.T) {
	m := model.EnvivioManifest()
	doc := FromManifest(m, "/video")
	for lvl := 0; lvl < m.Levels(); lvl++ {
		sizes, err := doc.SegmentBytes(lvl)
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		if len(sizes) != m.ChunkCount {
			t.Fatalf("level %d: %d sizes", lvl, len(sizes))
		}
		for k, b := range sizes {
			if want := ChunkBytes(m, k, lvl); b != want {
				t.Errorf("level %d chunk %d: %d bytes, want %d", lvl, k, b, want)
			}
		}
	}
	if _, err := doc.SegmentBytes(-1); err == nil {
		t.Error("negative level should fail")
	}
	if _, err := doc.SegmentBytes(99); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestChunkBytes(t *testing.T) {
	m := model.EnvivioManifest()
	// 4 s at 350 kbps = 1400 kbit = 175 000 bytes.
	if got := ChunkBytes(m, 0, 0); got != 175000 {
		t.Errorf("ChunkBytes = %d, want 175000", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not xml at all <")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Decode([]byte("<MPD></MPD>")); err == nil {
		t.Error("manifest without representations should fail")
	}
}

func TestVBRSizesSurviveManifest(t *testing.T) {
	m, err := model.NewVBRManifest(model.EnvivioLadder(), 20, 4, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	doc := FromManifest(m, "/video")
	sizes, err := doc.SegmentBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	var distinct bool
	for k := 1; k < len(sizes); k++ {
		if sizes[k] != sizes[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("VBR manifest should produce varying chunk sizes")
	}
}

func TestMediaPattern(t *testing.T) {
	m := model.EnvivioManifest()
	doc := FromManifest(m, "/video/")
	pat := doc.Period.AdaptationSet.Representations[1].MediaPattern
	if pat != "/video/1/$Number$.m4s" {
		t.Errorf("MediaPattern = %q", pat)
	}
}
