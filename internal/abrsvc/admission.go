package abrsvc

import (
	"context"
	"errors"
	"math"
	"time"

	"mpcdash/internal/obs"
)

// errShed marks a decide request refused by admission control: the queue
// was full on arrival, or the request aged out of the queue before an
// in-flight slot freed up. The handler maps it to 429 + Retry-After.
var errShed = errors.New("abrsvc: overloaded, request shed")

// admission is the decide-path overload valve: a max-in-flight semaphore
// bounds concurrently executing decisions, a bounded queue absorbs bursts,
// and anything beyond queue capacity — or queued longer than the wait
// budget — is shed immediately. Shedding keeps the in-flight latency
// distribution flat under overload instead of letting every request's
// latency grow without bound (the collapse mode of an unbounded accept
// loop).
type admission struct {
	sem   chan struct{} // in-flight slots
	queue chan struct{} // waiter slots
	wait  time.Duration

	shed     *obs.Counter
	inflight *obs.Gauge
	queued   *obs.Gauge
}

func newAdmission(maxInFlight, queueDepth int, wait time.Duration, reg *obs.Registry) *admission {
	a := &admission{
		sem:   make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, queueDepth),
		wait:  wait,
	}
	a.shed = reg.Counter(MetricShedTotal, "Decide requests shed by admission control (429).")
	a.inflight = reg.Gauge(MetricInflight, "Decide requests currently executing.")
	a.queued = reg.Gauge(MetricQueued, "Decide requests waiting for an in-flight slot.")
	return a
}

// acquire claims an in-flight slot, queuing up to the wait budget. It
// returns the release callback on success, errShed when the request is
// shed, or ctx's error when the caller went away first. Every path that
// reserved a queue slot releases it before returning, so a cancelled or
// shed waiter leaks nothing.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return a.release, nil
	default:
	}
	// No free slot: reserve a queue position or shed on the spot.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Inc()
		return nil, errShed
	}
	a.queued.Add(1)
	timer := time.NewTimer(a.wait)
	defer func() {
		timer.Stop()
		<-a.queue
		a.queued.Add(-1)
	}()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return a.release, nil
	case <-timer.C:
		a.shed.Inc()
		return nil, errShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	<-a.sem
	a.inflight.Add(-1)
}

// retryAfterSeconds is the Retry-After hint sent with a 429: the queue
// wait budget rounded up to whole seconds (the header's granularity),
// never less than 1.
func (a *admission) retryAfterSeconds() int {
	s := int(math.Ceil(a.wait.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
