package abrsvc

import (
	"bytes"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/fuzzcorpus"
	"mpcdash/internal/model"
)

// The /v1 endpoints decode attacker-controlled JSON before any
// authentication exists in front of the service, so the decode→validate
// path must be total: every byte string either fails readJSON/resolveConfig
// with an error or flows through the same constructors the handler calls —
// never a panic, never a decision outside the session's ladder.

// sessionRequestSeeds is the committed seed corpus for
// FuzzSessionRequestJSON: a valid registration in every shape the API
// documents, plus the rejection edges.
func sessionRequestSeeds() [][]byte {
	return [][]byte{
		[]byte(`{}`),
		[]byte(`{"id":"viewer-1","config":{}}`),
		[]byte(`{"config":{"ladder_kbps":[254,507,1254],"chunks":65,"chunk_sec":4,"weights":"balanced","buffer_max_sec":30,"horizon":5,"robust":true,"window":5,"link_group":"cell-7"}}`),
		[]byte(`{"config":{"weights":"avoid_rebuffering"}}`),
		[]byte(`{"config":{"ladder_kbps":[1000,500]}}`), // not ascending
		[]byte(`{"config":{"chunks":-1}}`),              // negative
		[]byte(`{"config":{"unknown_knob":1}}`),         // DisallowUnknownFields
		[]byte(`{"config":{"chunk_sec":1e309}}`),        // overflows float64
		[]byte(`{"config":{"ladder_kbps":[null]}}`),     // type mismatch
		[]byte(`{`), // malformed
	}
}

// FuzzSessionRequestJSON drives the registration decode path — readJSON,
// resolveConfig, manifest and optimizer construction — on arbitrary bodies.
// It stops short of the table build (the only step whose cost depends on
// config geometry); everything the handler validates before it runs here.
func FuzzSessionRequestJSON(f *testing.F) {
	for _, s := range sessionRequestSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := httptest.NewRequest("POST", "/v1/session", bytes.NewReader(data))
		var req SessionRequest
		if err := readJSON(r, &req); err != nil {
			return
		}
		rc, err := resolveConfig(req.Config)
		if err != nil {
			return
		}
		// resolveConfig's contract: defaults applied, everything positive.
		if rc.chunks <= 0 || rc.chunkSec < 0 || rc.bufferMax < 0 || rc.horizon <= 0 || rc.window <= 0 || len(rc.ladder) == 0 {
			t.Fatalf("resolveConfig accepted a config it should normalize or reject: %+v", rc)
		}
		manifest, err := model.NewCBRManifest(rc.ladder, rc.chunks, rc.chunkSec)
		if err != nil {
			return // handler turns this into 400
		}
		if _, err := core.NewOptimizer(manifest, rc.weights, model.QIdentity, rc.bufferMax, rc.horizon); err != nil {
			return // handler turns this into 400
		}
	})
}

// fuzzSession builds one decide-ready session around a tiny hand-built
// table, bypassing the optimizer enumeration.
func fuzzSession(t *testing.T) *session {
	t.Helper()
	ladder := model.Ladder{100, 500, 1000}
	spec := fastmpc.BinSpec{BufferBins: 4, BufferMax: 30, RateBins: 3, RateMin: 10, RateMax: 2000}
	full := &fastmpc.Table{Spec: spec, Levels: len(ladder), Entries: make([]uint8, spec.BufferBins*len(ladder)*spec.RateBins)}
	for i := range full.Entries {
		full.Entries[i] = uint8(i % len(ladder))
	}
	rc, err := resolveConfig(SessionConfig{LadderKbps: []float64(ladder)})
	if err != nil {
		t.Fatal(err)
	}
	return newSession("fuzz", 1, rc, fastmpc.Compress(full))
}

// decideRequestSeeds is the committed seed corpus for FuzzDecideRequestJSON.
func decideRequestSeeds() [][]byte {
	return [][]byte{
		[]byte(`{"session":"fuzz","chunk":0,"buffer":0,"prev_level":-1}`),
		[]byte(`{"session":"fuzz","chunk":1,"buffer":4,"prev_level":2,"throughput_samples":[2400]}`),
		[]byte(`{"session":"fuzz","chunk":7,"buffer":-3,"prev_level":99,"throughput_samples":[-1,0,1e308]}`),
		[]byte(`{"session":"fuzz","chunk":-1,"buffer":1e309}`), // buffer overflows float64
		[]byte(`{"throughput_samples":[null]}`),
		[]byte(`{"session":"fuzz","extra":true}`), // DisallowUnknownFields
		[]byte(`[]`),
	}
}

// FuzzDecideRequestJSON drives the decide decode path and the controller
// step behind it on arbitrary bodies: whatever JSON decodes, the decision
// must stay inside the session's ladder and quote the matching bitrate.
func FuzzDecideRequestJSON(f *testing.F) {
	for _, s := range decideRequestSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := httptest.NewRequest("POST", "/v1/decide", bytes.NewReader(data))
		var req DecideRequest
		if err := readJSON(r, &req); err != nil {
			return
		}
		ss := fuzzSession(t)
		for _, share := range []float64{0, 250} {
			resp := ss.decide(&req, share)
			if resp.Level < 0 || resp.Level >= len(ss.ladder) {
				t.Fatalf("decide chose level %d outside ladder of %d", resp.Level, len(ss.ladder))
			}
			if resp.BitrateKbps != ss.ladder[resp.Level] { //lint:allow floateq quoted bitrate must be the ladder entry, bit-exact
				t.Fatalf("decide quoted %v kbps for level %d, ladder says %v", resp.BitrateKbps, resp.Level, ss.ladder[resp.Level])
			}
			if resp.Chunk != req.Chunk || resp.Session != "fuzz" {
				t.Fatalf("decide echoed wrong identity: %+v", resp)
			}
		}
		if s := lastSample(req.ThroughputSamples); s < 0 || math.IsNaN(s) {
			t.Fatalf("lastSample returned non-positive %v", s)
		}
	})
}

// TestFuzzCorpusCommitted keeps the committed seed corpora under
// testdata/fuzz in sync with the seed declarations above.
func TestFuzzCorpusCommitted(t *testing.T) {
	for _, target := range []struct {
		name  string
		seeds [][]byte
	}{
		{"FuzzSessionRequestJSON", sessionRequestSeeds()},
		{"FuzzDecideRequestJSON", decideRequestSeeds()},
	} {
		problems, err := fuzzcorpus.Sync(filepath.Join("testdata", "fuzz", target.name), target.seeds)
		if err != nil {
			t.Fatalf("%s: %v", target.name, err)
		}
		for _, p := range problems {
			t.Errorf("%s: %s", target.name, p)
		}
	}
}
