package abrsvc

import (
	"sort"
	"sync"
)

// groupTable implements the fairness hook: sessions that registered with a
// link group are tracked together, and each decide call can ask for its
// fair share of the group's aggregate observed throughput. This is the
// server-side vantage point the multiplayer HTTP-streaming literature
// argues for — concurrent players behind one bottleneck each overestimate
// their share when probing alone; a coordinator that sees all of them can
// hand each its aggregate/N share instead. The aggregate is the sum of
// every member's most recent throughput sample, divided by the member
// count (members that have not reported yet still consume a share of the
// link, so they stay in the denominator).
type groupTable struct {
	mu sync.Mutex
	m  map[string]*linkGroup
}

type linkGroup struct {
	members map[string]float64 // session id → last reported sample (0 = none yet)
}

func newGroupTable() *groupTable {
	return &groupTable{m: make(map[string]*linkGroup)}
}

// join adds a session to its group, creating the group on first use.
func (g *groupTable) join(group, id string) {
	g.mu.Lock()
	lg := g.m[group]
	if lg == nil {
		lg = &linkGroup{members: make(map[string]float64)}
		g.m[group] = lg
	}
	if _, ok := lg.members[id]; !ok {
		lg.members[id] = 0
	}
	g.mu.Unlock()
}

// observe records the session's latest throughput sample (0 keeps the
// previous one) and returns its fair share of the group aggregate, or 0
// when the group has no observations yet. The aggregate is summed in
// sorted member order so it is a deterministic function of the members'
// samples, not of map iteration order.
func (g *groupTable) observe(group, id string, sample float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	lg := g.m[group]
	if lg == nil {
		return 0
	}
	if sample > 0 {
		lg.members[id] = sample
	}
	ids := make([]string, 0, len(lg.members))
	for member := range lg.members {
		ids = append(ids, member)
	}
	sort.Strings(ids)
	var sum float64
	var reported int
	for _, member := range ids {
		if v := lg.members[member]; v > 0 {
			sum += v
			reported++
		}
	}
	if reported == 0 {
		return 0
	}
	return sum / float64(len(lg.members))
}

// drop removes a session from its group, deleting the group when it
// empties.
func (g *groupTable) drop(group, id string) {
	if group == "" {
		return
	}
	g.mu.Lock()
	if lg := g.m[group]; lg != nil {
		delete(lg.members, id)
		if len(lg.members) == 0 {
			delete(g.m, group)
		}
	}
	g.mu.Unlock()
}

// size reports the member count of a group (0 when absent).
func (g *groupTable) size(group string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if lg := g.m[group]; lg != nil {
		return len(lg.members)
	}
	return 0
}
