package abrsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx response from the service, carrying enough to act
// on it: the HTTP status, the server's error string, and the Retry-After
// hint when the request was shed.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter int // seconds, 0 when the server sent no hint
}

func (e *APIError) Error() string {
	return fmt.Sprintf("abrsvc: server returned %d: %s", e.Status, e.Msg)
}

// IsShed reports whether the request was refused by admission control
// (429) — the one error class where retrying the identical request is the
// intended protocol.
func (e *APIError) IsShed() bool { return e.Status == http.StatusTooManyRequests }

// Client is a typed client for the decision service. Construct with
// NewClient: the zero value has no transport.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:8404"). It owns a dedicated http.Client with an
// explicitly configured transport rather than http.DefaultClient: the
// fleet drives a thousand-session load through one client, and the
// default transport's two idle conns per host would force a fresh TCP
// handshake under nearly every decide call.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// CloseIdle releases the client's pooled connections.
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

// Register creates a session and returns the server's acknowledgement.
func (c *Client) Register(ctx context.Context, req SessionRequest) (SessionResponse, error) {
	var resp SessionResponse
	err := c.post(ctx, "/v1/session", req, &resp)
	return resp, err
}

// Decide requests the next chunk's level. A 429 comes back as an
// *APIError with IsShed() true; use DecideRetry when the caller wants the
// backoff protocol handled.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var resp DecideResponse
	err := c.post(ctx, "/v1/decide", req, &resp)
	return resp, err
}

// DecideRetry is Decide plus the shed protocol: on 429 it backs off
// (5 ms doubling to a 200 ms cap — deterministic, no jitter, so identical
// runs behave identically) and retries up to maxRetries times. Decide
// requests are idempotent by chunk index, so a retry after a lost
// response is safe. Other errors are returned immediately.
func (c *Client) DecideRetry(ctx context.Context, req DecideRequest, maxRetries int) (DecideResponse, error) {
	backoff := 5 * time.Millisecond
	const maxBackoff = 200 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := c.Decide(ctx, req)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || !apiErr.IsShed() || attempt >= maxRetries {
			return resp, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return resp, ctx.Err()
		case <-t.C:
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Delete forgets a session. Deleting an unknown session is an *APIError
// with Status 404.
func (c *Client) Delete(ctx context.Context, session string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/session/"+session, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	return nil
}

// post sends a JSON body and decodes a JSON response into out.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out)
}

// apiError drains a non-2xx response into an *APIError.
func apiError(resp *http.Response) error {
	e := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if s, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = s
		}
	}
	var body ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&body); err == nil && body.Error != "" {
		e.Msg = body.Error
	} else {
		e.Msg = http.StatusText(resp.StatusCode)
	}
	return e
}
