package abrsvc

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// startTestService spins up a service on an httptest server and returns a
// typed client for it. The table registry is private per test so builds
// and stats never leak across tests.
func startTestService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	if cfg.Tables == nil {
		cfg.Tables = fastmpc.NewRegistry()
	}
	svc := New(cfg)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)
	t.Cleanup(c.CloseIdle)
	return svc, c
}

func TestResolveConfigDefaults(t *testing.T) {
	rc, err := resolveConfig(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(rc.ladder), fmt.Sprint(model.EnvivioLadder()); got != want {
		t.Errorf("default ladder = %s, want %s", got, want)
	}
	if rc.chunks != 65 || rc.chunkSec != 4 || rc.bufferMax != 30 || rc.horizon != 5 || rc.window != 5 {
		t.Errorf("paper defaults not applied: %+v", rc)
	}
	if rc.weights != model.Balanced {
		t.Errorf("default weights = %+v, want Balanced", rc.weights)
	}
	if rc, err := resolveConfig(SessionConfig{Weights: "avoid_rebuffering"}); err != nil || rc.weights != model.AvoidRebuffering {
		t.Errorf("avoid_rebuffering preset: weights %+v, err %v", rc.weights, err)
	}
	for _, bad := range []SessionConfig{
		{Weights: "nope"},
		{LadderKbps: []float64{1000, 500}}, // not ascending
		{Chunks: -1},
	} {
		if _, err := resolveConfig(bad); err == nil {
			t.Errorf("resolveConfig(%+v) accepted invalid config", bad)
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, c := startTestService(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Session == "" || reg.Levels != 5 || reg.TableKey == "" {
		t.Fatalf("unexpected registration ack: %+v", reg)
	}

	// A named registration is honoured; repeating it conflicts.
	if _, err := c.Register(ctx, SessionRequest{ID: "viewer-1"}); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.Register(ctx, SessionRequest{ID: "viewer-1"}); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Fatalf("duplicate registration: got %v, want 409", err)
	}

	d0, err := c.Decide(ctx, DecideRequest{Session: reg.Session, Chunk: 0, Buffer: 0, PrevLevel: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d0.Level < 0 || d0.Level >= reg.Levels || d0.Replayed {
		t.Fatalf("chunk 0 decision out of range: %+v", d0)
	}
	d1, err := c.Decide(ctx, DecideRequest{
		Session: reg.Session, Chunk: 1, Buffer: 4, PrevLevel: d0.Level,
		ThroughputSamples: []float64{2400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d1.PredictedKbps != 2400 { //lint:allow floateq harmonic mean of one sample is exact
		t.Errorf("predicted = %v, want 2400 (harmonic mean of one sample)", d1.PredictedKbps)
	}

	// Repeating the chunk index replays the stored decision without
	// feeding the samples to the predictor again.
	replay, err := c.Decide(ctx, DecideRequest{
		Session: reg.Session, Chunk: 1, Buffer: 4, PrevLevel: d0.Level,
		ThroughputSamples: []float64{9999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Replayed || replay.Level != d1.Level {
		t.Fatalf("replay = %+v, want replay of %+v", replay, d1)
	}
	d2, err := c.Decide(ctx, DecideRequest{
		Session: reg.Session, Chunk: 2, Buffer: 8, PrevLevel: d1.Level,
		ThroughputSamples: []float64{2400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.PredictedKbps != 2400 { //lint:allow floateq two equal samples have an exact harmonic mean
		t.Errorf("replayed 9999 leaked into the predictor: predicted = %v, want 2400", d2.PredictedKbps)
	}

	if err := c.Delete(ctx, reg.Session); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(ctx, DecideRequest{Session: reg.Session, Chunk: 3}); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("decide after delete: got %v, want 404", err)
	}
	if err := c.Delete(ctx, reg.Session); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("double delete: got %v, want 404", err)
	}
}

func TestTableSharedAcrossSessions(t *testing.T) {
	tables := fastmpc.NewRegistry()
	_, c := startTestService(t, Config{Tables: tables})
	ctx := context.Background()

	var keys []string
	for i := 0; i < 4; i++ {
		ack, err := c.Register(ctx, SessionRequest{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, ack.TableKey)
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("equal configs got different table keys: %v", keys)
		}
	}
	if st := tables.Stats(); st.Builds != 1 {
		t.Errorf("4 equal registrations built %d tables, want 1", st.Builds)
	}
	// A different config gets its own table.
	ack, err := c.Register(ctx, SessionRequest{Config: SessionConfig{BufferMaxSec: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.TableKey == keys[0] {
		t.Error("different buffer_max_sec produced the same table key")
	}
	if st := tables.Stats(); st.Builds != 2 {
		t.Errorf("distinct config: %d builds, want 2", st.Builds)
	}
}

// svcSimController adapts the decision service into an abr.Controller so a
// service-backed session can be played through sim.Run — the same shape
// the fleet svc backend uses.
type svcSimController struct {
	ctx     context.Context
	c       *Client
	session string
	probe   *probePredictor
	err     error
}

type probePredictor struct{ samples []float64 }

func (p *probePredictor) Name() string            { return "probe" }
func (p *probePredictor) Observe(kbps float64)    { p.samples = append(p.samples, kbps) }
func (p *probePredictor) Predict(n int) []float64 { return nil }

func (s *svcSimController) Name() string { return "svc" }
func (s *svcSimController) Decide(st abr.State) abr.Decision {
	if s.err != nil {
		return abr.Decision{}
	}
	samples := append([]float64(nil), s.probe.samples...)
	s.probe.samples = s.probe.samples[:0]
	resp, err := s.c.Decide(s.ctx, DecideRequest{
		Session: s.session, Chunk: st.Chunk, Buffer: st.Buffer,
		PrevLevel: st.Prev, ThroughputSamples: samples,
	})
	if err != nil {
		s.err = err
		return abr.Decision{}
	}
	return abr.Decision{Level: resp.Level}
}

// TestDecideParityWithLocalController plays the same trace through (a) a
// local in-process FastMPC controller and (b) the decision service, and
// requires chunk-for-chunk identical decisions — the guarantee that makes
// offloading the control plane transparent. Both the plain and the robust
// rule are checked.
func TestDecideParityWithLocalController(t *testing.T) {
	manifest := model.EnvivioManifest()
	rates := make([]float64, 80)
	for i := range rates {
		rates[i] = 400 + 150*float64(i%17) // sweeps 400..2800 kbps
	}
	tr, err := trace.FromRates("parity", 4, rates)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		robust bool
	}{
		{"FastMPC", false},
		{"RobustFastMPC", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var pred predictor.Predictor = predictor.NewHarmonicMean(5)
			if tc.robust {
				pred = predictor.NewErrorTracked(predictor.NewHarmonicMean(5), 5)
			}
			local := fastmpc.NewController(model.Balanced, model.QIdentity, 30, 5, nil, tc.robust, tc.name)(manifest)
			cfg := sim.Config{BufferMax: 30, Horizon: 5, Startup: sim.StartupFirstChunk}
			want, err := sim.Run(manifest, tr, local, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}

			_, c := startTestService(t, Config{})
			ack, err := c.Register(context.Background(), SessionRequest{
				Config: SessionConfig{Robust: tc.robust},
			})
			if err != nil {
				t.Fatal(err)
			}
			probe := &probePredictor{}
			ctrl := &svcSimController{ctx: context.Background(), c: c, session: ack.Session, probe: probe}
			got, err := sim.Run(manifest, tr, ctrl, probe, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ctrl.err != nil {
				t.Fatal(ctrl.err)
			}

			if len(got.Chunks) != len(want.Chunks) {
				t.Fatalf("service session played %d chunks, local %d", len(got.Chunks), len(want.Chunks))
			}
			for k := range want.Chunks {
				if got.Chunks[k].Level != want.Chunks[k].Level {
					t.Fatalf("chunk %d: service chose level %d, local %d",
						k, got.Chunks[k].Level, want.Chunks[k].Level)
				}
			}
		})
	}
}

// TestStoreTTLEvictionFakeClock drives the store's idle eviction on an
// injected clock: no sleeping, exact control over idleness.
func TestStoreTTLEvictionFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	st := newStore(4, time.Minute, 100, clock, nil)

	mk := func(id string) *session { return &session{id: id, lastChunk: -1} }
	for _, id := range []string{"a", "b", "c"} {
		if err := st.put(mk(id)); err != nil {
			t.Fatal(err)
		}
	}

	now = now.Add(30 * time.Second)
	if evicted := st.evictIdle(); len(evicted) != 0 {
		t.Fatalf("evicted %d sessions before the TTL elapsed", len(evicted))
	}

	// Touch "b": its idle clock resets, the others age on.
	if _, ok := st.get("b"); !ok {
		t.Fatal("get(b) missed")
	}
	now = now.Add(45 * time.Second) // a,c idle 75s > TTL; b idle 45s
	evicted := st.evictIdle()
	if len(evicted) != 2 {
		t.Fatalf("evicted %d sessions, want 2 (a and c)", len(evicted))
	}
	for _, ss := range evicted {
		if ss.id == "b" {
			t.Error("evicted the recently used session")
		}
	}
	if st.len() != 1 {
		t.Errorf("store holds %d sessions after eviction, want 1", st.len())
	}
	if _, ok := st.get("a"); ok {
		t.Error("evicted session still resident")
	}

	// Capacity is enforced against the post-eviction count.
	if err := st.put(mk("d")); err != nil {
		t.Fatal(err)
	}
	if err := st.put(mk("d")); err == nil {
		t.Error("duplicate put accepted")
	}
}

func TestServiceJanitorEvictsIdleSessions(t *testing.T) {
	svc, c := startTestService(t, Config{SessionTTL: 50 * time.Millisecond})
	if _, err := c.Register(context.Background(), SessionRequest{ID: "idle"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.Sessions() > 0 && time.Now().Before(deadline) {
		svc.EvictIdle()
		time.Sleep(10 * time.Millisecond)
	}
	if n := svc.Sessions(); n != 0 {
		t.Fatalf("%d sessions resident after TTL, want 0", n)
	}
	if got := svc.Registry().Snapshot()[MetricSessionsEvicted]; got != uint64(1) {
		t.Errorf("%s = %v, want 1", MetricSessionsEvicted, got)
	}
}

// TestShardCountDeterminism runs the same concurrent decide workload
// against stores with different stripe counts and requires identical
// per-session decision sequences: sharding is a contention knob, never a
// behaviour knob. Run under -race this is also the ErrorTracked-under-
// concurrency test — many goroutines updating per-session predictor state
// through the sharded store at once.
func TestShardCountDeterminism(t *testing.T) {
	const sessions, chunks = 24, 20
	sample := func(sess, chunk int) float64 {
		return 500 + 100*float64((sess*31+chunk*17)%40)
	}
	tables := fastmpc.NewRegistry() // shared: table built once across sub-runs

	runAll := func(shards int) [][]int {
		_, c := startTestService(t, Config{Shards: shards, Tables: tables})
		ctx := context.Background()
		out := make([][]int, sessions)
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				ack, err := c.Register(ctx, SessionRequest{ID: fmt.Sprintf("s%d", s), Config: SessionConfig{Robust: s%2 == 1}})
				if err != nil {
					errs[s] = err
					return
				}
				prev := -1
				for k := 0; k < chunks; k++ {
					var samples []float64
					if k > 0 {
						samples = []float64{sample(s, k-1)}
					}
					resp, err := c.Decide(ctx, DecideRequest{
						Session: ack.Session, Chunk: k,
						Buffer:            float64((s + k*7) % 28),
						PrevLevel:         prev,
						ThroughputSamples: samples,
					})
					if err != nil {
						errs[s] = err
						return
					}
					prev = resp.Level
					out[s] = append(out[s], resp.Level)
				}
			}(s)
		}
		wg.Wait()
		for s, err := range errs {
			if err != nil {
				t.Fatalf("session %d: %v", s, err)
			}
		}
		return out
	}

	want := runAll(1)
	for _, shards := range []int{4, 16} {
		got := runAll(shards)
		for s := range want {
			if fmt.Sprint(got[s]) != fmt.Sprint(want[s]) {
				t.Fatalf("shards=%d session %d decisions %v, want %v (shards=1)",
					shards, s, got[s], want[s])
			}
		}
	}
}

// TestOverloadShedding pins the single in-flight slot and verifies the
// valve: one request queues and sheds at the wait deadline, later
// arrivals shed immediately on the full queue, all with 429 +
// Retry-After and counted on the shed metric — and nothing leaks.
func TestOverloadShedding(t *testing.T) {
	base := runtime.NumGoroutine()
	svc, c := startTestService(t, Config{
		MaxInFlight: 1,
		QueueDepth:  1,
		QueueWait:   150 * time.Millisecond,
	})
	hold := make(chan struct{})
	svc.testDecideHold = hold
	ctx := context.Background()
	ack, err := c.Register(ctx, SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	req := DecideRequest{Session: ack.Session, Chunk: 0, PrevLevel: -1}

	// A: takes the in-flight slot and parks inside the handler.
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Decide(ctx, req)
		aDone <- err
	}()
	waitFor(t, func() bool {
		return svc.Registry().Snapshot()[MetricInflight] == float64(1)
	})

	// B: queues, then sheds when the wait budget expires.
	bDone := make(chan error, 1)
	bStart := time.Now()
	go func() {
		_, err := c.Decide(ctx, req)
		bDone <- err
	}()
	waitFor(t, func() bool {
		return svc.Registry().Snapshot()[MetricQueued] == float64(1)
	})

	// C: the queue is full — shed immediately.
	var apiErr *APIError
	if _, err := c.Decide(ctx, req); !errors.As(err, &apiErr) || !apiErr.IsShed() {
		t.Fatalf("queue-full request: got %v, want 429", err)
	}
	if apiErr.RetryAfter < 1 {
		t.Errorf("shed response Retry-After = %d, want >= 1", apiErr.RetryAfter)
	}

	if err := <-bDone; !errors.As(err, &apiErr) || !apiErr.IsShed() {
		t.Fatalf("queued request: got %v, want 429 after the wait budget", err)
	} else if waited := time.Since(bStart); waited > 5*time.Second {
		t.Errorf("queued request shed after %v, want within the queue deadline", waited)
	}

	// D: a queued caller that gives up releases its queue slot.
	dctx, cancel := context.WithCancel(ctx)
	dDone := make(chan error, 1)
	go func() {
		_, err := c.Decide(dctx, req)
		dDone <- err
	}()
	waitFor(t, func() bool {
		return svc.Registry().Snapshot()[MetricQueued] == float64(1)
	})
	cancel()
	<-dDone
	waitFor(t, func() bool {
		return svc.Registry().Snapshot()[MetricQueued] == float64(0)
	})

	close(hold) // release A
	if err := <-aDone; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
	snap := svc.Registry().Snapshot()
	if shed := snap[MetricShedTotal]; shed != uint64(2) {
		t.Errorf("%s = %v, want 2 (one queue-full, one wait-expired)", MetricShedTotal, shed)
	}
	if dec := snap[MetricDecisionsTotal]; dec != uint64(1) {
		t.Errorf("%s = %v, want 1 (only the held request decided)", MetricDecisionsTotal, dec)
	}

	// Nothing left behind: transports idle, no handler goroutines pinned.
	c.CloseIdle()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+3 })
}

// waitFor polls cond for up to 5 s; the enclosing test fails if it never
// holds. Used for cross-goroutine state the test cannot block on directly.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true within 5s")
}

// TestGracefulDrain verifies Server.Shutdown: health flips to draining,
// the in-flight decide completes with 200, and Shutdown only returns once
// it has.
func TestGracefulDrain(t *testing.T) {
	svc := New(Config{Tables: fastmpc.NewRegistry()})
	hold := make(chan struct{})
	svc.testDecideHold = hold
	srv, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL())
	defer c.CloseIdle()
	ctx := context.Background()
	ack, err := c.Register(ctx, SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}

	decideDone := make(chan error, 1)
	go func() {
		_, err := c.Decide(ctx, DecideRequest{Session: ack.Session, Chunk: 0, PrevLevel: -1})
		decideDone <- err
	}()
	waitFor(t, func() bool {
		return svc.Registry().Snapshot()[MetricInflight] == float64(1)
	})

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()
	waitFor(t, func() bool { return svc.draining.Load() })
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a decide was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(hold)
	if err := <-decideDone; err != nil {
		t.Fatalf("in-flight decide failed across Shutdown: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestFairnessShare checks the link-group hook end to end: two sessions
// on one bottleneck each get aggregate/2, and the cap only binds when it
// is below the session's own forecast.
func TestFairnessShare(t *testing.T) {
	_, c := startTestService(t, Config{Fairness: true})
	ctx := context.Background()
	cfg := SessionConfig{LinkGroup: "cell-7"}
	a, err := c.Register(ctx, SessionRequest{ID: "a", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Register(ctx, SessionRequest{ID: "b", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// Both report once so the group aggregate is 8000+2000 over 2 members.
	if _, err := c.Decide(ctx, DecideRequest{Session: a.Session, Chunk: 0, PrevLevel: -1, ThroughputSamples: []float64{8000}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(ctx, DecideRequest{Session: b.Session, Chunk: 0, PrevLevel: -1, ThroughputSamples: []float64{2000}}); err != nil {
		t.Fatal(err)
	}

	// A's own forecast (8000) exceeds its fair share (5000): capped.
	da, err := c.Decide(ctx, DecideRequest{Session: a.Session, Chunk: 1, Buffer: 10, PrevLevel: 0, ThroughputSamples: []float64{8000}})
	if err != nil {
		t.Fatal(err)
	}
	if da.FairShareKbps != 5000 { //lint:allow floateq (8000+2000)/2 is exact in binary
		t.Errorf("session a fair share = %v, want 5000", da.FairShareKbps)
	}
	// B's forecast (2000) is under the share: the cap must not bind.
	db, err := c.Decide(ctx, DecideRequest{Session: b.Session, Chunk: 1, Buffer: 10, PrevLevel: 0, ThroughputSamples: []float64{2000}})
	if err != nil {
		t.Fatal(err)
	}
	if db.FairShareKbps != 0 { //lint:allow floateq 0 is the "cap did not bind" sentinel
		t.Errorf("session b fair share = %v, want 0 (cap not binding)", db.FairShareKbps)
	}

	// Departure shrinks the group: the lone survivor gets the whole link.
	if err := c.Delete(ctx, a.Session); err != nil {
		t.Fatal(err)
	}
	db2, err := c.Decide(ctx, DecideRequest{Session: b.Session, Chunk: 2, Buffer: 10, PrevLevel: 0, ThroughputSamples: []float64{2000}})
	if err != nil {
		t.Fatal(err)
	}
	if db2.FairShareKbps != 0 { //lint:allow floateq 0 is the "cap did not bind" sentinel
		t.Errorf("sole group member capped at %v, want uncapped", db2.FairShareKbps)
	}
}

// TestDecisionEventsReachSink verifies the obs wiring: one DecisionEvent
// per fresh decision, none for replays.
func TestDecisionEventsReachSink(t *testing.T) {
	sink := &captureSink{}
	_, c := startTestService(t, Config{Sink: sink})
	ctx := context.Background()
	ack, err := c.Register(ctx, SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, 1, 1} { // the second 1 is a replay
		if _, err := c.Decide(ctx, DecideRequest{Session: ack.Session, Chunk: chunk, PrevLevel: -1}); err != nil {
			t.Fatal(err)
		}
	}
	evs := sink.events()
	if len(evs) != 2 {
		t.Fatalf("sink saw %d events, want 2 (replays are not decisions)", len(evs))
	}
	if evs[0].Algorithm != "FastMPC" || evs[0].Chunk != 0 || evs[1].Chunk != 1 {
		t.Errorf("unexpected event stream: %+v", evs)
	}
}

type captureSink struct {
	mu  sync.Mutex
	evs []obs.DecisionEvent
}

func (s *captureSink) Decision(ev obs.DecisionEvent) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}
func (s *captureSink) Close() error { return nil }
func (s *captureSink) events() []obs.DecisionEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.DecisionEvent(nil), s.evs...)
}
