package abrsvc

import (
	"fmt"
	"sync"
	"time"

	"mpcdash/internal/obs"
)

// store is the sharded in-memory session table. Shards are mutex-striped
// so decide traffic for unrelated sessions never contends on one lock,
// and each shard owns its sessions' idle timestamps. The clock is
// injected (the service wires the wall clock, tests a fake), which keeps
// this file free of wall-clock reads and the TTL logic testable without
// sleeping.
type store struct {
	shards []storeShard
	ttl    time.Duration
	max    int
	now    func() time.Time

	count sync.Mutex // guards total across put/delete/evict
	total int

	gSessions *obs.Gauge
	cCreated  *obs.Counter
	cEvicted  *obs.Counter
}

type storeShard struct {
	mu sync.Mutex
	m  map[string]*session
}

// newStore builds a store with the given stripe count, idle TTL, capacity
// and clock.
func newStore(shards int, ttl time.Duration, max int, now func() time.Time, reg *obs.Registry) *store {
	st := &store{
		shards: make([]storeShard, shards),
		ttl:    ttl,
		max:    max,
		now:    now,
	}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*session)
	}
	st.gSessions = reg.Gauge(MetricSessions, "Sessions currently resident in the store.")
	st.cCreated = reg.Counter(MetricSessionsCreated, "Sessions registered since start.")
	st.cEvicted = reg.Counter(MetricSessionsEvicted, "Idle sessions removed by TTL eviction.")
	return st
}

// shardFor stripes a session ID onto its shard by FNV-1a. The hash is
// inlined over the string: hash/fnv's New32a + Write([]byte(id)) costs two
// heap allocations per decide request, which this function — on the path
// between readJSON and the table lookup — is not allowed to pay.
//
//mpc:noalloc
func (st *store) shardFor(id string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.shards[h%uint32(len(st.shards))]
}

// put registers a session, enforcing capacity and ID uniqueness.
func (st *store) put(ss *session) error {
	st.count.Lock()
	if st.total >= st.max {
		st.count.Unlock()
		return fmt.Errorf("abrsvc: session store at capacity (%d resident)", st.max)
	}
	st.total++
	st.count.Unlock()

	sh := st.shardFor(ss.id)
	sh.mu.Lock()
	if _, dup := sh.m[ss.id]; dup {
		sh.mu.Unlock()
		st.count.Lock()
		st.total--
		st.count.Unlock()
		return fmt.Errorf("abrsvc: session %q already registered", ss.id)
	}
	ss.lastUsed = st.now().UnixNano()
	sh.m[ss.id] = ss
	sh.mu.Unlock()

	st.cCreated.Inc()
	st.gSessions.Add(1)
	return nil
}

// get returns the session and refreshes its idle timestamp.
func (st *store) get(id string) (*session, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	ss, ok := sh.m[id]
	if ok {
		ss.lastUsed = st.now().UnixNano()
	}
	sh.mu.Unlock()
	return ss, ok
}

// delete removes a session, reporting whether it was resident.
func (st *store) delete(id string) (*session, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	ss, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		st.count.Lock()
		st.total--
		st.count.Unlock()
		st.gSessions.Add(-1)
	}
	return ss, ok
}

// len reports the resident session count.
func (st *store) len() int {
	st.count.Lock()
	defer st.count.Unlock()
	return st.total
}

// evictIdle removes every session idle longer than the TTL, returning the
// evicted sessions so the caller can detach them from their link groups.
// Each shard is swept under its own lock; a decide request racing the
// sweep either refreshes the timestamp first (and survives) or finds the
// session gone (404, the same outcome as arriving after expiry).
func (st *store) evictIdle() []*session {
	cutoff := st.now().Add(-st.ttl).UnixNano()
	var evicted []*session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, ss := range sh.m {
			if ss.lastUsed < cutoff {
				delete(sh.m, id)
				evicted = append(evicted, ss)
			}
		}
		sh.mu.Unlock()
	}
	if n := len(evicted); n > 0 {
		st.count.Lock()
		st.total -= n
		st.count.Unlock()
		st.cEvicted.Add(uint64(n))
		st.gSessions.Add(-float64(n))
	}
	return evicted
}
