package abrsvc

import (
	"fmt"
	"strings"

	"mpcdash/internal/model"
)

// The wire types of the versioned /v1 JSON API. Field names are frozen:
// changing them is an API version bump, not an edit.

// SessionConfig is everything a registration must pin down for the service
// to reproduce the player's decision problem: the video manifest geometry,
// the QoE preference preset, and the player configuration. Sessions whose
// resolved configs are equal share one FastMPC decision table through the
// content-addressed registry.
type SessionConfig struct {
	// LadderKbps is the bitrate ladder, ascending kbps. Empty selects the
	// paper's Envivio ladder.
	LadderKbps []float64 `json:"ladder_kbps,omitempty"`
	// Chunks and ChunkSec describe the CBR chunking; zero values select
	// the paper's 65 × 4 s test video.
	Chunks   int     `json:"chunks,omitempty"`
	ChunkSec float64 `json:"chunk_sec,omitempty"`

	// Weights selects the QoE preset: "balanced" (default),
	// "avoid_instability" or "avoid_rebuffering".
	Weights string `json:"weights,omitempty"`
	// BufferMaxSec and Horizon are the player configuration; zero values
	// select the paper defaults (30 s, 5 chunks).
	BufferMaxSec float64 `json:"buffer_max_sec,omitempty"`
	Horizon      int     `json:"horizon,omitempty"`

	// Robust queries the table with the predictor's error-adjusted lower
	// bound (RobustMPC behaviour at FastMPC cost, Theorem 1).
	Robust bool `json:"robust,omitempty"`
	// Window is the predictor's observation window in chunks; 0 selects
	// the paper's 5.
	Window int `json:"window,omitempty"`

	// LinkGroup optionally names the bottleneck link this session shares
	// with others (the multiplayer setting). Only consulted when the
	// service runs with fairness enabled.
	LinkGroup string `json:"link_group,omitempty"`
}

// SessionRequest registers a session. ID is optional; the service assigns
// one when empty. Registering an ID that is already resident is a conflict.
type SessionRequest struct {
	ID     string        `json:"id,omitempty"`
	Config SessionConfig `json:"config"`
}

// SessionResponse acknowledges a registration.
type SessionResponse struct {
	// Session is the ID to present on subsequent decide/delete calls.
	Session string `json:"session"`
	// Levels is the ladder size after config resolution.
	Levels int `json:"levels"`
	// TableKey is the content address of the decision table backing this
	// session (hex): sessions reporting equal keys share one table.
	TableKey string `json:"table_key"`
}

// DecideRequest asks for the next chunk's level. ThroughputSamples carries
// the measured per-chunk download throughputs observed since the previous
// decide call (normally exactly one); the service feeds them to the
// session's server-side predictor in order.
type DecideRequest struct {
	Session string `json:"session"`
	// Chunk is the 0-based index of the chunk being chosen. Repeating the
	// previous chunk index replays the stored decision without mutating
	// predictor state, making retries after a lost response idempotent.
	Chunk int `json:"chunk"`
	// Buffer is the current buffer occupancy in media seconds.
	Buffer float64 `json:"buffer"`
	// PrevLevel is the previously played ladder level, -1 before the
	// first chunk.
	PrevLevel         int       `json:"prev_level"`
	ThroughputSamples []float64 `json:"throughput_samples,omitempty"`
}

// DecideResponse is the decision plus the metadata needed to audit it.
type DecideResponse struct {
	Session     string  `json:"session"`
	Chunk       int     `json:"chunk"`
	Level       int     `json:"level"`
	BitrateKbps float64 `json:"bitrate_kbps"`

	// PredictedKbps is the predictor's first-step forecast (0 = unknown).
	PredictedKbps float64 `json:"predicted_kbps"`
	// LowerKbps is the robust lower bound actually used when the session
	// is robust (0 otherwise).
	LowerKbps float64 `json:"lower_kbps,omitempty"`
	// FairShareKbps is the link-group fair-share cap applied to this
	// decision (0 when fairness is off, the session has no group, or the
	// share did not bind).
	FairShareKbps float64 `json:"fair_share_kbps,omitempty"`
	// Replayed marks an idempotent replay of the stored decision for a
	// repeated chunk index.
	Replayed bool `json:"replayed,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// resolvedConfig is a SessionConfig with defaults applied and the weights
// preset resolved — the canonical form the table key derives from.
type resolvedConfig struct {
	ladder    model.Ladder
	chunks    int
	chunkSec  float64
	weights   model.Weights
	bufferMax float64
	horizon   int
	robust    bool
	window    int
	linkGroup string
}

// resolveConfig validates a SessionConfig and applies the paper defaults.
func resolveConfig(c SessionConfig) (resolvedConfig, error) {
	r := resolvedConfig{
		ladder:    model.Ladder(c.LadderKbps),
		chunks:    c.Chunks,
		chunkSec:  c.ChunkSec,
		bufferMax: c.BufferMaxSec,
		horizon:   c.Horizon,
		robust:    c.Robust,
		window:    c.Window,
		linkGroup: c.LinkGroup,
	}
	if len(r.ladder) == 0 {
		r.ladder = model.EnvivioLadder()
	}
	if r.chunks == 0 {
		r.chunks = 65
	}
	if r.chunkSec == 0 { //lint:allow floateq zero is the JSON field-absent sentinel, never computed
		r.chunkSec = 4
	}
	if r.bufferMax == 0 { //lint:allow floateq zero is the JSON field-absent sentinel, never computed
		r.bufferMax = 30
	}
	if r.horizon == 0 {
		r.horizon = 5
	}
	if r.window == 0 {
		r.window = 5
	}
	if r.chunks < 0 || r.chunkSec < 0 || r.bufferMax < 0 || r.horizon < 0 || r.window < 0 {
		return r, fmt.Errorf("abrsvc: session config fields must be non-negative")
	}
	if err := r.ladder.Validate(); err != nil {
		return r, fmt.Errorf("abrsvc: %w", err)
	}
	switch strings.ToLower(c.Weights) {
	case "", "balanced":
		r.weights = model.Balanced
	case "avoid_instability":
		r.weights = model.AvoidInstability
	case "avoid_rebuffering":
		r.weights = model.AvoidRebuffering
	default:
		return r, fmt.Errorf("abrsvc: unknown weights preset %q", c.Weights)
	}
	return r, nil
}
