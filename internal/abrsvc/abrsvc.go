// Package abrsvc is the network-facing half of FastMPC-as-a-service: a
// stdlib-only HTTP control plane that answers per-chunk bitrate decisions
// at table-lookup cost. The paper's design (Sec 5) splits MPC into an
// expensive offline enumeration and a cheap online lookup; this package is
// the server-side shape of that split — tables are built (or loaded from
// the content-addressed cache) once per distinct configuration and then
// shared by every session that registers with equal parameters, so the
// marginal cost of a decision request is a predictor update plus a binary
// search over a few hundred RLE runs.
//
// The service exposes a small versioned JSON API:
//
//	POST   /v1/session       register a session (manifest, weights, player config)
//	POST   /v1/decide        decide the next chunk's level for a session
//	DELETE /v1/session/{id}  forget a session
//	GET    /metrics          Prometheus text exposition
//	GET    /healthz          liveness (503 while draining)
//
// Sessions hold the per-viewer state MPC needs between chunks — the
// error-tracked throughput predictor of Sec 7.1.2 and the last decision —
// in a sharded, mutex-striped in-memory store with TTL eviction of idle
// sessions. Overload degrades gracefully rather than collapsing: decide
// requests pass a bounded accept queue and a max-in-flight semaphore, and
// excess load is shed with 429 + Retry-After (counted on
// mpcdash_abrsvc_shed_total). An optional fairness hook in the direction
// of the multiplayer streaming literature groups sessions by a
// client-supplied link group and caps each member's assumed throughput at
// its fair share of the group aggregate.
package abrsvc

import (
	"runtime"
	"time"

	"mpcdash/internal/fastmpc"
	"mpcdash/internal/obs"
)

// Metric names the service registers. Exported so dashboards, tests and
// documentation agree on the spelling.
const (
	MetricRequestsTotal   = "mpcdash_abrsvc_requests_total"
	MetricShedTotal       = "mpcdash_abrsvc_shed_total"
	MetricDecisionsTotal  = "mpcdash_abrsvc_decisions_total"
	MetricDecideSeconds   = "mpcdash_abrsvc_decide_seconds"
	MetricRequestSeconds  = "mpcdash_abrsvc_request_seconds"
	MetricSessions        = "mpcdash_abrsvc_sessions"
	MetricSessionsCreated = "mpcdash_abrsvc_sessions_created_total"
	MetricSessionsEvicted = "mpcdash_abrsvc_sessions_evicted_total"
	MetricInflight        = "mpcdash_abrsvc_inflight"
	MetricQueued          = "mpcdash_abrsvc_queued"
)

// Config parameterizes a Service. The zero value is usable: every field
// has a production default.
type Config struct {
	// MaxSessions caps resident sessions; registrations beyond it are
	// rejected with 503. 0 selects 65536.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this. 0 selects 5 min.
	SessionTTL time.Duration
	// EvictEvery is the eviction sweep period. 0 selects SessionTTL/4.
	EvictEvery time.Duration
	// Shards is the session-store stripe count. 0 selects 16.
	Shards int

	// MaxInFlight bounds concurrently executing decide requests. 0
	// selects 4×GOMAXPROCS.
	MaxInFlight int
	// QueueDepth bounds decide requests waiting for an in-flight slot;
	// arrivals beyond it are shed immediately. 0 selects 8×MaxInFlight.
	QueueDepth int
	// QueueWait bounds how long a queued decide request may wait before
	// it is shed. 0 selects 100 ms.
	QueueWait time.Duration

	// Fairness enables the link-group fair-share hook: sessions that
	// registered with a link group see their assumed throughput capped at
	// the group aggregate divided by the member count. Off by default —
	// it couples decisions across sessions, so per-session decision
	// sequences are no longer a pure function of that session's inputs.
	Fairness bool

	// Tables resolves FastMPC decision tables; nil selects the shared
	// process-wide registry (and therefore the -table-cache disk tier
	// when one is configured).
	Tables *fastmpc.Registry
	// Registry receives the service metrics; nil creates a private one.
	Registry *obs.Registry
	// Sink receives one obs.DecisionEvent per fresh decision; nil
	// disables tracing. The sink is flushed on Server.Shutdown.
	Sink obs.Sink
}

// withDefaults resolves zero fields to their production defaults.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 65536
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.EvictEvery <= 0 {
		c.EvictEvery = c.SessionTTL / 4
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Tables == nil {
		c.Tables = fastmpc.Shared
	}
	return c
}
