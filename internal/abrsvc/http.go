package abrsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload (a
// registration with a long ladder) is a few kilobytes.
const maxBodyBytes = 1 << 20

// decideBuckets resolve sub-millisecond decision latencies: 1 µs to ~0.5 s
// exponentially. The default time buckets start at 1 ms — useless for a
// path whose budget is "p99 under a millisecond".
var decideBuckets = obs.ExpBuckets(1e-6, 2, 20)

// Service is the ABR decision service: the session store, the admission
// valve, the fairness table and the HTTP surface over them. Create one
// with New, expose Handler somewhere (or use Start for a managed server),
// and run Janitor for TTL eviction.
type Service struct {
	cfg    Config
	store  *store
	adm    *admission
	groups *groupTable
	mux    *http.ServeMux

	nextID  atomic.Uint64
	nextSeq atomic.Uint64

	draining atomic.Bool

	sinkMu     sync.Mutex
	sinkClosed bool

	cRequests map[string]*obs.Counter
	cDecided  *obs.Counter
	hDecide   *obs.Histogram
	hRequest  *obs.Histogram

	// testDecideHold, when non-nil, is received from inside the decide
	// handler after admission — tests use it to pin in-flight slots and
	// exercise shedding deterministically.
	testDecideHold chan struct{}
}

// New builds a service from cfg (zero fields take production defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Service{
		cfg:    cfg,
		store:  newStore(cfg.Shards, cfg.SessionTTL, cfg.MaxSessions, time.Now, reg),
		adm:    newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueWait, reg),
		groups: newGroupTable(),
		mux:    http.NewServeMux(),
	}
	s.cRequests = map[string]*obs.Counter{
		"session": reg.Counter(MetricRequestsTotal, "API requests by route.", "route", "session"),
		"decide":  reg.Counter(MetricRequestsTotal, "API requests by route.", "route", "decide"),
		"delete":  reg.Counter(MetricRequestsTotal, "API requests by route.", "route", "delete"),
	}
	s.cDecided = reg.Counter(MetricDecisionsTotal, "Fresh decisions computed (replays excluded).")
	s.hDecide = reg.Histogram(MetricDecideSeconds, "Lookup-path decision latency in seconds (predictor update + table lookup).", decideBuckets)
	s.hRequest = reg.Histogram(MetricRequestSeconds, "End-to-end decide request handling latency in seconds.", decideBuckets)

	s.mux.HandleFunc("POST /v1/session", s.handleSession)
	s.mux.HandleFunc("POST /v1/decide", s.handleDecide)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleDelete)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP surface.
func (s *Service) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry the service writes to.
func (s *Service) Registry() *obs.Registry { return s.cfg.Registry }

// Sessions reports the resident session count.
func (s *Service) Sessions() int { return s.store.len() }

// Janitor evicts idle sessions every Config.EvictEvery until ctx is
// cancelled. Run it in its own goroutine alongside the HTTP server.
func (s *Service) Janitor(ctx context.Context) {
	t := time.NewTicker(s.cfg.EvictEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.EvictIdle()
		}
	}
}

// EvictIdle sweeps the store once, detaching evicted sessions from their
// link groups, and returns how many sessions were removed.
func (s *Service) EvictIdle() int {
	evicted := s.store.evictIdle()
	for _, ss := range evicted {
		s.groups.drop(ss.group, ss.id)
	}
	return len(evicted)
}

// closeSink flushes the decision sink exactly once.
func (s *Service) closeSink() error {
	if s.cfg.Sink == nil {
		return nil
	}
	s.sinkMu.Lock()
	defer s.sinkMu.Unlock()
	if s.sinkClosed {
		return nil
	}
	s.sinkClosed = true
	return s.cfg.Sink.Close()
}

// ---- handlers -------------------------------------------------------

func (s *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	s.cRequests["session"].Inc()
	var req SessionRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rc, err := resolveConfig(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	manifest, err := model.NewCBRManifest(rc.ladder, rc.chunks, rc.chunkSec)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("abrsvc: manifest rejected: %w", err))
		return
	}
	opt, err := core.NewOptimizer(manifest, rc.weights, model.QIdentity, rc.bufferMax, rc.horizon)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("abrsvc: %w", err))
		return
	}
	spec := fastmpc.DefaultBins(rc.bufferMax, manifest.Ladder.Max())
	// The registry deduplicates: N sessions registering equal configs
	// share one enumeration (and the disk tier when configured), so only
	// the first registration of a config pays the offline build.
	table, err := s.cfg.Tables.Table(opt, spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("abrsvc: table build failed: %w", err))
		return
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("s%08d", s.nextID.Add(1))
	}
	ss := newSession(id, int(s.nextSeq.Add(1)), rc, table)
	if err := s.store.put(ss); err != nil {
		status := http.StatusServiceUnavailable
		if _, dup := s.store.get(id); dup {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	if s.cfg.Fairness && rc.linkGroup != "" {
		s.groups.join(rc.linkGroup, id)
	}
	writeJSON(w, http.StatusOK, SessionResponse{
		Session:  id,
		Levels:   manifest.Levels(),
		TableKey: fmt.Sprintf("%016x", fastmpc.TableKey(opt, model.QualityID(model.QIdentity), spec)),
	})
}

func (s *Service) handleDecide(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.cRequests["decide"].Inc()
	var req DecideRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, err)
		}
		// Context errors mean the client is gone; nothing useful to write.
		return
	}
	defer release()
	if s.testDecideHold != nil {
		<-s.testDecideHold
	}

	ss, ok := s.store.get(req.Session)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("abrsvc: unknown session %q", req.Session))
		return
	}

	ss.mu.Lock()
	if req.Chunk == ss.lastChunk {
		resp := ss.lastResp
		resp.Replayed = true
		ss.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		s.hRequest.Observe(time.Since(t0).Seconds())
		return
	}
	var share float64
	if s.cfg.Fairness && ss.group != "" {
		share = s.groups.observe(ss.group, ss.id, lastSample(req.ThroughputSamples))
	}
	dt0 := time.Now()
	resp := ss.decide(&req, share)
	decideDur := time.Since(dt0)
	ss.lastChunk = req.Chunk
	ss.lastResp = resp
	alg, seq := ss.algorithm(), ss.seq
	ss.mu.Unlock()

	s.cDecided.Inc()
	s.hDecide.Observe(decideDur.Seconds())
	if s.cfg.Sink != nil {
		s.cfg.Sink.Decision(obs.DecisionEvent{
			Algorithm:  alg,
			Session:    seq,
			Chunk:      req.Chunk,
			Buffer:     req.Buffer,
			Prev:       req.PrevLevel,
			Predicted:  resp.PredictedKbps,
			Candidates: ss.ladder,
			Level:      resp.Level,
			Bitrate:    resp.BitrateKbps,
			SolverWall: decideDur,
			Actual:     lastSample(req.ThroughputSamples),
		})
	}
	writeJSON(w, http.StatusOK, resp)
	s.hRequest.Observe(time.Since(t0).Seconds())
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.cRequests["delete"].Inc()
	id := r.PathValue("id")
	ss, ok := s.store.delete(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("abrsvc: unknown session %q", id))
		return
	}
	s.groups.drop(ss.group, ss.id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// readJSON decodes a bounded request body, rejecting unknown fields so a
// misspelled knob fails loudly instead of silently taking its default.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("abrsvc: invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// ---- managed server -------------------------------------------------

// Server is a Service bound to a listener with a managed lifecycle: a
// background janitor, and a graceful Shutdown that stops accepting,
// drains in-flight requests, halts eviction and flushes the trace sink.
type Server struct {
	Service *Service

	http        *http.Server
	addr        string
	stopJanitor context.CancelFunc
	janitorDone chan struct{}
}

// Start listens on addr (e.g. "127.0.0.1:0"), serves the API in a
// background goroutine and starts the TTL janitor.
func (s *Service) Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("abrsvc: listen on %s: %w", addr, err)
	}
	srv := &Server{
		Service:     s,
		http:        &http.Server{Handler: s.mux},
		addr:        ln.Addr().String(),
		janitorDone: make(chan struct{}),
	}
	jctx, cancel := context.WithCancel(context.Background())
	srv.stopJanitor = cancel
	go func() {
		defer close(srv.janitorDone)
		s.Janitor(jctx)
	}()
	go func() { //lint:allow ctxleak Serve exits when Server.Shutdown closes the listener
		_ = srv.http.Serve(ln)
	}()
	return srv, nil
}

// Addr returns the bound listen address.
func (srv *Server) Addr() string { return srv.addr }

// URL returns the service base URL.
func (srv *Server) URL() string { return "http://" + srv.addr }

// Shutdown drains the server gracefully: health flips to draining, the
// listener closes, in-flight requests run to completion (bounded by ctx),
// the janitor stops and the decision sink is flushed. Safe to call once.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.Service.draining.Store(true)
	err := srv.http.Shutdown(ctx)
	if err != nil {
		// Drain deadline blown: hard-close whatever is left.
		_ = srv.http.Close()
	}
	srv.stopJanitor()
	<-srv.janitorDone
	if serr := srv.Service.closeSink(); serr != nil && err == nil {
		err = serr
	}
	return err
}
