package abrsvc

import (
	"sync"

	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
)

// session is one registered viewer: the per-session state MPC needs
// between chunks (the error-tracked predictor of Sec 7.1.2 and the last
// decision, which makes retried requests idempotent) plus the shared,
// read-only decision table. The decide path below is deterministic — a
// pure function of the session's request history — which is what lets the
// fleet's svc backend promise byte-identical decision sequences across
// same-seed runs.
type session struct {
	mu sync.Mutex

	id    string
	seq   int // registration sequence number, stamps DecisionEvents
	group string

	ladder  model.Ladder
	table   *fastmpc.CompressedTable
	pred    *predictor.ErrorTracked
	horizon int
	robust  bool

	// Idempotency: a decide request repeating lastChunk replays lastResp
	// without touching predictor state.
	lastChunk int
	lastResp  DecideResponse

	// lastUsed is the store's idle clock, unix nanoseconds. Guarded by
	// the owning shard's mutex, not the session mutex.
	lastUsed int64
}

// newSession assembles the per-viewer state around a shared table.
func newSession(id string, seq int, rc resolvedConfig, table *fastmpc.CompressedTable) *session {
	return &session{
		id:        id,
		seq:       seq,
		group:     rc.linkGroup,
		ladder:    rc.ladder,
		table:     table,
		pred:      predictor.NewErrorTracked(predictor.NewHarmonicMean(rc.window), rc.window),
		horizon:   rc.horizon,
		robust:    rc.robust,
		lastChunk: -1,
	}
}

// algorithm names the decision rule for logs and DecisionEvents.
func (ss *session) algorithm() string {
	if ss.robust {
		return "RobustFastMPC"
	}
	return "FastMPC"
}

// decide runs one controller step: feed the reported throughput samples to
// the predictor, forecast, apply the robust lower bound and the fair-share
// cap, and look the level up in the table. Callers hold ss.mu. The
// sequence of operations mirrors the simulator's per-chunk loop exactly
// (Observe the realized throughput of the previous chunk, then Predict,
// then decide), so a service-backed session takes the same decisions as a
// local fastmpc.Controller fed the same measurements.
func (ss *session) decide(req *DecideRequest, share float64) DecideResponse {
	for _, v := range req.ThroughputSamples {
		if v > 0 {
			ss.pred.Observe(v)
		}
	}
	forecast := ss.pred.Predict(ss.horizon)
	var predicted float64
	if len(forecast) > 0 {
		predicted = forecast[0]
	}
	rate := predicted
	var lower float64
	if ss.robust {
		if lb := ss.pred.LowerBound(ss.horizon); len(lb) > 0 && lb[0] > 0 {
			lower = lb[0]
			rate = lower
		}
	}
	var fair float64
	if share > 0 && share < rate {
		fair = share
		rate = share
	}
	level := ss.table.Lookup(req.Buffer, req.PrevLevel, rate)
	return DecideResponse{
		Session:       ss.id,
		Chunk:         req.Chunk,
		Level:         level,
		BitrateKbps:   ss.ladder[level],
		PredictedKbps: predicted,
		LowerKbps:     lower,
		FairShareKbps: fair,
	}
}

// lastSample returns the most recent positive throughput sample of a
// decide request (0 when none) — the per-session contribution to its link
// group's aggregate.
//
//mpc:noalloc
func lastSample(samples []float64) float64 {
	for i := len(samples) - 1; i >= 0; i-- {
		if samples[i] > 0 {
			return samples[i]
		}
	}
	return 0
}
