// Package sim is the trace-driven playback simulator: it executes the chunk
// download process of Sec 3.1 — Eq. (1) timing, Eq. (2) average download
// throughput, Eq. (3) buffer evolution and Eq. (4) buffer-full waiting —
// against a throughput trace, invoking a Controller at every chunk boundary
// exactly as the modified dash.js player does (Sec 6: sequential downloads,
// decisions at chunk starts). It produces the per-chunk session log that the
// QoE metric and all evaluation figures are computed from.
package sim

import (
	"fmt"
	"math"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

// StartupPolicy selects how the startup delay Ts (constraint B1 = Ts of the
// formulation in Fig 3) is determined.
type StartupPolicy int

const (
	// StartupFirstChunk sets Ts to the realized download time of the first
	// chunk — "play as soon as the first chunk arrives", the behaviour of
	// the non-MPC players. The first chunk then never rebuffers.
	StartupFirstChunk StartupPolicy = iota
	// StartupController lets the controller choose Ts (the f_stmpc problem);
	// used by the MPC family which optimizes the µs·Ts term explicitly.
	StartupController
	// StartupFixed uses Config.FixedStartup seconds, the Fig 11d sweep.
	StartupFixed
)

// Config parameterizes one simulated session.
type Config struct {
	BufferMax    float64       // B_max seconds (paper: 30)
	Horizon      int           // forecast length requested from the predictor (paper: 5)
	Startup      StartupPolicy // how Ts is chosen
	FixedStartup float64       // Ts when Startup == StartupFixed

	// MaxChunks stops the session after this many chunks (0 plays the
	// whole video). It models viewers who leave before the end — the
	// watch-duration churn of a session population — and because the
	// simulator is strictly sequential, a truncated session is exactly
	// the prefix of the full one.
	MaxChunks int

	// AbandonRebuffer ends the session once cumulative stall time
	// reaches this many seconds (0 disables). The chunk that crossed
	// the threshold is the last one recorded: the viewer gave up during
	// that stall.
	AbandonRebuffer float64

	// Obs receives per-decision events and session metrics. Nil disables
	// observability at the cost of one pointer test per chunk.
	Obs *obs.Recorder
}

// DefaultConfig is the paper's player configuration.
func DefaultConfig() Config {
	return Config{BufferMax: 30, Horizon: 5, Startup: StartupFirstChunk}
}

// Run plays the whole video over tr, asking ctrl for every chunk's level and
// pred for throughput forecasts. It returns the complete session log.
func Run(m *model.Manifest, tr *trace.Trace, ctrl abr.Controller, pred predictor.Predictor, cfg Config) (*model.SessionResult, error) {
	if cfg.BufferMax <= 0 {
		return nil, fmt.Errorf("sim: BufferMax must be positive, got %v", cfg.BufferMax)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 1
	}
	res := &model.SessionResult{
		Algorithm: ctrl.Name(),
		Chunks:    make([]model.ChunkRecord, 0, m.ChunkCount),
	}
	chunks := m.ChunkCount
	if cfg.MaxChunks > 0 && cfg.MaxChunks < chunks {
		chunks = cfg.MaxChunks
	}
	var (
		t        float64 // session clock, seconds
		buffer   float64 // B_k
		prev     = -1
		rebufTot float64 // cumulative stall, drives AbandonRebuffer
	)
	for k := 0; k < chunks; k++ {
		if ta, ok := pred.(predictor.TimeAware); ok {
			ta.SetTime(t)
		}
		forecast := pred.Predict(cfg.Horizon)
		var lower []float64
		if lb, ok := pred.(predictor.LowerBounder); ok {
			lower = lb.LowerBound(cfg.Horizon)
		}
		st := abr.State{
			Chunk:    k,
			Buffer:   buffer,
			Prev:     prev,
			Time:     t,
			Forecast: forecast,
			Lower:    lower,
			Startup:  k == 0 && cfg.Startup == StartupController,
		}
		decStart := time.Now() //lint:allow nodeterminism solver wall-time measurement for obs only; never feeds the decision
		dec := ctrl.Decide(st)
		solverWall := time.Since(decStart) //lint:allow nodeterminism solver wall-time measurement for obs only; never feeds the decision
		level := m.Ladder.Clamp(dec.Level)

		size := m.ChunkSize(k, level)
		dl := tr.DownloadTime(t, size)
		if math.IsInf(dl, 1) {
			return nil, fmt.Errorf("sim: trace %q has zero throughput forever at t=%.1fs", tr.Name, t)
		}
		throughput := size / dl

		if k == 0 {
			// Establish B1 = Ts per the chosen policy.
			switch cfg.Startup {
			case StartupFirstChunk:
				res.StartupDelay = dl
			case StartupController:
				// Playback cannot begin before the first chunk exists, so
				// the controller's Ts is floored at the realized download
				// time: pre-playback waiting is startup delay, not stall.
				res.StartupDelay = math.Max(dec.Startup, dl)
			case StartupFixed:
				res.StartupDelay = math.Max(0, cfg.FixedStartup)
			}
			buffer = res.StartupDelay
		}

		rebuffer := math.Max(dl-buffer, 0)
		afterDrain := math.Max(buffer-dl, 0) + m.ChunkDuration // (B_k − d/C)+ + L
		wait := math.Max(afterDrain-cfg.BufferMax, 0)          // Δt_k, Eq. (4)
		next := afterDrain - wait                              // B_{k+1}, Eq. (3)

		pred.Observe(throughput)
		var predicted float64
		if len(forecast) > 0 {
			predicted = forecast[0]
		}
		res.Chunks = append(res.Chunks, model.ChunkRecord{
			Index:        k,
			Level:        level,
			Bitrate:      m.Ladder[level],
			SizeKbits:    size,
			StartTime:    t,
			DownloadTime: dl,
			Throughput:   throughput,
			BufferBefore: buffer,
			BufferAfter:  next,
			Rebuffer:     rebuffer,
			Wait:         wait,
			Predicted:    predicted,
			DecisionTime: solverWall.Seconds(),
		})
		if cfg.Obs.Enabled() {
			cfg.Obs.Decision(obs.DecisionEvent{
				Algorithm:     res.Algorithm,
				Chunk:         k,
				Time:          t,
				Buffer:        buffer,
				Prev:          prev,
				Predicted:     predicted,
				Candidates:    m.Ladder,
				Level:         level,
				Bitrate:       m.Ladder[level],
				SolverWall:    solverWall,
				DownloadStart: t,
				DownloadDur:   dl,
				Actual:        throughput,
				SizeKbits:     size,
				Rebuffer:      rebuffer,
				Wait:          wait,
				BufferAfter:   next,
			})
		}

		t += dl + wait
		buffer = next
		prev = level

		rebufTot += rebuffer
		if cfg.AbandonRebuffer > 0 && rebufTot >= cfg.AbandonRebuffer {
			break
		}
	}
	return res, nil
}
