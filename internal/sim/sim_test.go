package sim

import (
	"math"
	"testing"
	"testing/quick"

	"mpcdash/internal/abr"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/trace"
)

func constTrace(t *testing.T, kbps, dur float64) *trace.Trace {
	t.Helper()
	tr, err := trace.FromRates("const", dur, []float64{kbps})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunFixedLowestNoRebuffer(t *testing.T) {
	m := model.EnvivioManifest()
	// 1000 kbps link, lowest level is 350 kbps: downloads at 1.4 s per 4 s
	// chunk, so after the first chunk the buffer only grows.
	tr := constTrace(t, 1000, 400)
	res, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 65 {
		t.Fatalf("chunks = %d, want 65", len(res.Chunks))
	}
	// Startup = first chunk download time = 1400/1000.
	if math.Abs(res.StartupDelay-1.4) > 1e-9 {
		t.Errorf("StartupDelay = %v, want 1.4", res.StartupDelay)
	}
	for _, c := range res.Chunks {
		if c.Rebuffer != 0 {
			t.Errorf("chunk %d rebuffered %v s", c.Index, c.Rebuffer)
		}
		if math.Abs(c.DownloadTime-1.4) > 1e-9 {
			t.Errorf("chunk %d download = %v, want 1.4", c.Index, c.DownloadTime)
		}
		if math.Abs(c.Throughput-1000) > 1e-9 {
			t.Errorf("chunk %d throughput = %v, want 1000", c.Index, c.Throughput)
		}
	}
}

func TestRunBufferCapAndWait(t *testing.T) {
	m := model.EnvivioManifest()
	tr := constTrace(t, 10000, 400) // very fast link
	res, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sawWait bool
	for _, c := range res.Chunks {
		if c.BufferAfter > 30+1e-9 {
			t.Errorf("chunk %d buffer %v exceeds Bmax", c.Index, c.BufferAfter)
		}
		if c.Wait > 0 {
			sawWait = true
		}
	}
	if !sawWait {
		t.Error("fast link should trigger buffer-full waits (Eq. 4)")
	}
	// Steady state: each cycle the player downloads one 4 s chunk; with the
	// buffer pinned at Bmax the wait must make the cycle exactly 4 s.
	last := res.Chunks[len(res.Chunks)-1]
	if math.Abs(last.DownloadTime+last.Wait-m.ChunkDuration) > 1e-6 {
		t.Errorf("steady cycle = %v, want %v", last.DownloadTime+last.Wait, m.ChunkDuration)
	}
}

func TestRunRebuffering(t *testing.T) {
	m := model.EnvivioManifest()
	// 350 kbps chunks over a 200 kbps link: every chunk takes 7 s for 4 s
	// of content; rebuffering is inevitable.
	tr := constTrace(t, 200, 400)
	res, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	if metrics.RebufferTime <= 0 {
		t.Error("expected rebuffering on an undersized link")
	}
	// Per-chunk: 7 s download, 4 s of buffer → 3 s stall each steady chunk.
	mid := res.Chunks[30]
	if math.Abs(mid.Rebuffer-3) > 1e-6 {
		t.Errorf("steady rebuffer = %v, want 3", mid.Rebuffer)
	}
}

func TestStartupPolicies(t *testing.T) {
	m := model.EnvivioManifest()
	tr := constTrace(t, 1000, 400)
	pred := func() predictor.Predictor { return predictor.NewHarmonicMean(5) }

	cfg := DefaultConfig()
	cfg.Startup = StartupFixed
	cfg.FixedStartup = 7.5
	res, err := Run(m, tr, abr.NewFixed(0)(m), pred(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupDelay != 7.5 {
		t.Errorf("fixed startup = %v, want 7.5", res.StartupDelay)
	}
	if res.Chunks[0].BufferBefore != 7.5 {
		t.Errorf("B1 = %v, want Ts = 7.5", res.Chunks[0].BufferBefore)
	}
	if res.Chunks[0].Rebuffer != 0 {
		t.Errorf("chunk 0 rebuffer = %v, want 0 (dl 1.4 < Ts 7.5)", res.Chunks[0].Rebuffer)
	}

	cfg.Startup = StartupController
	// Fixed controller reports defaultStartup = size/rate; with a cold
	// harmonic predictor the fallback is one chunk duration.
	res, err = Run(m, tr, abr.NewFixed(0)(m), pred(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupDelay != m.ChunkDuration {
		t.Errorf("controller startup = %v, want %v", res.StartupDelay, m.ChunkDuration)
	}
}

func TestRunValidation(t *testing.T) {
	m := model.EnvivioManifest()
	tr := constTrace(t, 1000, 400)
	cfg := DefaultConfig()
	cfg.BufferMax = 0
	if _, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), cfg); err == nil {
		t.Error("expected error for zero BufferMax")
	}
}

func TestRunDeadLink(t *testing.T) {
	m := model.EnvivioManifest()
	tr, err := trace.FromRates("dead", 10, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), DefaultConfig()); err == nil {
		t.Error("expected error for an all-zero trace")
	}
}

// TestBufferDynamicsInvariants property-checks Eq. (3)/(4) over random
// traces and algorithms: buffers stay in [0, Bmax], rebuffer and wait are
// non-negative, chunk times are consistent.
func TestBufferDynamicsInvariants(t *testing.T) {
	m := model.EnvivioManifest()
	f := func(seed int64, algPick uint8) bool {
		tr := trace.GenHSDPA(seed, m.Duration()+120)
		var factory abr.Factory
		switch algPick % 3 {
		case 0:
			factory = abr.NewRB(1)
		case 1:
			factory = abr.NewBB(5, 10)
		default:
			factory = abr.NewFESTIVE(12, 1, 5)
		}
		res, err := Run(m, tr, factory(m), predictor.NewHarmonicMean(5), DefaultConfig())
		if err != nil {
			return false
		}
		prevEnd := 0.0
		for _, c := range res.Chunks {
			if c.BufferBefore < -1e-9 || c.BufferAfter < -1e-9 || c.BufferAfter > 30+1e-9 {
				return false
			}
			if c.Rebuffer < 0 || c.Wait < 0 || c.DownloadTime < 0 {
				return false
			}
			if c.StartTime+1e-9 < prevEnd {
				return false // time went backwards
			}
			prevEnd = c.StartTime + c.DownloadTime + c.Wait
			// Eq. (3): B_{k+1} = (B_k − dl)+ + L − Δt.
			want := math.Max(c.BufferBefore-c.DownloadTime, 0) + m.ChunkDuration - c.Wait
			if math.Abs(want-c.BufferAfter) > 1e-6 {
				return false
			}
			// Rebuffer: (dl − B_k)+.
			if math.Abs(c.Rebuffer-math.Max(c.DownloadTime-c.BufferBefore, 0)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestChunkRecordChaining: BufferAfter of chunk k equals BufferBefore of
// chunk k+1, and session time advances by download + wait.
func TestChunkRecordChaining(t *testing.T) {
	m := model.EnvivioManifest()
	tr := trace.GenFCC(3, m.Duration()+60)
	res, err := Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Chunks); i++ {
		prev, cur := res.Chunks[i-1], res.Chunks[i]
		if math.Abs(prev.BufferAfter-cur.BufferBefore) > 1e-9 {
			t.Fatalf("chunk %d: BufferAfter %v != next BufferBefore %v", i-1, prev.BufferAfter, cur.BufferBefore)
		}
		if math.Abs(prev.StartTime+prev.DownloadTime+prev.Wait-cur.StartTime) > 1e-9 {
			t.Fatalf("chunk %d: time chain broken", i-1)
		}
	}
}

// TestRunVBRSession: VBR chunk sizes flow through the simulator — download
// times vary across chunks even at a fixed level on a constant link.
func TestRunVBRSession(t *testing.T) {
	m, err := model.NewVBRManifest(model.EnvivioLadder(), 40, 4, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr := constTrace(t, 2000, 400)
	res, err := Run(m, tr, abr.NewFixed(1)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for i := 1; i < len(res.Chunks); i++ {
		if math.Abs(res.Chunks[i].DownloadTime-res.Chunks[0].DownloadTime) > 1e-9 {
			distinct = true
		}
		if want := m.ChunkSize(i, 1); math.Abs(res.Chunks[i].SizeKbits-want) > 1e-9 {
			t.Fatalf("chunk %d size %v, want %v", i, res.Chunks[i].SizeKbits, want)
		}
	}
	if !distinct {
		t.Error("VBR session has uniform download times")
	}
}

// TestHorizonPassedToPredictor: the configured horizon reaches Predict.
func TestHorizonPassedToPredictor(t *testing.T) {
	m := model.EnvivioManifest()
	tr := constTrace(t, 1500, 400)
	spy := &horizonSpy{inner: predictor.NewHarmonicMean(5)}
	cfg := DefaultConfig()
	cfg.Horizon = 7
	if _, err := Run(m, tr, abr.NewRB(1)(m), spy, cfg); err != nil {
		t.Fatal(err)
	}
	if spy.sawN != 7 {
		t.Errorf("predictor asked for %d steps, want 7", spy.sawN)
	}
}

type horizonSpy struct {
	inner predictor.Predictor
	sawN  int
}

func (h *horizonSpy) Name() string         { return "spy" }
func (h *horizonSpy) Observe(kbps float64) { h.inner.Observe(kbps) }
func (h *horizonSpy) Predict(n int) []float64 {
	h.sawN = n
	return h.inner.Predict(n)
}

// MaxChunks truncates the session to an exact prefix of the full run —
// the simulator is sequential, so early chunks are unaffected by the cut.
func TestRunMaxChunksIsExactPrefix(t *testing.T) {
	m := model.EnvivioManifest()
	tr := trace.GenHSDPA(21, m.Duration()+120)
	full, err := Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxChunks = 12
	short, err := Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Chunks) != 12 {
		t.Fatalf("chunks = %d, want 12", len(short.Chunks))
	}
	for i := range short.Chunks {
		a, b := short.Chunks[i], full.Chunks[i]
		if a.Level != b.Level || a.DownloadTime != b.DownloadTime ||
			a.Rebuffer != b.Rebuffer || a.BufferAfter != b.BufferAfter {
			t.Fatalf("chunk %d differs from full session: %+v vs %+v", i, a, b)
		}
	}
	// MaxChunks beyond the video is a no-op.
	cfg.MaxChunks = 1000
	again, err := Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Chunks) != m.ChunkCount {
		t.Errorf("chunks = %d, want full video %d", len(again.Chunks), m.ChunkCount)
	}
}

// AbandonRebuffer ends the session once cumulative stalls cross the
// threshold; the last recorded chunk is the one that pushed it over.
func TestRunAbandonOnRebuffer(t *testing.T) {
	m := model.EnvivioManifest()
	// 200 kbps link under 350 kbps chunks: ~3 s stall per steady chunk.
	tr := constTrace(t, 200, 400)
	cfg := DefaultConfig()
	cfg.AbandonRebuffer = 10
	res, err := Run(m, tr, abr.NewFixed(0)(m), predictor.NewHarmonicMean(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) >= m.ChunkCount {
		t.Fatalf("session not abandoned: played all %d chunks", len(res.Chunks))
	}
	var cum float64
	for i, c := range res.Chunks {
		cum += c.Rebuffer
		if cum >= cfg.AbandonRebuffer && i != len(res.Chunks)-1 {
			t.Fatalf("threshold crossed at chunk %d but session ran to %d", i, len(res.Chunks)-1)
		}
	}
	if cum < cfg.AbandonRebuffer {
		t.Fatalf("session ended with %v s of stalls, below the %v s threshold", cum, cfg.AbandonRebuffer)
	}
}
