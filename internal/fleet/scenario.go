package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mpcdash/internal/model"
	"mpcdash/internal/runner"
	"mpcdash/internal/trace"
)

// Scenario describes one load-generation run: a shared video and trace
// pool, global admission limits, and one or more session populations.
// Everything random — arrival gaps, trace assignment, watch durations —
// derives from Seed, so a scenario is a complete, replayable experiment.
type Scenario struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	Video     VideoSpec     `json:"video"`
	TracePool TracePoolSpec `json:"trace_pool"`

	// MaxInFlight caps concurrently playing sessions across all
	// populations (admission control); 0 selects 2×GOMAXPROCS.
	MaxInFlight int `json:"max_in_flight"`
	// LaunchRatePerSec is the token-bucket launch-rate cap shared by all
	// populations; 0 disables the bucket (arrival processes alone pace
	// launches).
	LaunchRatePerSec float64 `json:"launch_rate_per_sec"`
	// LaunchBurst is the bucket depth; 0 selects 1 (strict pacing).
	LaunchBurst int `json:"launch_burst"`

	// Weights selects the QoE preference preset: "balanced" (default),
	// "avoid_instability" or "avoid_rebuffering" (Fig 11b's sets).
	Weights string `json:"weights"`
	// BufferMaxSec and Horizon override the player configuration;
	// zero values select the paper defaults (30 s, 5 chunks).
	BufferMaxSec float64 `json:"buffer_max_sec"`
	Horizon      int     `json:"horizon"`

	Populations []Population `json:"populations"`
}

// VideoSpec is the shared video: zero values select the paper's Envivio
// test content (the 350–3000 kbps ladder, 65 × 4 s chunks).
type VideoSpec struct {
	LadderKbps []float64 `json:"ladder_kbps"`
	Chunks     int       `json:"chunks"`
	ChunkSec   float64   `json:"chunk_sec"`
}

// TracePoolSpec sizes the shared network-trace pool. Sessions sample
// traces from a fixed pool rather than generating one each, which is both
// how the measured datasets work (many sessions per trace) and what keeps
// trace memory O(pool), not O(sessions).
type TracePoolSpec struct {
	// PerKind traces are generated for every dataset kind referenced by
	// some population's trace mix; 0 selects 64.
	PerKind int `json:"per_kind"`
	// DurationSec per trace; 0 selects the video duration plus 120 s.
	DurationSec float64 `json:"duration_sec"`
}

// Population is a homogeneous group of sessions: one algorithm, one
// arrival process, one trace mix, one churn model.
type Population struct {
	Name string `json:"name"`
	// Algorithm is a runner algorithm name: RB, BB, FESTIVE, dash.js,
	// FastMPC, RobustMPC or MPC (case-insensitive).
	Algorithm string `json:"algorithm"`
	Sessions  int    `json:"sessions"`

	Arrival Arrival `json:"arrival"`

	// TraceMix weights the dataset kinds sessions draw their network
	// trace from, e.g. {"fcc": 3, "hsdpa": 1}. Empty means all-FCC.
	TraceMix map[string]float64 `json:"trace_mix"`

	Watch Watch `json:"watch"`

	// AbandonRebufferSec ends a session once its cumulative stall time
	// reaches this many seconds — the viewer gives up; 0 disables.
	AbandonRebufferSec float64 `json:"abandon_rebuffer_sec"`
}

// Arrival selects the session arrival process.
type Arrival struct {
	// Process is "asap" (all at once, the default), "ramp" (fixed
	// inter-arrival 1/rate) or "poisson" (exponential gaps at rate).
	Process string `json:"process"`
	// RatePerSec is the arrival rate for ramp and poisson.
	RatePerSec float64 `json:"rate_per_sec"`
}

// Watch selects the watch-duration (churn) distribution in chunks.
type Watch struct {
	// Dist is "full" (whole video, the default), "fixed" (exactly
	// Chunks) or "uniform" (uniform on [MinChunks, MaxChunks]).
	Dist      string `json:"dist"`
	Chunks    int    `json:"chunks"`
	MinChunks int    `json:"min_chunks"`
	MaxChunks int    `json:"max_chunks"`
}

// Known dataset kinds, in the canonical (sorted) order trace-mix
// sampling iterates them in.
var traceKinds = map[string]trace.DatasetKind{
	"fcc":       trace.FCC,
	"hsdpa":     trace.HSDPA,
	"synthetic": trace.Synthetic,
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleet: parsing %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// WriteJSON renders the scenario as indented JSON — the round-trippable
// form LoadScenario reads back.
func (sc *Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// Validate checks the scenario for consistency.
func (sc *Scenario) Validate() error {
	if len(sc.Populations) == 0 {
		return fmt.Errorf("fleet: scenario %q has no populations", sc.Name)
	}
	if sc.MaxInFlight < 0 || sc.LaunchRatePerSec < 0 || sc.LaunchBurst < 0 {
		return fmt.Errorf("fleet: scenario %q: admission limits must be non-negative", sc.Name)
	}
	switch strings.ToLower(sc.Weights) {
	case "", "balanced", "avoid_instability", "avoid_rebuffering":
	default:
		return fmt.Errorf("fleet: scenario %q: unknown weights preset %q", sc.Name, sc.Weights)
	}
	if sc.TracePool.PerKind < 0 || sc.TracePool.DurationSec < 0 {
		return fmt.Errorf("fleet: scenario %q: trace pool sizes must be non-negative", sc.Name)
	}
	v := sc.video()
	if v.Chunks <= 0 || v.ChunkSec <= 0 || len(v.LadderKbps) == 0 {
		return fmt.Errorf("fleet: scenario %q: invalid video spec", sc.Name)
	}
	seen := make(map[string]bool, len(sc.Populations))
	for i := range sc.Populations {
		p := &sc.Populations[i]
		if p.Name == "" {
			return fmt.Errorf("fleet: population %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("fleet: duplicate population name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Sessions <= 0 {
			return fmt.Errorf("fleet: population %q: sessions must be positive", p.Name)
		}
		if p.AbandonRebufferSec < 0 {
			return fmt.Errorf("fleet: population %q: abandon_rebuffer_sec must be non-negative", p.Name)
		}
		switch strings.ToLower(p.Arrival.Process) {
		case "", "asap":
		case "ramp", "poisson":
			if p.Arrival.RatePerSec <= 0 {
				return fmt.Errorf("fleet: population %q: %s arrivals need rate_per_sec > 0",
					p.Name, p.Arrival.Process)
			}
		default:
			return fmt.Errorf("fleet: population %q: unknown arrival process %q", p.Name, p.Arrival.Process)
		}
		for kind, weight := range p.TraceMix {
			if _, ok := traceKinds[strings.ToLower(kind)]; !ok {
				return fmt.Errorf("fleet: population %q: unknown trace kind %q", p.Name, kind)
			}
			if weight < 0 {
				return fmt.Errorf("fleet: population %q: trace mix weight for %q is negative", p.Name, kind)
			}
		}
		switch strings.ToLower(p.Watch.Dist) {
		case "", "full":
		case "fixed":
			if p.Watch.Chunks <= 0 || p.Watch.Chunks > v.Chunks {
				return fmt.Errorf("fleet: population %q: fixed watch chunks %d out of range [1,%d]",
					p.Name, p.Watch.Chunks, v.Chunks)
			}
		case "uniform":
			if p.Watch.MinChunks <= 0 || p.Watch.MaxChunks < p.Watch.MinChunks || p.Watch.MaxChunks > v.Chunks {
				return fmt.Errorf("fleet: population %q: uniform watch range [%d,%d] invalid for a %d-chunk video",
					p.Name, p.Watch.MinChunks, p.Watch.MaxChunks, v.Chunks)
			}
		default:
			return fmt.Errorf("fleet: population %q: unknown watch distribution %q", p.Name, p.Watch.Dist)
		}
	}
	if _, err := sc.algorithms(); err != nil {
		return err
	}
	return nil
}

// video returns the video spec with defaults applied.
func (sc *Scenario) video() VideoSpec {
	v := sc.Video
	if len(v.LadderKbps) == 0 {
		v.LadderKbps = []float64(model.EnvivioLadder())
	}
	if v.Chunks == 0 {
		v.Chunks = 65
	}
	if v.ChunkSec == 0 { //lint:allow floateq zero is the JSON field-absent sentinel, never computed
		v.ChunkSec = 4
	}
	return v
}

// weights resolves the QoE preset.
func (sc *Scenario) weights() model.Weights {
	switch strings.ToLower(sc.Weights) {
	case "avoid_instability":
		return model.AvoidInstability
	case "avoid_rebuffering":
		return model.AvoidRebuffering
	default:
		return model.Balanced
	}
}

func (sc *Scenario) bufferMax() float64 {
	if sc.BufferMaxSec > 0 {
		return sc.BufferMaxSec
	}
	return 30
}

func (sc *Scenario) horizon() int {
	if sc.Horizon > 0 {
		return sc.Horizon
	}
	return 5
}

// algorithms resolves every population's algorithm name against the
// canonical Sec 7.1.2 set (plus exact MPC), shared across populations so
// expensive per-algorithm setup (the FastMPC table) happens once.
func (sc *Scenario) algorithms() (map[string]runner.Algorithm, error) {
	w, q := sc.weights(), model.QIdentity
	bufMax, horizon := sc.bufferMax(), sc.horizon()
	byName := make(map[string]runner.Algorithm)
	for _, alg := range runner.StandardSet(w, q, bufMax, horizon) {
		byName[strings.ToLower(alg.Name)] = alg
	}
	mpc := runner.MPCAlgorithm(w, q, bufMax, horizon)
	byName[strings.ToLower(mpc.Name)] = mpc

	out := make(map[string]runner.Algorithm, len(sc.Populations))
	for i := range sc.Populations {
		p := &sc.Populations[i]
		alg, ok := byName[strings.ToLower(p.Algorithm)]
		if !ok {
			names := make([]string, 0, len(byName))
			for n := range byName {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("fleet: population %q: unknown algorithm %q (have %s)",
				p.Name, p.Algorithm, strings.Join(names, ", "))
		}
		out[p.Name] = alg
	}
	return out, nil
}

// mixKinds returns the population's trace mix as (kind, cumulative
// weight) in canonical sorted-kind order, normalized to sum 1.
func (p *Population) mixKinds() ([]string, []float64) {
	mix := p.TraceMix
	if len(mix) == 0 {
		mix = map[string]float64{"fcc": 1}
	}
	kinds := make([]string, 0, len(mix))
	var total float64
	for k, w := range mix {
		if w > 0 {
			kinds = append(kinds, strings.ToLower(k))
			total += w
		}
	}
	sort.Strings(kinds)
	cum := make([]float64, len(kinds))
	var acc float64
	for i, k := range kinds {
		acc += mix[k] / total
		cum[i] = acc
	}
	return kinds, cum
}

// DefaultScenario is the built-in demo: MPC-family vs. baseline
// populations over a mixed broadband/mobile trace pool with Poisson
// arrivals, 20%-churned viewers and a 30-second abandon policy, sized to
// the given total session count.
func DefaultScenario(sessions int) *Scenario {
	if sessions < 2 {
		sessions = 2
	}
	half := sessions / 2
	return &Scenario{
		Name:             "demo",
		Seed:             1,
		Video:            VideoSpec{Chunks: 65, ChunkSec: 4},
		TracePool:        TracePoolSpec{PerKind: 64},
		MaxInFlight:      0, // 2×GOMAXPROCS
		LaunchRatePerSec: 0,
		Populations: []Population{
			{
				Name:      "robustmpc",
				Algorithm: "RobustMPC",
				Sessions:  sessions - half,
				Arrival:   Arrival{Process: "poisson", RatePerSec: 2000},
				TraceMix:  map[string]float64{"fcc": 1, "hsdpa": 1},
				Watch:     Watch{Dist: "uniform", MinChunks: 13, MaxChunks: 65},
				// A viewer quits after half a minute of accumulated stall.
				AbandonRebufferSec: 30,
			},
			{
				Name:               "buffer-based",
				Algorithm:          "BB",
				Sessions:           half,
				Arrival:            Arrival{Process: "poisson", RatePerSec: 2000},
				TraceMix:           map[string]float64{"fcc": 1, "hsdpa": 1},
				Watch:              Watch{Dist: "uniform", MinChunks: 13, MaxChunks: 65},
				AbandonRebufferSec: 30,
			},
		},
	}
}
