package fleet

import (
	"context"
	"sync"

	"mpcdash/internal/emu"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
)

// The emulated backend plays each session over a real loopback HTTP
// connection: a per-session chunk server whose link is shaped to the
// session's trace (time-compressed by Options.EmuTimeScale), and the
// fault-tolerant download engine on the client side. It exercises the
// identical controller code as the simulator but through real sockets,
// so it is the backend for transport-layer load questions at hundreds of
// concurrent sessions, while the simulator backend scales to 100k.
//
// Unlike the simulator path a failed emulated session does not abort the
// population — it is counted on the errors series and the run continues,
// matching how a load generator must behave against a flaky backend.
func (f *Fleet) runPopEmu(ctx context.Context, ps *popState) error {
	workers := f.workersPerPop()
	if workers > ps.pop.Sessions {
		workers = ps.pop.Sessions
	}
	var (
		wg       sync.WaitGroup
		idx      = make(chan int)
		stop     = make(chan struct{})
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				done, err := f.admit(ctx, ps)
				if err != nil {
					fail(err)
					continue
				}
				st, err := f.playEmuSession(ctx, ps, i)
				done()
				if err != nil {
					if ctx.Err() != nil {
						fail(ctx.Err())
						continue
					}
					ps.errors.Add(1)
					ps.mErrors.Inc()
					continue
				}
				f.complete(ps, st, i)
			}
		}()
	}
dispatch:
	for i := 0; i < ps.pop.Sessions; i++ {
		select {
		case idx <- i:
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// playEmuSession runs one session end to end: a manifest truncated to the
// viewer's watch duration, a loopback server shaped to the session trace,
// and the emu client driving the population's controller.
func (f *Fleet) playEmuSession(ctx context.Context, ps *popState, session int) (sessionStats, error) {
	watch := ps.watchFor(session, f.manifest.ChunkCount)
	manifest, err := model.NewCBRManifest(f.manifest.Ladder, watch, f.manifest.ChunkDuration)
	if err != nil {
		return sessionStats{}, err
	}
	tr := ps.traceFor(session, f.pool)
	ts := f.opt.EmuTimeScale

	srv := emu.NewServer(manifest)
	base, err := srv.Start(emu.NewShaper(tr.Scale(ts, ts)))
	if err != nil {
		return sessionStats{}, err
	}
	defer srv.Close()

	client := &emu.Client{
		BaseURL:    base,
		Controller: ps.alg.Factory(manifest),
		Predictor:  ps.alg.Predictor(tr),
		BufferMax:  f.sc.bufferMax(),
		Horizon:    f.sc.horizon(),
		TimeScale:  ts,
		Retries:    emu.RetriesDefault,
		Seed:       int64(splitmix64(ps.seed^uint64(session)) >> 1),
	}
	if f.opt.Registry != nil {
		client.Obs = obs.NewRecorder(f.opt.Registry, nil).WithSession(session)
	}
	res, err := client.Run(ctx)
	if err != nil {
		return sessionStats{}, err
	}
	abandoned := truncateAbandon(res, ps.pop.AbandonRebufferSec)
	metrics := res.ComputeMetrics(model.QIdentity)
	return sessionStats{
		chunks:    len(res.Chunks),
		qoe:       res.QoE(f.weights, model.QIdentity),
		bitrate:   metrics.AvgBitrate,
		rebuffer:  metrics.RebufferTime,
		switches:  float64(metrics.Switches),
		startup:   metrics.StartupDelay,
		abandoned: abandoned,
	}, nil
}

// truncateAbandon applies the abandon-on-rebuffer policy to a finished
// emulated session: the log is cut at the chunk whose stall pushed
// cumulative rebuffering past the threshold — the viewer left during
// that stall, and nothing after it was watched. (The simulator backend
// enforces the policy during the run; here the downloads already
// happened, but the session's sequential determinism makes the prefix
// identical either way.) It reports whether the cut ended the session
// early.
func truncateAbandon(res *model.SessionResult, thresholdSec float64) bool {
	if thresholdSec <= 0 {
		return false
	}
	var cum float64
	for i := range res.Chunks {
		cum += res.Chunks[i].Rebuffer
		if cum >= thresholdSec {
			early := i+1 < len(res.Chunks)
			res.Chunks = res.Chunks[:i+1]
			return early
		}
	}
	return false
}
