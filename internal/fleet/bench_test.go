package fleet

import (
	"context"
	"testing"
)

// BenchmarkFleetSimSessions measures orchestration throughput on the sim
// backend (sessions/sec backs the BENCH_fleet.json baseline).
func BenchmarkFleetSimSessions(b *testing.B) {
	sc := testScenarioBench(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(sc, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var total int
	for _, p := range sc.Populations {
		total += p.Sessions
	}
	b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "sessions/s")
}

func testScenarioBench(sessions int) *Scenario {
	return &Scenario{
		Name:      "bench",
		Seed:      1,
		TracePool: TracePoolSpec{PerKind: 32},
		Populations: []Population{
			{
				Name:      "robustmpc",
				Algorithm: "RobustMPC",
				Sessions:  sessions / 2,
				TraceMix:  map[string]float64{"fcc": 1, "hsdpa": 1},
			},
			{
				Name:      "bb",
				Algorithm: "BB",
				Sessions:  sessions / 2,
				TraceMix:  map[string]float64{"fcc": 1, "hsdpa": 1},
			},
		},
	}
}
