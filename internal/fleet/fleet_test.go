package fleet

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpcdash/internal/fastmpc"
	"mpcdash/internal/obs"
)

// testScenario is a small, fast scenario: cheap algorithms, a short
// video, a compact trace pool.
func testScenario(sessions int) *Scenario {
	return &Scenario{
		Name:      "test",
		Seed:      42,
		Video:     VideoSpec{Chunks: 10, ChunkSec: 4},
		TracePool: TracePoolSpec{PerKind: 8, DurationSec: 200},
		Populations: []Population{
			{
				Name:               "rb",
				Algorithm:          "RB",
				Sessions:           sessions,
				TraceMix:           map[string]float64{"fcc": 2, "hsdpa": 1},
				Watch:              Watch{Dist: "uniform", MinChunks: 2, MaxChunks: 10},
				AbandonRebufferSec: 20,
			},
			{
				Name:      "bb",
				Algorithm: "BB",
				Sessions:  sessions / 2,
				TraceMix:  map[string]float64{"hsdpa": 1},
			},
		},
	}
}

func TestFleetRunCompletes(t *testing.T) {
	sc := testScenario(200)
	reg := obs.NewRegistry()
	f, err := New(sc, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Populations) != 2 {
		t.Fatalf("populations = %d", len(rep.Populations))
	}
	for _, p := range rep.Populations {
		if p.Launched != int64(p.Sessions) || p.Completed != int64(p.Sessions) {
			t.Errorf("%s: launched=%d completed=%d, want %d", p.Name, p.Launched, p.Completed, p.Sessions)
		}
		if p.Errors != 0 {
			t.Errorf("%s: errors = %d", p.Name, p.Errors)
		}
		if p.Chunks <= 0 || p.BitrateKbps.Mean <= 0 {
			t.Errorf("%s: empty aggregates: %+v", p.Name, p)
		}
	}
	// The churned population watches 2–10 chunks; the full-watch one
	// always 10.
	rb, bb := rep.Populations[0], rep.Populations[1]
	if rb.Chunks >= int64(rb.Sessions*10) {
		t.Errorf("churned population watched every chunk: %d", rb.Chunks)
	}
	if bb.Chunks != int64(bb.Sessions*10) {
		t.Errorf("full-watch population chunks = %d, want %d", bb.Chunks, bb.Sessions*10)
	}

	// Live metrics: per-population QoE histograms and the session
	// counters must be on /metrics.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		MetricQoEPerChunk + `_bucket{population="rb"`,
		MetricQoEPerChunk + `_bucket{population="bb"`,
		MetricLaunchedTotal + `{population="rb"} 200`,
		MetricCompletedTotal + `{population="bb"} 100`,
		MetricInflight,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The same scenario seed must produce byte-identical JSON reports:
// arrival spans, trace assignment and every aggregate are seed-derived
// and reduced in deterministic order even across differing worker
// interleavings.
func TestFleetReportDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		sc := testScenario(300)
		// Exercise the seeded arrival path too (fast: 300 sessions at
		// 100k/s is 3 ms of pacing).
		sc.Populations[0].Arrival = Arrival{Process: "poisson", RatePerSec: 100000}
		sc.Populations[1].Arrival = Arrival{Process: "ramp", RatePerSec: 100000}
		sc.LaunchRatePerSec = 200000
		sc.LaunchBurst = 64
		f, err := New(sc, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run(2)
	b := run(runtime.GOMAXPROCS(0) * 2)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ between runs of the same seed:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
	if !strings.Contains(string(a), `"arrival_span_sec"`) {
		t.Fatalf("report missing arrival span: %s", a)
	}
}

// Cancelling the context mid-run must drain gracefully: no new launches,
// in-flight sessions aggregated, Run returns promptly with ctx.Err() and
// a consistent partial report.
func TestFleetDrainOnCancel(t *testing.T) {
	sc := testScenario(50000)
	// Slow the launch rate so the run is guaranteed to still be going
	// when the cancel lands.
	sc.LaunchRatePerSec = 500
	sc.LaunchBurst = 10
	f, err := New(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = f.Run(ctx)
		close(done)
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fleet did not drain within 5s of cancellation")
	}
	if runErr != context.Canceled {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	if rep == nil {
		t.Fatal("no partial report")
	}
	var launched, completed int64
	for _, p := range rep.Populations {
		launched += p.Launched
		completed += p.Completed
		if p.Completed > p.Launched {
			t.Errorf("%s: completed %d > launched %d", p.Name, p.Completed, p.Launched)
		}
	}
	if launched >= 75000 {
		t.Errorf("launched %d sessions despite cancellation", launched)
	}
	if completed == 0 {
		t.Error("drained run aggregated nothing; expected in-flight sessions to finish")
	}
}

// Snapshot must be callable while the run is in progress and reflect a
// valid prefix aggregate.
func TestFleetSnapshotMidRun(t *testing.T) {
	sc := testScenario(2000)
	f, err := New(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		if _, err := f.Run(ctx); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	deadline := time.After(30 * time.Second)
	for {
		snaps := f.Snapshot()
		var completed int64
		for _, s := range snaps {
			completed += s.Tally.Completed
			if s.Tally.Completed > 0 && s.Tally.BitrateKbps.N != s.Tally.Completed {
				t.Fatalf("inconsistent snapshot: %d sessions, %d bitrate samples",
					s.Tally.Completed, s.Tally.BitrateKbps.N)
			}
		}
		select {
		case <-done:
			return
		case <-deadline:
			t.Fatal("run did not finish")
		default:
		}
		if completed > 0 {
			// Observed a live mid-run snapshot; let the run finish.
			<-done
			return
		}
	}
}

// The abandon policy must fire: a population on hopeless links with a
// tight abandon threshold abandons sessions, and abandoned sessions
// watch fewer chunks.
func TestFleetAbandonPolicy(t *testing.T) {
	sc := &Scenario{
		Name:      "abandon",
		Seed:      7,
		Video:     VideoSpec{LadderKbps: []float64{3000, 6000}, Chunks: 20, ChunkSec: 4},
		TracePool: TracePoolSpec{PerKind: 4, DurationSec: 400},
		Populations: []Population{{
			Name:      "impatient",
			Algorithm: "RB",
			Sessions:  50,
			// HSDPA outage dips against a 3 Mbps floor: guaranteed stalls.
			TraceMix:           map[string]float64{"hsdpa": 1},
			AbandonRebufferSec: 5,
		}},
	}
	f, err := New(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Populations[0]
	if p.Abandoned == 0 {
		t.Fatalf("no sessions abandoned on a 3–6 Mbps floor over mobile links: %+v", p)
	}
	if p.Chunks >= int64(p.Sessions*20) {
		t.Errorf("abandoned sessions still watched everything: %d chunks", p.Chunks)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"no populations", func(s *Scenario) { s.Populations = nil }},
		{"bad algorithm", func(s *Scenario) { s.Populations[0].Algorithm = "nope" }},
		{"zero sessions", func(s *Scenario) { s.Populations[0].Sessions = 0 }},
		{"bad kind", func(s *Scenario) { s.Populations[0].TraceMix = map[string]float64{"lte": 1} }},
		{"bad arrival", func(s *Scenario) { s.Populations[0].Arrival.Process = "burst" }},
		{"poisson without rate", func(s *Scenario) { s.Populations[0].Arrival = Arrival{Process: "poisson"} }},
		{"watch too long", func(s *Scenario) { s.Populations[0].Watch = Watch{Dist: "fixed", Chunks: 99} }},
		{"uniform watch inverted", func(s *Scenario) { s.Populations[0].Watch = Watch{Dist: "uniform", MinChunks: 9, MaxChunks: 3} }},
		{"duplicate names", func(s *Scenario) { s.Populations[1].Name = s.Populations[0].Name }},
		{"bad weights", func(s *Scenario) { s.Weights = "speedrun" }},
	}
	for _, tc := range cases {
		sc := testScenario(10)
		tc.mut(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := testScenario(10).Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

// TestFleetTableCacheColdWarmIdentical is the cache acceptance contract:
// with -table-cache, a cold run builds the FastMPC table and persists it,
// a warm run of the same seed loads it from disk without building, and
// both produce byte-identical report JSON.
func TestFleetTableCacheColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	t.Cleanup(func() {
		fastmpc.SetTableCacheDir("")
		fastmpc.ResetSharedTables()
	})
	scenario := func() *Scenario {
		return &Scenario{
			Name:  "cache",
			Seed:  7,
			Video: VideoSpec{Chunks: 10, ChunkSec: 4},
			// A non-default horizon gives this run a table key no other
			// test shares, so a pre-populated in-process cache cannot
			// mask a missing cold build.
			Horizon:   4,
			TracePool: TracePoolSpec{PerKind: 4, DurationSec: 120},
			Populations: []Population{
				{
					Name:      "fast",
					Algorithm: "FastMPC",
					Sessions:  30,
					TraceMix:  map[string]float64{"fcc": 1},
				},
			},
		}
	}
	run := func() []byte {
		f, err := New(scenario(), Options{TableCacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	fastmpc.ResetSharedTables() // drop entries and zero counters: a true cold start
	cold := run()
	st := fastmpc.TableCacheStats()
	if st.Builds == 0 {
		t.Fatalf("cold run did not build a table: %+v", st)
	}
	if st.DiskHits != 0 {
		t.Fatalf("cold run hit the disk cache: %+v", st)
	}

	fastmpc.ResetSharedTables() // forget the in-process table; only the disk file remains
	warm := run()
	st = fastmpc.TableCacheStats()
	if st.Builds != 0 {
		t.Fatalf("warm run rebuilt the table instead of loading it: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("warm run did not load from disk: %+v", st)
	}

	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm reports differ:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
}
