// Package fleet is the load-generation and session-orchestration layer:
// it drives tens of thousands of emulated or simulated player sessions in
// one process from a declarative scenario — per-population arrival
// processes, algorithm choice, trace mixes and churn — with admission
// control (max in-flight sessions, token-bucket launch rate), graceful
// drain on context cancellation, and streaming per-population aggregation
// whose memory stays O(populations), never O(sessions). It is the
// population-scale counterpart of the single-session evaluation in Sec 7:
// the subsystem that answers "what does RobustMPC vs. BB look like across
// 100k churning viewers?" rather than "across 100 traces".
package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/obs"
	"mpcdash/internal/runner"
	"mpcdash/internal/sim"
	"mpcdash/internal/trace"
)

// Fleet metric names on the shared registry (per-population series carry
// a population label).
const (
	MetricInflight       = "mpcdash_fleet_sessions_inflight"
	MetricLaunchedTotal  = "mpcdash_fleet_sessions_launched_total"
	MetricCompletedTotal = "mpcdash_fleet_sessions_completed_total"
	MetricAbandonedTotal = "mpcdash_fleet_sessions_abandoned_total"
	MetricErrorsTotal    = "mpcdash_fleet_sessions_errors_total"
	MetricQoEPerChunk    = "mpcdash_fleet_session_qoe_per_chunk"
	MetricRebufferSec    = "mpcdash_fleet_session_rebuffer_seconds"
)

// Backend names.
const (
	BackendSim = "sim" // in-process simulator (default)
	BackendEmu = "emu" // loopback HTTP emulation with shaped links
	BackendSvc = "svc" // simulated playback, decisions from a live abrd over HTTP
)

// Options configure a fleet run beyond what the scenario declares.
type Options struct {
	// Backend selects BackendSim (default) or BackendEmu.
	Backend string
	// Registry receives live gauges, counters and per-population QoE
	// histograms; nil disables metrics entirely.
	Registry *obs.Registry
	// Workers caps concurrent sessions per population; 0 derives it
	// from the scenario's MaxInFlight and the backend.
	Workers int
	// EmuTimeScale compresses emulated sessions (media seconds per wall
	// second); 0 selects 20.
	EmuTimeScale float64
	// TableCacheDir persists content-addressed FastMPC decision tables on
	// disk so repeated runs skip the offline enumeration. It configures
	// the process-wide fastmpc table cache; "" leaves the current setting.
	TableCacheDir string
	// SvcURL points the svc backend at an external abrd deployment; ""
	// self-hosts a decision service on 127.0.0.1:0 for the run.
	SvcURL string
}

// Fleet is one prepared scenario run: trace pool and manifest built,
// admission limits armed, aggregation ready. Snapshot may be called from
// any goroutine while Run is in progress.
type Fleet struct {
	sc       *Scenario
	opt      Options
	manifest *model.Manifest
	weights  model.Weights
	pool     map[string][]*trace.Trace

	sem      chan struct{} // admission: max in-flight sessions
	bucket   *tokenBucket  // admission: launch-rate cap
	inflight *obs.Gauge

	svc *svcEnv // decision-service wiring, svc backend only

	pops []*popState
}

// popState is the per-population orchestration state.
type popState struct {
	pop  *Population
	alg  runner.Algorithm
	seed uint64 // per-population derivation seed

	kinds []string  // trace-mix kinds, canonical order
	cumw  []float64 // cumulative normalized weights over kinds

	arr         *arrivalClock
	arrivalSpan float64 // seed-derived offset of the last planned arrival

	ot       *orderedTally
	launched atomic.Int64
	errors   atomic.Int64

	mLaunched, mCompleted, mAbandoned, mErrors *obs.Counter
	mQoE, mRebuf                               *obs.Histogram
}

// New validates the scenario and prepares a run: builds the shared
// manifest and trace pool and arms the admission limits.
func New(sc *Scenario, opt Options) (*Fleet, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	switch opt.Backend {
	case "", BackendSim:
		opt.Backend = BackendSim
	case BackendEmu:
	case BackendSvc:
		// The decision service only implements the table-lookup family.
		for i := range sc.Populations {
			p := &sc.Populations[i]
			if _, ok := svcAlgorithms[strings.ToLower(p.Algorithm)]; !ok {
				return nil, fmt.Errorf("fleet: population %q: algorithm %q has no service-side implementation (svc backend supports FastMPC, RobustMPC)",
					p.Name, p.Algorithm)
			}
		}
	default:
		return nil, fmt.Errorf("fleet: unknown backend %q", opt.Backend)
	}
	if opt.EmuTimeScale <= 0 {
		opt.EmuTimeScale = 20
	}
	if opt.TableCacheDir != "" {
		fastmpc.SetTableCacheDir(opt.TableCacheDir)
	}
	v := sc.video()
	manifest, err := model.NewCBRManifest(model.Ladder(v.LadderKbps), v.Chunks, v.ChunkSec)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	algs, err := sc.algorithms()
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		sc:       sc,
		opt:      opt,
		manifest: manifest,
		weights:  sc.weights(),
		pool:     buildTracePool(sc, manifest.Duration()),
		bucket:   newTokenBucket(sc.LaunchRatePerSec, sc.LaunchBurst),
	}
	maxInFlight := sc.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	f.sem = make(chan struct{}, maxInFlight)
	f.inflight = opt.Registry.Gauge(MetricInflight, "Sessions currently playing.")

	for i := range sc.Populations {
		p := &sc.Populations[i]
		ps := &popState{
			pop:  p,
			alg:  algs[p.Name],
			seed: splitmix64(uint64(sc.Seed) ^ splitmix64(uint64(i)+0x9E3779B9)),
			ot:   newOrderedTally(),
		}
		ps.kinds, ps.cumw = p.mixKinds()
		ps.arr = newArrivalClock(p.Arrival, int64(splitmix64(ps.seed^0xA1)>>1))
		ps.arrivalSpan = plannedArrivalSpan(p.Arrival, int64(splitmix64(ps.seed^0xA1)>>1), p.Sessions)
		reg := opt.Registry
		ps.mLaunched = reg.Counter(MetricLaunchedTotal, "Sessions admitted and started.", "population", p.Name)
		ps.mCompleted = reg.Counter(MetricCompletedTotal, "Sessions that finished playback.", "population", p.Name)
		ps.mAbandoned = reg.Counter(MetricAbandonedTotal, "Sessions whose viewer left on the abandon-rebuffer policy.", "population", p.Name)
		ps.mErrors = reg.Counter(MetricErrorsTotal, "Sessions that failed with a transport or backend error.", "population", p.Name)
		ps.mQoE = reg.Histogram(MetricQoEPerChunk, "Per-chunk-normalized session QoE (kbps-equivalent).",
			obs.LinearBuckets(-4000, 500, 17), "population", p.Name)
		ps.mRebuf = reg.Histogram(MetricRebufferSec, "Total stall seconds per session.",
			obs.DefTimeBuckets, "population", p.Name)
		f.pops = append(f.pops, ps)
	}
	return f, nil
}

// buildTracePool generates the shared pool for every dataset kind some
// population references, deterministically from the scenario seed.
func buildTracePool(sc *Scenario, videoDur float64) map[string][]*trace.Trace {
	perKind := sc.TracePool.PerKind
	if perKind <= 0 {
		perKind = 64
	}
	dur := sc.TracePool.DurationSec
	if dur <= 0 {
		dur = videoDur + 120
	}
	pool := make(map[string][]*trace.Trace)
	for i := range sc.Populations {
		kinds, _ := sc.Populations[i].mixKinds()
		for _, kind := range kinds {
			if _, ok := pool[kind]; ok {
				continue
			}
			// Seed each kind from the scenario seed and a stable kind
			// tag so adding a population never reshuffles another
			// kind's pool.
			tag := uint64(traceKinds[kind])<<32 + 0xF1EE7
			seed := int64(splitmix64(uint64(sc.Seed)^tag) >> 33)
			pool[kind] = trace.Dataset(traceKinds[kind], perKind, dur, seed)
		}
	}
	return pool
}

// Run executes the scenario: every population launches its sessions
// through the shared admission gate, aggregates stream into per-population
// tallies, and the final report is assembled when the last session ends.
// On context cancellation the fleet drains gracefully — no new sessions
// launch, in-flight sessions finish and are aggregated — and Run returns
// the partial report together with ctx's error.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	if f.opt.Backend == BackendSvc {
		env, err := f.startSvc(ctx)
		if err != nil {
			return f.buildReport(), err
		}
		f.svc = env
		defer func() {
			// Drain the self-hosted service even when the run was
			// cancelled: in-flight decides finish, then the sink flushes.
			dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
			defer cancel()
			_ = env.close(dctx)
		}()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(f.pops))
	for i, ps := range f.pops {
		wg.Add(1)
		go func(i int, ps *popState) {
			defer wg.Done()
			switch f.opt.Backend {
			case BackendEmu:
				errs[i] = f.runPopEmu(ctx, ps)
			case BackendSvc:
				errs[i] = f.runPopSvc(ctx, ps)
			default:
				errs[i] = f.runPopSim(ctx, ps)
			}
		}(i, ps)
	}
	wg.Wait()
	report := f.buildReport()
	for _, err := range errs {
		if err != nil {
			return report, err
		}
	}
	return report, nil
}

// workersPerPop bounds each population's worker pool: simulator sessions
// are CPU-bound (no point past GOMAXPROCS), emulated ones wall-clock
// bound (more concurrency, still bounded — each holds a socket pair).
// Service-backed sessions are cheap request loops, so the svc backend
// lets the admission semaphore alone set the concurrency — that is what
// "N concurrent sessions against a live abrd" means.
func (f *Fleet) workersPerPop() int {
	if f.opt.Workers > 0 {
		return f.opt.Workers
	}
	limit := runtime.GOMAXPROCS(0)
	if f.opt.Backend == BackendEmu {
		limit = 32
	}
	if f.opt.Backend == BackendSvc {
		limit = cap(f.sem)
	}
	if cap(f.sem) < limit {
		limit = cap(f.sem)
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// runPopSim drives one population through the runner's streaming dataset
// visitor: the Gate hook paces arrivals and enforces admission, the
// PerSession hook applies the per-viewer watch duration and abandon
// policy, and each outcome is reduced to sessionStats on the spot.
func (f *Fleet) runPopSim(ctx context.Context, ps *popState) error {
	r := runner.New(f.manifest)
	r.Weights = f.weights
	r.Sim.BufferMax = f.sc.bufferMax()
	r.Sim.Horizon = f.sc.horizon()
	r.Normalize = false
	r.Workers = f.workersPerPop()
	if f.opt.Registry != nil {
		r.Obs = obs.NewRecorder(f.opt.Registry, nil)
	}
	r.Gate = func(ctx context.Context, session int) (func(), error) {
		return f.admit(ctx, ps)
	}
	r.PerSession = func(session int, cfg *sim.Config) {
		cfg.MaxChunks = ps.watchFor(session, f.manifest.ChunkCount)
		cfg.AbandonRebuffer = ps.pop.AbandonRebufferSec
	}
	// Per-session trace assignment: pointers into the shared pool, the
	// only per-session allocation the whole run retains.
	assigned := make([]*trace.Trace, ps.pop.Sessions)
	for i := range assigned {
		assigned[i] = ps.traceFor(i, f.pool)
	}
	return r.RunDatasetFunc(ctx, ps.alg, assigned, func(o runner.Outcome) {
		watched := ps.watchFor(o.Session, f.manifest.ChunkCount)
		f.complete(ps, sessionStats{
			chunks:   len(o.Result.Chunks),
			qoe:      o.QoE,
			bitrate:  o.Metrics.AvgBitrate,
			rebuffer: o.Metrics.RebufferTime,
			switches: float64(o.Metrics.Switches),
			startup:  o.Metrics.StartupDelay,
			abandoned: ps.pop.AbandonRebufferSec > 0 &&
				o.Metrics.RebufferTime >= ps.pop.AbandonRebufferSec &&
				len(o.Result.Chunks) < watched,
		}, o.Session)
	})
}

// admit is the launch gate every session passes: arrival-process pacing,
// then the token bucket, then an in-flight slot. The returned done
// callback releases the slot.
func (f *Fleet) admit(ctx context.Context, ps *popState) (func(), error) {
	if err := ps.arr.wait(ctx); err != nil {
		return nil, err
	}
	if err := f.bucket.take(ctx); err != nil {
		return nil, err
	}
	select {
	case f.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	ps.launched.Add(1)
	ps.mLaunched.Inc()
	f.inflight.Add(1)
	return func() {
		<-f.sem
		f.inflight.Add(-1)
	}, nil
}

// complete streams one finished session into the population aggregate
// and the live metrics.
func (f *Fleet) complete(ps *popState, s sessionStats, session int) {
	ps.mCompleted.Inc()
	if s.abandoned {
		ps.mAbandoned.Inc()
	}
	if s.chunks > 0 {
		ps.mQoE.Observe(s.qoe / float64(s.chunks))
	}
	ps.mRebuf.Observe(s.rebuffer)
	ps.ot.add(session, s)
}

// traceFor deterministically assigns session i a trace: the mix picks the
// kind, a second hash stream the pool index. Assignment is a pure
// function of (population seed, session index), independent of execution
// order.
func (ps *popState) traceFor(i int, pool map[string][]*trace.Trace) *trace.Trace {
	kind := ps.kinds[0]
	if len(ps.kinds) > 1 {
		u := sessionU01(ps.seed, i, 1)
		for k, cum := range ps.cumw {
			if u < cum {
				kind = ps.kinds[k]
				break
			}
			kind = ps.kinds[k]
		}
	}
	traces := pool[kind]
	idx := int(sessionU01(ps.seed, i, 2) * float64(len(traces)))
	if idx >= len(traces) {
		idx = len(traces) - 1
	}
	return traces[idx]
}

// watchFor deterministically draws session i's watch duration in chunks.
func (ps *popState) watchFor(i, videoChunks int) int {
	switch ps.pop.Watch.Dist {
	case "fixed":
		return ps.pop.Watch.Chunks
	case "uniform":
		lo, hi := ps.pop.Watch.MinChunks, ps.pop.Watch.MaxChunks
		n := lo + int(sessionU01(ps.seed, i, 3)*float64(hi-lo+1))
		if n > hi {
			n = hi
		}
		return n
	default: // "", "full"
		return videoChunks
	}
}

// PopulationSnapshot is a point-in-time view of one population mid-run.
type PopulationSnapshot struct {
	Name      string
	Algorithm string
	Sessions  int   // requested
	Launched  int64 // admitted so far
	Errors    int64
	Tally     *Tally // deep copy; safe to inspect while the run continues
}

// Snapshot returns a consistent per-population view of the run so far;
// it is safe to call concurrently with Run.
func (f *Fleet) Snapshot() []PopulationSnapshot {
	out := make([]PopulationSnapshot, len(f.pops))
	for i, ps := range f.pops {
		out[i] = PopulationSnapshot{
			Name:      ps.pop.Name,
			Algorithm: ps.alg.Name,
			Sessions:  ps.pop.Sessions,
			Launched:  ps.launched.Load(),
			Errors:    ps.errors.Load(),
			Tally:     ps.ot.snapshot(),
		}
	}
	return out
}

// ---- seed derivation ------------------------------------------------

// splitmix64 is the SplitMix64 mixing function: a high-quality, stateless
// 64-bit hash used to derive independent per-population and per-session
// random streams from one scenario seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sessionU01 derives a uniform [0,1) value for (session, stream) from the
// population seed — stateless, so any worker can evaluate any session's
// draw without coordination.
func sessionU01(seed uint64, session int, stream uint64) float64 {
	v := splitmix64(seed ^ (uint64(session)+1)*0x9E3779B97F4A7C15 ^ stream*0xD1B54A32D192ED03)
	return float64(v>>11) / (1 << 53)
}

// ---- arrival pacing and admission ----------------------------------

// arrivalClock paces session launches according to the population's
// arrival process. Gaps are drawn from a seeded sequential RNG under the
// lock; because arrival offsets are cumulative, the total span is the sum
// of the drawn gaps and therefore seed-determined regardless of which
// worker consumes which draw.
type arrivalClock struct {
	mu   sync.Mutex
	rng  *rand.Rand
	proc string
	rate float64
	next time.Time
}

func newArrivalClock(a Arrival, seed int64) *arrivalClock {
	return &arrivalClock{
		rng:  rand.New(rand.NewSource(seed)),
		proc: a.Process,
		rate: a.RatePerSec,
	}
}

// gap draws the next inter-arrival time in seconds.
func (a *arrivalClock) gap() float64 {
	switch a.proc {
	case "poisson":
		return a.rng.ExpFloat64() / a.rate
	case "ramp":
		return 1 / a.rate
	default: // "", "asap"
		return 0
	}
}

// wait blocks until the caller's arrival instant (or ctx cancellation).
func (a *arrivalClock) wait(ctx context.Context) error {
	if a.proc == "" || a.proc == "asap" {
		return ctx.Err()
	}
	a.mu.Lock()
	now := time.Now()
	if a.next.IsZero() {
		a.next = now
	}
	at := a.next
	a.next = at.Add(time.Duration(a.gap() * float64(time.Second)))
	a.mu.Unlock()
	return sleepUntil(ctx, at)
}

// plannedArrivalSpan computes the seed-derived offset of the last arrival
// (seconds after the first) — the same draws wait() will consume, summed
// without running anything.
func plannedArrivalSpan(a Arrival, seed int64, sessions int) float64 {
	if sessions <= 1 {
		return 0
	}
	switch a.Process {
	case "ramp":
		return float64(sessions-1) / a.RatePerSec
	case "poisson":
		rng := rand.New(rand.NewSource(seed))
		var span float64
		for i := 0; i < sessions-1; i++ {
			span += rng.ExpFloat64() / a.RatePerSec
		}
		return span
	default:
		return 0
	}
}

// sleepUntil sleeps until t or ctx cancellation.
func sleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tokenBucket caps the aggregate launch rate: rate tokens per second up
// to burst. A nil/unlimited bucket admits immediately. Waiters reserve
// their token (tokens may go negative), so admissions are spaced even
// under contention.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(ratePerSec float64, burst int) *tokenBucket {
	if ratePerSec <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &tokenBucket{rate: ratePerSec, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token, sleeping until the bucket refills if needed.
func (b *tokenBucket) take(ctx context.Context) error {
	if b == nil {
		return ctx.Err()
	}
	b.mu.Lock()
	now := time.Now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens--
	deficit := -b.tokens
	b.mu.Unlock()
	if deficit <= 0 {
		return ctx.Err()
	}
	return sleepUntil(ctx, now.Add(time.Duration(deficit/b.rate*float64(time.Second))))
}
