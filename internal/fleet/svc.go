package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/abrsvc"
	"mpcdash/internal/model"
	"mpcdash/internal/sim"
)

// The svc backend plays each session against a live ABR decision service
// over loopback HTTP: playback is the deterministic trace-driven simulator
// (identical buffer/timing arithmetic to the sim backend), but every
// per-chunk decision is a POST /v1/decide round trip to an abrd server —
// the control plane split the service exists for. With Options.SvcURL
// empty the fleet self-hosts an abrsvc.Server on 127.0.0.1:0 for the
// run's duration; pointing SvcURL at an external abrd load-tests that
// deployment instead.
//
// Determinism: the predictor state lives server-side (each registered
// session owns an ErrorTracked harmonic-mean predictor) and decide
// requests are idempotent by chunk index, so a session's decision
// sequence is a pure function of its trace — same-seed runs reproduce
// byte-identical per-session sequences even across shed/retry storms.
// Like the emu backend, a failed session counts on the errors series
// rather than aborting the population.

// svcAlgorithms maps fleet algorithm names onto the service's decision
// rules. Only the table-lookup family exists server-side: the service is
// FastMPC-as-a-service, and "RobustMPC" rides the same table through the
// error-adjusted lower bound (Theorem 1).
var svcAlgorithms = map[string]bool{ // name (lower-case) → robust
	"fastmpc":   false,
	"robustmpc": true,
}

// SvcDemoScenario is the built-in scenario for the svc backend: FastMPC
// and RobustMPC populations (the two rules the decision service
// implements) arriving all at once over a mixed broadband/mobile trace
// pool, with MaxInFlight set to the full session count so the whole
// population plays concurrently against the service — the `make
// svc-demo` load shape.
func SvcDemoScenario(sessions int) *Scenario {
	if sessions < 2 {
		sessions = 2
	}
	half := sessions / 2
	return &Scenario{
		Name:        "svc-demo",
		Seed:        1,
		Video:       VideoSpec{Chunks: 65, ChunkSec: 4},
		TracePool:   TracePoolSpec{PerKind: 64},
		MaxInFlight: sessions,
		Populations: []Population{
			{
				Name:      "fastmpc",
				Algorithm: "FastMPC",
				Sessions:  sessions - half,
				TraceMix:  map[string]float64{"fcc": 1, "hsdpa": 1},
			},
			{
				Name:      "robustmpc",
				Algorithm: "RobustMPC",
				Sessions:  half,
				TraceMix:  map[string]float64{"fcc": 1, "hsdpa": 1},
			},
		},
	}
}

// svcEnv is the per-run service wiring: one shared client, and the
// self-hosted server when no external URL was given.
type svcEnv struct {
	client *abrsvc.Client
	server *abrsvc.Server // nil when driving an external abrd
}

// startSvc prepares the decision-service environment for a run.
func (f *Fleet) startSvc(ctx context.Context) (*svcEnv, error) {
	if f.opt.SvcURL != "" {
		return &svcEnv{client: abrsvc.NewClient(f.opt.SvcURL)}, nil
	}
	var sessions int
	for i := range f.sc.Populations {
		sessions += f.sc.Populations[i].Sessions
	}
	// Self-hosted sizing: every resident session must fit, and the decide
	// path must absorb cap(f.sem) concurrent players without shedding
	// becoming the steady state — a deep queue with a generous wait keeps
	// 429s an overload signal rather than a retry storm.
	svc := abrsvc.New(abrsvc.Config{
		MaxSessions: sessions + cap(f.sem) + 1,
		MaxInFlight: 0, // 4×GOMAXPROCS
		QueueDepth:  4096,
		QueueWait:   500 * time.Millisecond,
		Registry:    f.opt.Registry,
	})
	srv, err := svc.Start("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: self-hosting decision service: %w", err)
	}
	return &svcEnv{client: abrsvc.NewClient(srv.URL()), server: srv}, nil
}

// close shuts the self-hosted server down (draining in-flight decides)
// and releases the client's connections.
func (e *svcEnv) close(ctx context.Context) error {
	e.client.CloseIdle()
	if e.server == nil {
		return nil
	}
	return e.server.Shutdown(ctx)
}

// svcSessionHook, when non-nil, receives every completed svc session's
// log before aggregation. Tests use it to capture per-session decision
// sequences; it must be safe for concurrent calls.
var svcSessionHook func(pop string, session int, res *model.SessionResult)

// runPopSvc drives one population through the decision service with the
// same worker-pool shape as the emu backend: per-session failures count
// on the errors series, only cancellation stops the population.
func (f *Fleet) runPopSvc(ctx context.Context, ps *popState) error {
	workers := f.workersPerPop()
	if workers > ps.pop.Sessions {
		workers = ps.pop.Sessions
	}
	var (
		wg       sync.WaitGroup
		idx      = make(chan int)
		stop     = make(chan struct{})
		stopOnce sync.Once
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				done, err := f.admit(ctx, ps)
				if err != nil {
					fail(err)
					continue
				}
				st, err := f.playSvcSession(ctx, ps, i)
				done()
				if err != nil {
					if ctx.Err() != nil {
						fail(ctx.Err())
						continue
					}
					ps.errors.Add(1)
					ps.mErrors.Inc()
					continue
				}
				f.complete(ps, st, i)
			}
		}()
	}
dispatch:
	for i := 0; i < ps.pop.Sessions; i++ {
		select {
		case idx <- i:
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// playSvcSession registers one session with the service, plays it through
// the simulator with the HTTP-backed controller, and deletes it. Every
// session registers the full video spec — watch truncation happens via
// sim.Config.MaxChunks — so all sessions of a scenario share one decision
// table server-side.
func (f *Fleet) playSvcSession(ctx context.Context, ps *popState, session int) (sessionStats, error) {
	v := f.sc.video()
	id := fmt.Sprintf("%s.%s.%d.%d", f.sc.Name, ps.pop.Name, f.sc.Seed, session)
	req := abrsvc.SessionRequest{
		ID: id,
		Config: abrsvc.SessionConfig{
			LadderKbps:   v.LadderKbps,
			Chunks:       v.Chunks,
			ChunkSec:     v.ChunkSec,
			Weights:      strings.ToLower(f.sc.Weights),
			BufferMaxSec: f.sc.BufferMaxSec,
			Horizon:      f.sc.Horizon,
			Robust:       svcAlgorithms[strings.ToLower(ps.alg.Name)],
		},
	}
	if _, err := f.svc.client.Register(ctx, req); err != nil {
		// A crashed prior run against an external abrd can leave the ID
		// resident until TTL eviction; reclaim it once.
		var apiErr *abrsvc.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 409 {
			return sessionStats{}, err
		}
		if derr := f.svc.client.Delete(ctx, id); derr != nil {
			return sessionStats{}, err
		}
		if _, rerr := f.svc.client.Register(ctx, req); rerr != nil {
			return sessionStats{}, rerr
		}
	}
	defer func() { _ = f.svc.client.Delete(context.WithoutCancel(ctx), id) }()

	probe := &svcProbe{}
	ctrl := &svcController{
		ctx:     ctx,
		client:  f.svc.client,
		session: id,
		name:    ps.alg.Name,
		probe:   probe,
		retries: svcDecideRetries,
	}
	cfg := sim.Config{
		BufferMax:       f.sc.bufferMax(),
		Horizon:         f.sc.horizon(),
		Startup:         sim.StartupFirstChunk,
		MaxChunks:       ps.watchFor(session, f.manifest.ChunkCount),
		AbandonRebuffer: ps.pop.AbandonRebufferSec,
	}
	res, err := sim.Run(f.manifest, ps.traceFor(session, f.pool), ctrl, probe, cfg)
	if err != nil {
		return sessionStats{}, err
	}
	if ctrl.err != nil {
		return sessionStats{}, ctrl.err
	}
	if svcSessionHook != nil {
		svcSessionHook(ps.pop.Name, session, res)
	}
	metrics := res.ComputeMetrics(model.QIdentity)
	return sessionStats{
		chunks:   len(res.Chunks),
		qoe:      res.QoE(f.weights, model.QIdentity),
		bitrate:  metrics.AvgBitrate,
		rebuffer: metrics.RebufferTime,
		switches: float64(metrics.Switches),
		startup:  metrics.StartupDelay,
		abandoned: ps.pop.AbandonRebufferSec > 0 &&
			metrics.RebufferTime >= ps.pop.AbandonRebufferSec &&
			len(res.Chunks) < cfg.MaxChunks,
	}, nil
}

// svcDecideRetries bounds the shed-retry protocol per decision; with the
// client's capped exponential backoff this rides out about two seconds of
// sustained overload before the session is failed.
const svcDecideRetries = 8

// svcProbe is the client-side stand-in for the predictor: the simulator
// Observes realized throughputs into it and the controller drains them
// onto the wire, where the session's real (server-side) predictor
// consumes them. Predict returns nil — the forecast happens server-side.
type svcProbe struct {
	samples []float64
}

func (p *svcProbe) Name() string            { return "svc" }
func (p *svcProbe) Observe(kbps float64)    { p.samples = append(p.samples, kbps) }
func (p *svcProbe) Predict(n int) []float64 { return nil }

// svcController is an abr.Controller whose Decide is a round trip to the
// decision service. Transport errors latch into err (Decide cannot fail
// in-band); the session runner checks it after sim.Run returns.
type svcController struct {
	ctx     context.Context
	client  *abrsvc.Client
	session string
	name    string
	probe   *svcProbe
	retries int
	err     error
}

func (c *svcController) Name() string { return c.name }

func (c *svcController) Decide(st abr.State) abr.Decision {
	if c.err != nil {
		return abr.Decision{}
	}
	samples := append([]float64(nil), c.probe.samples...)
	c.probe.samples = c.probe.samples[:0]
	resp, err := c.client.DecideRetry(c.ctx, abrsvc.DecideRequest{
		Session:           c.session,
		Chunk:             st.Chunk,
		Buffer:            st.Buffer,
		PrevLevel:         st.Prev,
		ThroughputSamples: samples,
	}, c.retries)
	if err != nil {
		c.err = fmt.Errorf("fleet: decide chunk %d of %s: %w", st.Chunk, c.session, err)
		return abr.Decision{}
	}
	return abr.Decision{Level: resp.Level}
}
