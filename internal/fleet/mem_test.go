package fleet

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// peakHeapDuring runs fn while sampling runtime heap use, and returns
// the peak live-heap growth over the pre-run baseline.
func peakHeapDuring(t *testing.T, fn func()) uint64 {
	t.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			var s runtime.MemStats
			runtime.ReadMemStats(&s)
			if s.HeapAlloc > peak.Load() {
				peak.Store(s.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	fn()
	close(stop)
	<-sampled
	if p := peak.Load(); p > base {
		return p - base
	}
	return 0
}

// Streaming aggregation means memory is O(populations + trace pool +
// in-flight sessions), not O(sessions): a 10x larger scenario must not
// use anywhere near 10x the peak heap. The 2x bound leaves room for GC
// timing noise while ruling out any per-session retention.
func TestFleetMemoryIndependentOfSessionCount(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile run")
	}
	run := func(sessions int) {
		sc := testScenario(sessions)
		sc.MaxInFlight = 64
		f, err := New(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up pass so one-time allocations (algorithm tables, runtime
	// growth) don't count against either measurement.
	run(200)

	peak1k := peakHeapDuring(t, func() { run(1000) })
	peak10k := peakHeapDuring(t, func() { run(10000) })
	t.Logf("peak heap growth: 1k sessions = %d KiB, 10k sessions = %d KiB", peak1k/1024, peak10k/1024)

	// Floor the denominator so a tiny 1k peak (fast GC) can't make the
	// ratio spuriously huge.
	const floor = 4 << 20
	denom := peak1k
	if denom < floor {
		denom = floor
	}
	if peak10k > 2*denom {
		t.Fatalf("peak heap grew with session count: 1k=%d B, 10k=%d B (>2x)", peak1k, peak10k)
	}
}
