package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// Report is the end-of-run summary: one entry per population, in
// scenario order. Every number in it derives from the scenario seed —
// counts exactly, aggregates through the order-independent reduction —
// so marshaling the report of the same scenario twice yields identical
// bytes (the CLI's determinism guarantee; wall-clock timing is therefore
// deliberately absent).
type Report struct {
	Scenario    string             `json:"scenario"`
	Seed        int64              `json:"seed"`
	Backend     string             `json:"backend"`
	Populations []PopulationReport `json:"populations"`
}

// Moments summarizes a Welford accumulator (zeros when empty).
type Moments struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Quantiles are histogram-estimated percentiles (zeros when empty).
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// PopulationReport is one population's aggregate outcome.
type PopulationReport struct {
	Name           string  `json:"name"`
	Algorithm      string  `json:"algorithm"`
	Sessions       int     `json:"sessions"`
	Launched       int64   `json:"launched"`
	Completed      int64   `json:"completed"`
	Abandoned      int64   `json:"abandoned"`
	Errors         int64   `json:"errors"`
	Chunks         int64   `json:"chunks"`
	ArrivalSpanSec float64 `json:"arrival_span_sec"`

	QoE          Moments   `json:"qoe"`
	QoEPerChunk  Moments   `json:"qoe_per_chunk"`
	QoEQuantiles Quantiles `json:"qoe_per_chunk_quantiles"`

	BitrateKbps      Moments   `json:"bitrate_kbps"`
	RebufferSec      Moments   `json:"rebuffer_sec"`
	RebufferQuantile Quantiles `json:"rebuffer_sec_quantiles"`

	Switches   Moments `json:"switches"`
	StartupSec Moments `json:"startup_sec"`
}

func momentsOf(w Welford) Moments {
	if w.N == 0 {
		return Moments{}
	}
	return Moments{Mean: w.Mean, Std: w.Std(), Min: w.Min, Max: w.Max}
}

func quantilesOf(h *Hist) Quantiles {
	if h.N == 0 {
		return Quantiles{}
	}
	return Quantiles{P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}
}

// buildReport assembles the report from the per-population tallies.
func (f *Fleet) buildReport() *Report {
	r := &Report{
		Scenario: f.sc.Name,
		Seed:     f.sc.Seed,
		Backend:  f.opt.Backend,
	}
	for _, ps := range f.pops {
		t := ps.ot.snapshot()
		r.Populations = append(r.Populations, PopulationReport{
			Name:           ps.pop.Name,
			Algorithm:      ps.alg.Name,
			Sessions:       ps.pop.Sessions,
			Launched:       ps.launched.Load(),
			Completed:      t.Completed,
			Abandoned:      t.Abandoned,
			Errors:         ps.errors.Load(),
			Chunks:         t.Chunks,
			ArrivalSpanSec: ps.arrivalSpan,

			QoE:          momentsOf(t.QoE),
			QoEPerChunk:  momentsOf(t.QoEPerChunk),
			QoEQuantiles: quantilesOf(t.QoEHist),

			BitrateKbps:      momentsOf(t.BitrateKbps),
			RebufferSec:      momentsOf(t.RebufferSec),
			RebufferQuantile: quantilesOf(t.RebufHist),

			Switches:   momentsOf(t.Switches),
			StartupSec: momentsOf(t.StartupSec),
		})
	}
	return r
}

// JSON renders the report as indented, key-stable JSON.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("fleet: marshaling report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteTable renders the per-population summary as an aligned text table.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "POPULATION\tALGORITHM\tSESSIONS\tDONE\tABANDONED\tQOE/CHUNK\tP95 REBUF(s)\tBITRATE(kbps)\tSWITCHES")
	for _, p := range r.Populations {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f ± %.0f\t%.2f\t%.0f\t%.1f\n",
			p.Name, p.Algorithm, p.Sessions, p.Completed, p.Abandoned,
			p.QoEPerChunk.Mean, p.QoEPerChunk.Std,
			p.RebufferQuantile.P95,
			p.BitrateKbps.Mean,
			p.Switches.Mean)
	}
	return tw.Flush()
}
