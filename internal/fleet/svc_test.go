package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"mpcdash/internal/model"
)

// svcTestScenario is a compact svc-backend scenario: both decision rules
// the service implements, short video, watch churn on one population.
func svcTestScenario(sessions int) *Scenario {
	return &Scenario{
		Name:        "svc-test",
		Seed:        7,
		Video:       VideoSpec{Chunks: 12, ChunkSec: 4},
		TracePool:   TracePoolSpec{PerKind: 8, DurationSec: 200},
		MaxInFlight: sessions,
		Populations: []Population{
			{
				Name:      "fastmpc",
				Algorithm: "FastMPC",
				Sessions:  sessions,
				TraceMix:  map[string]float64{"fcc": 2, "hsdpa": 1},
				Watch:     Watch{Dist: "uniform", MinChunks: 4, MaxChunks: 12},
			},
			{
				Name:      "robustmpc",
				Algorithm: "RobustMPC",
				Sessions:  sessions / 2,
				TraceMix:  map[string]float64{"hsdpa": 1},
			},
		},
	}
}

// runSvcCapture runs sc on the svc backend and returns every session's
// decision sequence keyed by population/session index.
func runSvcCapture(t *testing.T, sc *Scenario) (*Report, map[string][]int) {
	t.Helper()
	var mu sync.Mutex
	seqs := make(map[string][]int)
	svcSessionHook = func(pop string, session int, res *model.SessionResult) {
		levels := make([]int, len(res.Chunks))
		for i, c := range res.Chunks {
			levels[i] = c.Level
		}
		mu.Lock()
		seqs[fmt.Sprintf("%s/%d", pop, session)] = levels
		mu.Unlock()
	}
	defer func() { svcSessionHook = nil }()

	f, err := New(sc, Options{Backend: BackendSvc})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, seqs
}

// TestSvcBackendDeterministic is the svc backend's contract test: a
// same-seed run against a fresh service reproduces byte-identical
// per-session decision sequences, with every session completed and zero
// errors — the predictor state lives server-side, yet determinism holds
// because each session's decisions are a pure function of its trace.
func TestSvcBackendDeterministic(t *testing.T) {
	sc := svcTestScenario(24)
	rep1, run1 := runSvcCapture(t, sc)

	var total int64
	for _, p := range rep1.Populations {
		total += p.Completed
		if p.Errors != 0 {
			t.Errorf("population %s: %d session errors, want 0", p.Name, p.Errors)
		}
		if p.Completed != int64(p.Sessions) {
			t.Errorf("population %s: completed %d of %d sessions", p.Name, p.Completed, p.Sessions)
		}
	}
	if want := int64(24 + 12); total != want {
		t.Fatalf("completed %d sessions, want %d", total, want)
	}
	if len(run1) != int(total) {
		t.Fatalf("hook captured %d sessions, want %d", len(run1), total)
	}

	_, run2 := runSvcCapture(t, svcTestScenario(24))
	keys := make([]string, 0, len(run1))
	for k := range run1 {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if fmt.Sprint(run1[k]) != fmt.Sprint(run2[k]) {
			t.Errorf("session %s: run 1 decided %v, run 2 %v — svc backend not deterministic",
				k, run1[k], run2[k])
		}
	}

	// Watch churn must show up as truncated sessions (MaxChunks < video
	// length for some), proving truncation happens client-side while the
	// service still serves the full-video table.
	short := 0
	for k, levels := range run1 {
		if len(levels) < 12 {
			short++
		}
		if len(levels) == 0 {
			t.Errorf("session %s played no chunks", k)
		}
	}
	if short == 0 {
		t.Error("uniform 4..12 watch distribution produced no truncated sessions")
	}
}
