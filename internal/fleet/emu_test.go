package fleet

import (
	"context"
	"testing"
)

// Smoke test for the emulated backend: a handful of sessions over real
// loopback HTTP with heavy time compression must complete and aggregate.
func TestFleetEmuBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns loopback servers")
	}
	sc := &Scenario{
		Name:      "emu-smoke",
		Seed:      3,
		Video:     VideoSpec{Chunks: 6, ChunkSec: 4},
		TracePool: TracePoolSpec{PerKind: 4, DurationSec: 120},
		Populations: []Population{{
			Name:      "emu",
			Algorithm: "RB",
			Sessions:  6,
			TraceMix:  map[string]float64{"fcc": 1},
			Watch:     Watch{Dist: "fixed", Chunks: 4},
		}},
	}
	f, err := New(sc, Options{Backend: BackendEmu, EmuTimeScale: 50})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Populations[0]
	if p.Completed != 6 || p.Errors != 0 {
		t.Fatalf("emu backend: completed=%d errors=%d, want 6/0", p.Completed, p.Errors)
	}
	if p.Chunks != 6*4 {
		t.Errorf("chunks = %d, want %d (fixed 4-chunk watch)", p.Chunks, 6*4)
	}
	if p.BitrateKbps.Mean <= 0 {
		t.Errorf("no bitrate aggregated: %+v", p)
	}
}
