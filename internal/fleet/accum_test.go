package fleet

import (
	"math"
	"math/rand"
	"testing"

	"mpcdash/internal/stats"
)

// Welford must agree with the two-pass reference statistics on arbitrary
// data.
func TestWelfordMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*1e3 + 500
			w.Observe(xs[i])
		}
		wantMean, wantStd := stats.Mean(xs), stats.Stddev(xs)
		if math.Abs(w.Mean-wantMean) > 1e-9*math.Max(1, math.Abs(wantMean)) {
			t.Fatalf("trial %d: mean %v, want %v", trial, w.Mean, wantMean)
		}
		if math.Abs(w.Std()-wantStd) > 1e-9*math.Max(1, wantStd) {
			t.Fatalf("trial %d: std %v, want %v", trial, w.Std(), wantStd)
		}
		if w.Min != stats.Quantile(xs, 0) || w.Max != stats.Quantile(xs, 1) {
			t.Fatalf("trial %d: extremes [%v,%v]", trial, w.Min, w.Max)
		}
	}
}

// Merging two accumulators must equal accumulating the concatenation,
// and merge order must not matter beyond float tolerance.
func TestWelfordMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var a, b, all Welford
		na, nb := rng.Intn(500), 1+rng.Intn(500)
		for i := 0; i < na; i++ {
			x := rng.ExpFloat64() * 100
			a.Observe(x)
			all.Observe(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.ExpFloat64() * 100
			b.Observe(x)
			all.Observe(x)
		}
		ab, ba := a, b
		ab.Merge(b)
		ba.Merge(a)
		for _, m := range []Welford{ab, ba} {
			if m.N != all.N {
				t.Fatalf("trial %d: N = %d, want %d", trial, m.N, all.N)
			}
			if math.Abs(m.Mean-all.Mean) > 1e-9*math.Max(1, math.Abs(all.Mean)) {
				t.Fatalf("trial %d: merged mean %v, want %v", trial, m.Mean, all.Mean)
			}
			if math.Abs(m.M2-all.M2) > 1e-6*math.Max(1, all.M2) {
				t.Fatalf("trial %d: merged M2 %v, want %v", trial, m.M2, all.M2)
			}
		}
		if ab.Mean != ba.Mean || ab.N != ba.N {
			t.Fatalf("trial %d: merge(A,B) != merge(B,A): %+v vs %+v", trial, ab, ba)
		}
		if math.Abs(ab.M2-ba.M2) > 1e-9*math.Max(1, ab.M2) {
			t.Fatalf("trial %d: merge(A,B).M2 %v vs merge(B,A).M2 %v", trial, ab.M2, ba.M2)
		}
	}
}

// Histogram quantiles must be within one bin width of the exact
// quantiles for in-range data.
func TestHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHist(0, 1, 100)
	binWidth := 0.01
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
		h.Observe(xs[i])
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := stats.Quantile(xs, q)
		if math.Abs(got-want) > binWidth {
			t.Errorf("q=%v: histogram %v vs exact %v (bound %v)", q, got, want, binWidth)
		}
	}
}

// Out-of-range samples clamp tail quantiles to the layout edges instead
// of inventing values.
func TestHistTailClamping(t *testing.T) {
	h := NewHist(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(-5) // underflow
	}
	for i := 0; i < 10; i++ {
		h.Observe(100) // overflow
	}
	if got := h.Quantile(0.05); got != 0 {
		t.Errorf("underflow quantile = %v, want 0 (Lo)", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %v, want 10 (Hi)", got)
	}
	if h.Under != 10 || h.Over != 10 || h.N != 20 {
		t.Errorf("tails: under=%d over=%d n=%d", h.Under, h.Over, h.N)
	}
}

func TestHistMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := NewHist(-100, 100, 64), NewHist(-100, 100, 64)
	for i := 0; i < 3000; i++ {
		a.Observe(rng.NormFloat64() * 40)
		b.Observe(rng.NormFloat64()*40 + 20)
	}
	ab, ba := a.Clone(), b.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	if ab.N != ba.N || ab.Under != ba.Under || ab.Over != ba.Over {
		t.Fatalf("merge totals differ: %+v vs %+v", ab, ba)
	}
	for i := range ab.Bins {
		if ab.Bins[i] != ba.Bins[i] {
			t.Fatalf("bin %d: %d vs %d", i, ab.Bins[i], ba.Bins[i])
		}
	}
	if q1, q2 := ab.Quantile(0.5), ba.Quantile(0.5); q1 != q2 {
		t.Fatalf("median after merge: %v vs %v", q1, q2)
	}
}

func TestHistMergeRejectsLayoutMismatch(t *testing.T) {
	a, b := NewHist(0, 1, 10), NewHist(0, 1, 20)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different layouts should error")
	}
}

// Tally merge must equal a single tally over the union of sessions.
func TestTallyMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func() sessionStats {
		return sessionStats{
			chunks:    1 + rng.Intn(65),
			qoe:       rng.NormFloat64() * 1e4,
			bitrate:   300 + rng.Float64()*2700,
			rebuffer:  rng.ExpFloat64() * 5,
			switches:  float64(rng.Intn(20)),
			startup:   rng.Float64() * 3,
			abandoned: rng.Intn(4) == 0,
		}
	}
	a, b, all := NewTally(), NewTally(), NewTally()
	var sessions []sessionStats
	for i := 0; i < 400; i++ {
		sessions = append(sessions, mk())
	}
	for i, s := range sessions {
		if i < 150 {
			a.observe(s)
		} else {
			b.observe(s)
		}
		all.observe(s)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Completed != all.Completed || a.Abandoned != all.Abandoned || a.Chunks != all.Chunks {
		t.Fatalf("counts: %+v vs %+v", a, all)
	}
	if math.Abs(a.QoE.Mean-all.QoE.Mean) > 1e-9*math.Max(1, math.Abs(all.QoE.Mean)) {
		t.Fatalf("QoE mean %v vs %v", a.QoE.Mean, all.QoE.Mean)
	}
	if a.QoEHist.N != all.QoEHist.N {
		t.Fatalf("hist N %d vs %d", a.QoEHist.N, all.QoEHist.N)
	}
}

// The ordered tally must produce the exact same floats as a serial
// in-order reduction no matter how badly the submissions are shuffled.
func TestOrderedTallyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 500
	sessions := make([]sessionStats, n)
	for i := range sessions {
		sessions[i] = sessionStats{chunks: 10, qoe: rng.NormFloat64() * 1e4, bitrate: rng.Float64() * 3000}
	}
	serial := NewTally()
	for _, s := range sessions {
		serial.observe(s)
	}
	ot := newOrderedTally()
	for _, i := range rng.Perm(n) {
		ot.add(i, sessions[i])
	}
	got := ot.snapshot()
	if got.QoE.Mean != serial.QoE.Mean || got.QoE.M2 != serial.QoE.M2 {
		t.Fatalf("shuffled reduction differs: mean %v vs %v, M2 %v vs %v",
			got.QoE.Mean, serial.QoE.Mean, got.QoE.M2, serial.QoE.M2)
	}
	if got.Completed != int64(n) {
		t.Fatalf("completed = %d, want %d", got.Completed, n)
	}
	if len(ot.pending) != 0 {
		t.Fatalf("pending not drained: %d", len(ot.pending))
	}
}
