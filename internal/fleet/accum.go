package fleet

import (
	"fmt"
	"math"
	"sync"
)

// This file is the streaming-aggregation layer: per-population statistics
// that stay O(populations) in memory no matter how many sessions a
// scenario launches. Means and variances use Welford's algorithm (with
// Chan's parallel-merge formula), quantiles a fixed-bin histogram, and
// the orderedTally at the bottom makes the floating-point reduction
// deterministic despite out-of-order worker completion.

// Welford accumulates count/mean/M2 (plus exact extremes) in one pass.
// It is mergeable: two accumulators built from disjoint streams combine
// into the accumulator of the concatenated stream.
type Welford struct {
	N    int64
	Mean float64
	M2   float64 // sum of squared deviations from the running mean
	Min  float64
	Max  float64
}

// Observe folds one sample in.
func (w *Welford) Observe(x float64) {
	if w.N == 0 {
		w.Min, w.Max = x, x
	} else {
		w.Min = math.Min(w.Min, x)
		w.Max = math.Max(w.Max, x)
	}
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
}

// Merge folds another accumulator in (Chan et al.'s pairwise update).
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.Mean += d * float64(o.N) / float64(n)
	w.N = n
	w.Min = math.Min(w.Min, o.Min)
	w.Max = math.Max(w.Max, o.Max)
}

// Variance returns the population variance (0 for fewer than 2 samples).
func (w Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N)
}

// Std returns the population standard deviation.
func (w Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Hist is a fixed-bin histogram over [Lo, Hi): Bins equal-width bins plus
// underflow/overflow tails. Quantile estimates are exact to one bin width
// for in-range data, and the layout is fixed at construction so two
// histograms of the same layout merge by bin-wise addition.
type Hist struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64 // samples < Lo
	Over   int64 // samples >= Hi
	N      int64
}

// NewHist builds a histogram with the given range and bin count.
func NewHist(lo, hi float64, bins int) *Hist {
	if !(hi > lo) || bins <= 0 {
		panic(fmt.Sprintf("fleet: invalid histogram layout [%v,%v)/%d", lo, hi, bins))
	}
	return &Hist{Lo: lo, Hi: hi, Bins: make([]int64, bins)}
}

// Observe records one sample. NaN samples are dropped.
func (h *Hist) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.N++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.width())
		if i >= len(h.Bins) { // float edge case at the upper bound
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

func (h *Hist) width() float64 { return (h.Hi - h.Lo) / float64(len(h.Bins)) }

// Merge adds another histogram of the identical layout.
func (h *Hist) Merge(o *Hist) error {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Bins) != len(h.Bins) { //lint:allow floateq layout bounds are copied config constants; exact match is the merge contract
		return fmt.Errorf("fleet: merging histograms with different layouts: [%v,%v)/%d vs [%v,%v)/%d",
			h.Lo, h.Hi, len(h.Bins), o.Lo, o.Hi, len(o.Bins))
	}
	for i, c := range o.Bins {
		h.Bins[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.N += o.N
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bin. Samples in the underflow (overflow) tail are
// reported as Lo (Hi), so tail quantiles are clamped to the layout range.
// It returns NaN for an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h.N == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank in [0, N]; walk the cumulative counts to the containing bin.
	rank := q * float64(h.N)
	cum := float64(h.Under)
	if rank <= cum {
		return h.Lo
	}
	w := h.width()
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*w
		}
		cum = next
	}
	return h.Hi
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	c := *h
	c.Bins = append([]int64(nil), h.Bins...)
	return &c
}

// Histogram layouts for the per-population quantile estimates: QoE is
// tracked per watched chunk (so sessions of different lengths are
// comparable) and spans deep-penalty to max-ladder territory; rebuffer
// totals span 0 to two minutes of stall.
const (
	qoeHistLo, qoeHistHi = -6000.0, 4000.0
	qoeHistBins          = 500
	rebufHistLo          = 0.0
	rebufHistHi          = 120.0
	rebufHistBins        = 480
)

// sessionStats is one completed session reduced to the scalars the
// population aggregates are built from — everything a Tally needs, and
// all that survives a session once its log is released.
type sessionStats struct {
	chunks    int
	qoe       float64 // total Eq. (5) QoE of the (possibly truncated) session
	bitrate   float64 // session mean chosen bitrate, kbps
	rebuffer  float64 // total stall seconds
	switches  float64 // level changes
	startup   float64 // Ts seconds
	abandoned bool    // left early because the abandon-rebuffer policy fired
}

// Tally is the mergeable per-population aggregate: counters plus
// Welford moments and quantile histograms for the session metrics.
type Tally struct {
	Completed int64
	Abandoned int64
	Chunks    int64

	QoE         Welford // per-session total QoE
	QoEPerChunk Welford
	BitrateKbps Welford
	RebufferSec Welford
	Switches    Welford
	StartupSec  Welford

	QoEHist   *Hist // per-chunk QoE distribution
	RebufHist *Hist // per-session total stall distribution
}

// NewTally returns an empty tally with the standard histogram layouts.
func NewTally() *Tally {
	return &Tally{
		QoEHist:   NewHist(qoeHistLo, qoeHistHi, qoeHistBins),
		RebufHist: NewHist(rebufHistLo, rebufHistHi, rebufHistBins),
	}
}

// observe folds one session in.
func (t *Tally) observe(s sessionStats) {
	t.Completed++
	if s.abandoned {
		t.Abandoned++
	}
	t.Chunks += int64(s.chunks)
	perChunk := 0.0
	if s.chunks > 0 {
		perChunk = s.qoe / float64(s.chunks)
	}
	t.QoE.Observe(s.qoe)
	t.QoEPerChunk.Observe(perChunk)
	t.BitrateKbps.Observe(s.bitrate)
	t.RebufferSec.Observe(s.rebuffer)
	t.Switches.Observe(s.switches)
	t.StartupSec.Observe(s.startup)
	t.QoEHist.Observe(perChunk)
	t.RebufHist.Observe(s.rebuffer)
}

// Merge folds another tally in; both must use the same histogram layouts.
func (t *Tally) Merge(o *Tally) error {
	if err := t.QoEHist.Merge(o.QoEHist); err != nil {
		return err
	}
	if err := t.RebufHist.Merge(o.RebufHist); err != nil {
		return err
	}
	t.Completed += o.Completed
	t.Abandoned += o.Abandoned
	t.Chunks += o.Chunks
	t.QoE.Merge(o.QoE)
	t.QoEPerChunk.Merge(o.QoEPerChunk)
	t.BitrateKbps.Merge(o.BitrateKbps)
	t.RebufferSec.Merge(o.RebufferSec)
	t.Switches.Merge(o.Switches)
	t.StartupSec.Merge(o.StartupSec)
	return nil
}

// Clone returns a deep copy.
func (t *Tally) Clone() *Tally {
	c := *t
	c.QoEHist = t.QoEHist.Clone()
	c.RebufHist = t.RebufHist.Clone()
	return &c
}

// orderedTally applies per-session stats to a Tally in session-index
// order no matter in which order workers complete, so the running means
// and M2 sums — floating-point and order-sensitive — come out
// bit-identical on every run of the same scenario. Out-of-order arrivals
// wait in a pending map whose size is bounded by the scheduler's
// in-flight cap (a worker can only run ahead of the oldest unfinished
// session by the admission window).
type orderedTally struct {
	mu      sync.Mutex
	next    int
	pending map[int]sessionStats
	tally   *Tally
}

func newOrderedTally() *orderedTally {
	return &orderedTally{pending: make(map[int]sessionStats), tally: NewTally()}
}

// add submits session i's stats; contiguous prefixes are folded in
// immediately, everything else parks until its predecessors arrive.
func (o *orderedTally) add(i int, s sessionStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if i != o.next {
		o.pending[i] = s
		return
	}
	o.tally.observe(s)
	o.next++
	for {
		s, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.tally.observe(s)
		o.next++
	}
}

// snapshot returns a deep copy of the current contiguous aggregate. Stats
// of sessions that finished out of order ahead of a straggler are not yet
// included — the snapshot is always a valid prefix aggregate.
func (o *orderedTally) snapshot() *Tally {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tally.Clone()
}
