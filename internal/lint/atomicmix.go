package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces atomic-access discipline module-wide:
//
//  1. A struct field passed to a sync/atomic function anywhere
//     (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.hits), ...) must be
//     accessed through sync/atomic everywhere — a plain read races the
//     atomic writers and a plain write can be lost entirely. This is the
//     mixed-access bug the race detector only catches when both sides run
//     in the same test.
//  2. A struct carrying atomic state — a sync/atomic typed field
//     (atomic.Int64, atomic.Uint64, atomic.Bool, ...) or a field from
//     rule 1 — must not be copied by value (dereference copies, value
//     parameters, range-value copies): the copy forks the counter and
//     every update to it is silently dropped from the original.
//
// Rule 1's inventory is built per package, so the obs counters and fleet
// inflight gauges are checked wherever their package touches them.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must be atomic everywhere and their structs never copied by value",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info
	// Pass 1: collect struct fields used as &x.f arguments to sync/atomic
	// functions, and remember those argument expressions so pass 2 can
	// tell an atomic access from a plain one.
	atomicFields := map[*types.Var][]ast.Expr{} // field -> atomic-use positions
	atomicUses := map[*ast.SelectorExpr]bool{}  // x.f inside atomic.F(&x.f)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFuncCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := selectedField(info, sel); field != nil {
					atomicFields[field] = append(atomicFields[field], arg)
					atomicUses[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: plain accesses of those fields, and value copies of structs
	// carrying atomic state.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if atomicUses[n] {
					return true
				}
				field := selectedField(info, n)
				if field == nil {
					return true
				}
				if _, tracked := atomicFields[field]; tracked {
					p.Reportf(n.Pos(), "plain access of %s.%s, which is written with sync/atomic elsewhere; use atomic.Load/Store for every access", fieldOwnerName(field), field.Name())
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkAtomicCopy(p, atomicFields, rhs)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					checkAtomicCopy(p, atomicFields, res)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.TypeOf(n.Value); atomicBearing(t, atomicFields) {
						p.Reportf(n.Value.Pos(), "range copies %s by value; it carries atomic state — range over indices or pointers instead", typeShort(t))
					}
				}
			case *ast.FuncDecl:
				checkAtomicParams(p, atomicFields, n.Type)
			case *ast.FuncLit:
				checkAtomicParams(p, atomicFields, n.Type)
			}
			return true
		})
	}
}

// checkAtomicCopy flags expressions assigned or returned by value that
// copy an atomic-bearing struct: a dereference (*p) or a plain
// identifier/selector of struct type. Composite literals and function
// results are new values, not copies of a shared original, so they pass.
func checkAtomicCopy(p *Pass, atomicFields map[*types.Var][]ast.Expr, rhs ast.Expr) {
	info := p.Pkg.Info
	switch e := rhs.(type) {
	case *ast.StarExpr:
		if t := info.TypeOf(e); atomicBearing(t, atomicFields) {
			p.Reportf(e.Pos(), "dereference copies %s by value; it carries atomic state — keep it behind the pointer", typeShort(t))
		}
	case *ast.Ident, *ast.SelectorExpr:
		if t := info.TypeOf(e); atomicBearing(t, atomicFields) {
			p.Reportf(e.Pos(), "assignment copies %s by value; it carries atomic state — share it via a pointer", typeShort(t))
		}
	}
}

func checkAtomicParams(p *Pass, atomicFields map[*types.Var][]ast.Expr, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	info := p.Pkg.Info
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); atomicBearing(t, atomicFields) {
			p.Reportf(field.Type.Pos(), "parameter passes %s by value; it carries atomic state — take a pointer", typeShort(t))
		}
	}
}

// atomicBearing reports whether t is a struct (not pointer-to-struct) with
// a sync/atomic typed field or a field tracked in atomicFields.
func atomicBearing(t types.Type, atomicFields map[*types.Var][]ast.Expr) bool {
	if t == nil {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncAtomicType(f.Type()) {
			return true
		}
		if _, tracked := atomicFields[f]; tracked {
			return true
		}
	}
	return false
}

func isSyncAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// selectedField resolves x.f to the struct field it names, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

func fieldOwnerName(field *types.Var) string {
	if field.Pkg() != nil {
		return field.Pkg().Name()
	}
	return "struct"
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// isAtomicFuncCall matches atomic.F(...) for the sync/atomic package-level
// access functions (Load*, Store*, Add*, Swap*, CompareAndSwap*).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, ok := importedPackage(info, sel.X)
	if !ok || path != "sync/atomic" {
		return false
	}
	name := sel.Sel.Name
	return strings.HasPrefix(name, "Load") || strings.HasPrefix(name, "Store") ||
		strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Swap") ||
		strings.HasPrefix(name, "CompareAndSwap")
}
