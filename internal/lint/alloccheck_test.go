package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

const syntheticM = `# mpcdash/internal/fastmpc
internal/fastmpc/table.go:57:6: can inline BinSpec.BufferBin
internal/fastmpc/table.go:139:7: &Table{...} escapes to heap
internal/fastmpc/table.go:142:16: make([]uint8, n) escapes to heap
internal/fastmpc/rle.go:60:2: leaking param: c to result ~r0 level=1
internal/fastmpc/rle.go:75:13: moved to heap: lo
internal/fastmpc/rle.go:90:3: buf does not escape
not a position line
internal/core/optimizer.go:100:14: s escapes to heap
`

func TestParseEscapes(t *testing.T) {
	sites := ParseEscapes(syntheticM, "/mod")
	want := []EscapeSite{
		{File: "/mod/internal/fastmpc/table.go", Line: 139, Col: 7, Message: "&Table{...} escapes to heap"},
		{File: "/mod/internal/fastmpc/table.go", Line: 142, Col: 16, Message: "make([]uint8, n) escapes to heap"},
		{File: "/mod/internal/fastmpc/rle.go", Line: 75, Col: 13, Message: "moved to heap: lo"},
		{File: "/mod/internal/core/optimizer.go", Line: 100, Col: 14, Message: "s escapes to heap"},
	}
	if len(sites) != len(want) {
		t.Fatalf("got %d sites, want %d: %+v", len(sites), len(want), sites)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Errorf("site %d: got %+v, want %+v", i, sites[i], want[i])
		}
	}
}

func TestAllocCheckMatching(t *testing.T) {
	inventory := []NoAllocFunc{
		{Name: "fastmpc.(*CompressedTable).at", File: "/mod/internal/fastmpc/rle.go", StartLine: 70, EndLine: 85},
		{Name: "core.(*Optimizer).PlanScratch", File: "/mod/internal/core/optimizer.go", StartLine: 96, EndLine: 180},
	}
	sites := ParseEscapes(syntheticM, "/mod")
	diags := AllocCheck(inventory, sites)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	// rle.go:75 falls inside at's 70-85 range; optimizer.go:100 inside
	// PlanScratch's 96-180. The table.go sites match no annotated range.
	if diags[0].Line != 75 || !strings.Contains(diags[0].Message, "fastmpc.(*CompressedTable).at") {
		t.Errorf("unexpected first diagnostic: %+v", diags[0])
	}
	if diags[1].Line != 100 || !strings.Contains(diags[1].Message, "core.(*Optimizer).PlanScratch") {
		t.Errorf("unexpected second diagnostic: %+v", diags[1])
	}
	for _, d := range diags {
		if d.Check != "alloccheck" {
			t.Errorf("check = %q, want alloccheck", d.Check)
		}
	}
}

func TestAllocCheckBoundaries(t *testing.T) {
	inv := []NoAllocFunc{{Name: "p.f", File: "/m/a.go", StartLine: 10, EndLine: 20}}
	for _, tc := range []struct {
		line int
		hit  bool
	}{{9, false}, {10, true}, {20, true}, {21, false}} {
		d := AllocCheck(inv, []EscapeSite{{File: "/m/a.go", Line: tc.line, Message: "x escapes to heap"}})
		if (len(d) == 1) != tc.hit {
			t.Errorf("line %d: hit=%v, want %v", tc.line, len(d) == 1, tc.hit)
		}
	}
	// Same lines, different file: never a hit.
	if d := AllocCheck(inv, []EscapeSite{{File: "/m/b.go", Line: 15, Message: "x escapes to heap"}}); len(d) != 0 {
		t.Errorf("cross-file match: %+v", d)
	}
}

// TestBuildEscapesReal smoke-tests the go build plumbing on one real
// package and checks relative positions resolve against the module root.
func TestBuildEscapesReal(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the compiler")
	}
	root, _ := moduleRoot(t)
	sites, raw, err := BuildEscapes(root, []string{"./internal/fastmpc"})
	if err != nil {
		t.Fatalf("BuildEscapes: %v\n%s", err, raw)
	}
	if len(sites) == 0 {
		t.Fatal("expected escape sites in fastmpc (Build/Serialize allocate); -m output may not have reached the compiler")
	}
	for _, s := range sites {
		if !filepath.IsAbs(s.File) {
			t.Errorf("site file not absolute: %q", s.File)
		}
	}
}
