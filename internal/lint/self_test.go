package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) (dir, module string) {
	t.Helper()
	d, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			t.Fatalf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatal("no go.mod above working directory")
		}
		d = parent
	}
}

// TestRepoLintClean self-applies the full analyzer suite to the real
// module source in-process and requires zero unsuppressed findings. It
// puts the lint gate inside tier-1: `go test ./...` alone catches a lint
// regression even when `make lint` is never run.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, module := moduleRoot(t)
	pkgs, err := Load(LoadConfig{Dir: root, ModulePath: module})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("load module: no packages")
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate intentional ones with //lint:allow <check> <reason>")
	}
}

// TestNoAllocInventoryCovers pins the //mpc:noalloc annotation roster on
// the real tree: the documented hot-path functions must all carry the
// contract, so dropping an annotation (silently widening the allocation
// budget) fails here rather than in a benchmark weeks later.
func TestNoAllocInventoryCovers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, module := moduleRoot(t)
	pkgs, err := Load(LoadConfig{Dir: root, ModulePath: module})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	got := map[string]bool{}
	for _, fn := range NoAllocInventory(pkgs) {
		got[fn.Name] = true
		if fn.StartLine <= 0 || fn.EndLine < fn.StartLine {
			t.Errorf("%s: bad line range %d-%d", fn.Name, fn.StartLine, fn.EndLine)
		}
	}
	want := []string{
		"core.(*Optimizer).Plan",
		"core.(*Optimizer).PlanScratch",
		"core.(*Optimizer).search",
		"fastmpc.(BinSpec).BufferBin",
		"fastmpc.(BinSpec).RateBin",
		"fastmpc.clampBin",
		"fastmpc.(*Table).index",
		"fastmpc.(*Table).Lookup",
		"fastmpc.(*CompressedTable).at",
		"fastmpc.(*CompressedTable).Lookup",
		"abrsvc.(*store).shardFor",
		"abrsvc.lastSample",
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("expected //mpc:noalloc on %s; inventory has %v", name, got)
		}
	}
}
