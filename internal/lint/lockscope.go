package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// lockScopeScope covers the concurrent service/fleet layers: the abrd
// decision service, the fleet scheduler, the metrics registry/sinks, and
// the emulation transport. These are the packages whose mutexes sit on
// request hot paths, where a blocking call inside a critical section
// serializes every other request behind one slow operation.
var lockScopeScope = fileScope{
	"abrsvc": nil,
	"fleet":  nil,
	"obs":    nil,
	"emu":    nil,
}

// LockScope flags two critical-section hazards in the service/fleet
// packages:
//
//  1. a blocking operation — channel send/receive, a select without a
//     default, time.Sleep/After, sync.WaitGroup.Wait, net/http round
//     trips, file or writer I/O — executed while a sync.Mutex/RWMutex is
//     held. Under load every other goroutine needing that lock stalls
//     behind the slow operation; the decide-path latency budget (p99 in
//     microseconds) does not survive a disk write under the store lock.
//  2. a return statement on a path where a lock is still held and no
//     deferred unlock covers the exit — the classic missed-unlock leak
//     that deadlocks the next request for the same stripe.
//
// The analysis is intraprocedural and statement-ordered: it tracks
// Lock/Unlock pairs per receiver expression through the enclosing
// function, branching conservatively (a branch that unlocks and returns
// does not release the fall-through path's lock). Calls to module
// functions are not followed; a critical section that delegates its
// blocking work one call deeper needs a //lint:allow with the reason.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "flag blocking operations and missing unlocks inside mutex critical sections",
	Run:  runLockScope,
}

func runLockScope(p *Pass) {
	for _, f := range lockScopeScope.files(p.Pkg) {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				ls := &lockState{pass: p, held: map[string]token.Pos{}, deferred: map[string]bool{}}
				ls.block(body.List)
			}
			return true
		})
	}
}

// lockState tracks which mutex receivers are locked at the current
// program point of one function body.
type lockState struct {
	pass     *Pass
	held     map[string]token.Pos // receiver rendering → Lock() position
	deferred map[string]bool      // receiver rendering → defer Unlock seen
}

func (ls *lockState) clone() *lockState {
	c := &lockState{pass: ls.pass, held: map[string]token.Pos{}, deferred: map[string]bool{}}
	for k, v := range ls.held {
		c.held[k] = v
	}
	for k, v := range ls.deferred {
		c.deferred[k] = v
	}
	return c
}

// block walks one statement list in order, updating lock state and
// reporting hazards.
func (ls *lockState) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		ls.stmt(s)
	}
}

func (ls *lockState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := ls.mutexCall(s.X); ok {
			switch op {
			case "Lock", "RLock":
				ls.held[recv] = s.Pos()
			case "Unlock", "RUnlock":
				delete(ls.held, recv)
			}
			return
		}
		ls.checkBlocking(s)
	case *ast.DeferStmt:
		if recv, op, ok := ls.mutexCall(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			ls.deferred[recv] = true
			return
		}
		// Deferred calls run at exit, outside the statement order; their
		// bodies are not part of the current critical section.
	case *ast.ReturnStmt:
		ls.checkBlocking(s)
		for recv, pos := range ls.held {
			if !ls.deferred[recv] {
				position := ls.pass.Pkg.Fset.Position(pos)
				ls.pass.Reportf(s.Pos(), "return with %s.Lock() (line %d) still held and no deferred unlock; this exit path leaks the lock", recv, position.Line)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.checkBlockingExpr(s.Cond)
		ls.clone().block(s.Body.List)
		if s.Else != nil {
			ls.clone().stmt(s.Else)
		}
	case *ast.BlockStmt:
		ls.block(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.checkBlockingExpr(s.Cond)
		ls.clone().block(s.Body.List)
	case *ast.RangeStmt:
		ls.checkBlockingExpr(s.X)
		ls.clone().block(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.clone().block(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.clone().block(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if len(ls.held) > 0 && !selectHasDefault(s) {
			ls.reportBlocking(s.Pos(), "select without a default blocks")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.clone().block(cc.Body)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently; launching it does not
		// block the lock holder. Its body gets its own analysis via the
		// FuncLit walk in runLockScope.
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt)
	default:
		ls.checkBlocking(s)
	}
}

// mutexCall matches recv.Lock/RLock/Unlock/RUnlock() where recv is a
// sync.Mutex or sync.RWMutex (possibly through a pointer), returning the
// rendered receiver expression and the method name.
func (ls *lockState) mutexCall(e ast.Expr) (recv, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", "", false
	}
	if !isMutexType(ls.pass.Pkg.Info.TypeOf(sel.X)) {
		return "", "", false
	}
	return renderExpr(ls.pass.Pkg.Fset, sel.X), name, true
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// renderExpr prints an expression compactly for diagnostics ("s.mu",
// "st.shards[i].mu").
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "mutex"
	}
	return b.String()
}

// checkBlocking reports blocking operations inside n while a lock is held.
func (ls *lockState) checkBlocking(n ast.Node) {
	if len(ls.held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later (callback/goroutine); analyzed on its own
		case *ast.SendStmt:
			ls.reportBlocking(n.Pos(), "channel send blocks")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.reportBlocking(n.Pos(), "channel receive blocks")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				ls.reportBlocking(n.Pos(), "select without a default blocks")
			}
		case *ast.CallExpr:
			if why, bad := ls.blockingCall(n); bad {
				ls.reportBlocking(n.Pos(), why)
			}
		}
		return true
	})
}

func (ls *lockState) checkBlockingExpr(e ast.Expr) {
	if e != nil {
		ls.checkBlocking(e)
	}
}

func (ls *lockState) reportBlocking(pos token.Pos, why string) {
	locks := make([]string, 0, len(ls.held))
	for recv := range ls.held {
		locks = append(locks, recv)
	}
	// Deterministic lock listing regardless of map order.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && locks[j] < locks[j-1]; j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	ls.pass.Reportf(pos, "%s while %s is held; release the lock before blocking or move the work out of the critical section", why, strings.Join(locks, ", "))
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingPkgFuncs are package-level functions that block on time, I/O or
// the network.
var blockingPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true, "After": true, "Tick": true},
	"io":   {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "ReadFull": true, "WriteString": true},
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "ReadDir": true,
		"Remove": true, "RemoveAll": true, "Rename": true,
		"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "Stat": true,
	},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true},
}

// blockingMethods maps receiver types to method names that block: HTTP
// round trips, server lifecycle waits, WaitGroup/Cond waits, and file I/O.
var blockingMethods = []struct {
	pkg, typ string // receiver's declaring package and type name
	names    map[string]bool
}{
	{"net/http", "Client", map[string]bool{"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true}},
	{"net/http", "Server", map[string]bool{"Serve": true, "ListenAndServe": true, "Shutdown": true, "Close": true}},
	{"sync", "WaitGroup", map[string]bool{"Wait": true}},
	{"sync", "Cond", map[string]bool{"Wait": true}},
	{"os", "File", map[string]bool{"Read": true, "ReadAt": true, "Write": true, "WriteAt": true, "WriteString": true, "Sync": true, "Close": true}},
}

// blockingIfaceMethods are interface methods that mean I/O when the
// static receiver type is one of the I/O interfaces (or net.Conn /
// net.Listener / http.ResponseWriter).
var blockingIfaceMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteHeader": true,
	"Read": true, "Accept": true, "Flush": true,
}

func (ls *lockState) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	info := ls.pass.Pkg.Info
	name := sel.Sel.Name
	if pkgPath, isPkg := importedPackage(info, sel.X); isPkg {
		if fns := blockingPkgFuncs[pkgPath]; fns[name] {
			return pkgPath + "." + name + " blocks", true
		}
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, okp := t.Underlying().(*types.Pointer); okp {
		t = p.Elem()
	}
	if n, okn := t.(*types.Named); okn {
		obj := n.Obj()
		if obj.Pkg() != nil {
			for _, bm := range blockingMethods {
				if bm.names != nil && obj.Pkg().Path() == bm.pkg && obj.Name() == bm.typ && bm.names[name] {
					return "(" + bm.pkg + "." + bm.typ + ")." + name + " blocks", true
				}
			}
			if blockingIfaceMethods[name] && isIOType(obj.Pkg().Path(), obj.Name()) {
				return "(" + obj.Pkg().Path() + "." + obj.Name() + ")." + name + " is I/O", true
			}
		}
	}
	return "", false
}

// isIOType recognizes the stdlib I/O carrier types whose Read/Write/etc.
// methods reach the kernel (directly or at flush time).
func isIOType(pkgPath, typeName string) bool {
	switch pkgPath {
	case "net":
		return typeName == "Conn" || typeName == "TCPConn" || typeName == "UDPConn" || typeName == "UnixConn" || typeName == "Listener" || typeName == "TCPListener"
	case "net/http":
		return typeName == "ResponseWriter"
	case "bufio":
		return typeName == "Writer" || typeName == "Reader" || typeName == "ReadWriter"
	case "io":
		return typeName == "Writer" || typeName == "Reader" || typeName == "ReadWriter" || typeName == "ReadWriteCloser" || typeName == "WriteCloser" || typeName == "ReadCloser"
	}
	return false
}
