// Package lint is mpcdash's project-specific static-analysis suite. It
// enforces, at compile time, the invariants the paper reproduction depends
// on at run time: deterministic packages stay wall-clock- and
// global-rand-free (nodeterminism), QoE/bitrate arithmetic never relies on
// exact float equality (floateq), byte-identical report/export emitters
// never iterate maps in hash order (maporder), the dependency policy stays
// stdlib-only (stdlibonly), and orchestration goroutines keep a
// cancellation path (ctxleak). The second-generation concurrency pass
// adds: mutex critical sections never block or leak (lockscope),
// //mpc:noalloc hot paths never allocate (noalloc), atomics are atomic
// everywhere and never copied (atomicmix), and HTTP handlers honor the
// service-layer response/context/metric-name contracts (httpcontract).
//
// Findings are suppressed with a directive comment carrying a reason:
//
//	expensive := time.Now() //lint:allow nodeterminism measurement only, not a decision input
//
// A directive suppresses matching findings on its own line and on the line
// directly below it, so it can trail the offending statement or sit on the
// preceding line. Directives without a reason, or naming an unknown check,
// are themselves reported (check "lintdirective") so suppressions stay
// auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (package, analyzer) pairing and collects reports.
type Pass struct {
	Pkg   *Package
	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoDeterminism, FloatEq, MapOrder, StdlibOnly, CtxLeak, LockScope, NoAlloc, AtomicMix, HTTPContract}
}

// AnalyzersByName resolves a comma-separated list of check names.
func AnalyzersByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected by %q", names)
	}
	return out, nil
}

func knownCheck(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// allowKey identifies a suppressed (file, line, check) coordinate.
type allowKey struct {
	file  string
	line  int
	check string
}

const allowPrefix = "lint:allow"

// collectAllows scans a package's comments for //lint:allow directives.
// Malformed directives (missing reason, unknown check) are reported as
// "lintdirective" findings so the suppression inventory stays honest.
func collectAllows(pkg *Package, out *[]Diagnostic) map[allowKey]bool {
	allows := map[allowKey]bool{}
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				check, reason, _ := strings.Cut(rest, " ")
				report := func(format string, args ...any) {
					*out = append(*out, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "lintdirective",
						Message: fmt.Sprintf(format, args...),
					})
				}
				switch {
				case check == "":
					report("//lint:allow needs a check name and a reason")
				case !knownCheck(check):
					report("//lint:allow names unknown check %q", check)
				case strings.TrimSpace(reason) == "":
					report("//lint:allow %s needs a one-line reason", check)
				default:
					allows[allowKey{pos.Filename, pos.Line, check}] = true
				}
			}
		}
	}
	return allows
}

// Run applies analyzers to pkgs, filters suppressed findings, and returns
// the remainder sorted by position for deterministic output.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		allows := collectAllows(pkg, &diags)
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, check: a.Name, out: &raw})
		}
		for _, d := range raw {
			// A directive suppresses its own line (trailing comment) and the
			// line below it (directive on the preceding line).
			if allows[allowKey{d.File, d.Line, d.Check}] || allows[allowKey{d.File, d.Line - 1, d.Check}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
