package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// httpContractScope covers the two packages that serve HTTP: the abrd
// decision service and the segment-emulation server. The metric-name rule
// (see below) is module-wide and ignores this scope.
var httpContractScope = fileScope{
	"abrsvc": nil,
	"emu":    nil,
}

// HTTPContract enforces the handler invariants of the service layer:
//
//  1. no WriteHeader after a body write — the first body write commits an
//     implicit 200, so a later WriteHeader is a silent no-op plus a
//     "superfluous response.WriteHeader" server log line. Tracked in
//     statement order; a branch that writes and returns does not poison
//     the fall-through path.
//  2. every 429 sets Retry-After — the fleet's shed-retry protocol (and
//     any well-behaved client) needs the server's backoff hint; a bare
//     429 turns coordinated backoff into thundering-herd retries.
//  3. handlers must not manufacture context.Background()/context.TODO() —
//     deriving work from anything but r.Context() detaches it from the
//     client disconnect and the server drain path.
//  4. (module-wide) obs Registry metric names (Counter/Gauge/Histogram
//     first argument) must be declared string constants with the mpcdash_
//     prefix — a raw literal at the call site is exactly how the code and
//     the /metrics exposition drift apart.
var HTTPContract = &Analyzer{
	Name: "httpcontract",
	Doc:  "HTTP handler invariants: header ordering, 429 Retry-After, request-context use, metric-name constants",
	Run:  runHTTPContract,
}

func runHTTPContract(p *Pass) {
	info := p.Pkg.Info
	for _, f := range httpContractScope.files(p.Pkg) {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			hasW, hasR := handlerParams(info, ft)
			if !hasW {
				return true
			}
			hw := &headerWriteState{pass: p}
			hw.block(body.List, false)
			checkRetryAfter(p, body)
			if hasR {
				checkHandlerContext(p, body)
			}
			return true
		})
	}
	// Rule 4 is module-wide: every non-test file, every package.
	for _, f := range p.Pkg.Files {
		checkMetricNames(p, f)
	}
}

// handlerParams reports whether ft has an http.ResponseWriter parameter
// and a *http.Request parameter.
func handlerParams(info *types.Info, ft *ast.FuncType) (hasW, hasR bool) {
	if ft.Params == nil {
		return false, false
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if isResponseWriter(t) {
			hasW = true
		}
		if isHTTPRequestPtr(t) {
			hasR = true
		}
	}
	return hasW, hasR
}

func isResponseWriter(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// headerWriteState walks a handler body in statement order tracking
// whether the response body has been written, flagging WriteHeader calls
// that come after. Branches are explored with the inherited state; a
// branch whose last statement returns does not leak its writes into the
// fall-through path.
type headerWriteState struct {
	pass *Pass
}

// block returns whether the straight-line path through stmts has written
// the body by the end.
func (h *headerWriteState) block(stmts []ast.Stmt, wrote bool) bool {
	for _, s := range stmts {
		wrote = h.stmt(s, wrote)
	}
	return wrote
}

func (h *headerWriteState) stmt(s ast.Stmt, wrote bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			wrote = h.stmt(s.Init, wrote)
		}
		wrote = h.scan(s.Cond, wrote)
		bodyWrote := h.block(s.Body.List, wrote)
		elseWrote := wrote
		if s.Else != nil {
			elseWrote = h.stmt(s.Else, wrote)
		}
		if !terminates(s.Body.List) && bodyWrote {
			wrote = true
		}
		if s.Else != nil && !elseTerminates(s.Else) && elseWrote {
			wrote = true
		}
		return wrote
	case *ast.BlockStmt:
		return h.block(s.List, wrote)
	case *ast.ForStmt:
		if s.Init != nil {
			wrote = h.stmt(s.Init, wrote)
		}
		wrote = h.scan(s.Cond, wrote)
		if h.block(s.Body.List, wrote) {
			// Re-walk with the body already written so an in-loop
			// WriteHeader after an earlier-iteration write is caught.
			h.block(s.Body.List, true)
			wrote = true
		}
		return wrote
	case *ast.RangeStmt:
		wrote = h.scan(s.X, wrote)
		if h.block(s.Body.List, wrote) {
			h.block(s.Body.List, true)
			wrote = true
		}
		return wrote
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		any := false
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				if h.block(n.Body, wrote) && !terminates(n.Body) {
					any = true
				}
				return false
			case *ast.CommClause:
				if h.block(n.Body, wrote) && !terminates(n.Body) {
					any = true
				}
				return false
			}
			return true
		})
		return wrote || any
	case *ast.GoStmt, *ast.DeferStmt:
		return wrote // runs out of line; FuncLit bodies get their own walk
	default:
		return h.scan(s, wrote)
	}
}

// scan inspects a leaf statement/expression for body writes and
// WriteHeader calls, in position order.
func (h *headerWriteState) scan(n ast.Node, wrote bool) bool {
	if n == nil {
		return wrote
	}
	type evt struct {
		pos     token.Pos
		isWrite bool
	}
	var evts []evt
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWriteHeaderCall(h.pass.Pkg.Info, call) {
			evts = append(evts, evt{call.Pos(), false})
		} else if isBodyWrite(h.pass.Pkg.Info, call) {
			evts = append(evts, evt{call.Pos(), true})
		}
		return true
	})
	for i := 1; i < len(evts); i++ {
		for j := i; j > 0 && evts[j].pos < evts[j-1].pos; j-- {
			evts[j], evts[j-1] = evts[j-1], evts[j]
		}
	}
	for _, e := range evts {
		if e.isWrite {
			wrote = true
		} else if wrote {
			h.pass.Reportf(e.pos, "WriteHeader after the response body was written is a no-op; set the status before the first body write")
		}
	}
	return wrote
}

func isWriteHeaderCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return false
	}
	return isResponseWriter(info.TypeOf(sel.X))
}

// isBodyWrite matches the ways handlers write response bodies: w.Write,
// io.WriteString(w, ...), fmt.Fprint*(w, ...), json.NewEncoder(w), and
// io.Copy(w, ...).
func isBodyWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Write" && isResponseWriter(info.TypeOf(sel.X)) {
		return true
	}
	path, isPkg := importedPackage(info, sel.X)
	if !isPkg || len(call.Args) == 0 || !isResponseWriter(info.TypeOf(call.Args[0])) {
		return false
	}
	switch {
	case path == "io" && (sel.Sel.Name == "WriteString" || sel.Sel.Name == "Copy" || sel.Sel.Name == "CopyN"):
		return true
	case path == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint"):
		return true
	case path == "encoding/json" && sel.Sel.Name == "NewEncoder":
		return true
	}
	return false
}

// terminates reports whether a statement list ends in return or panic, so
// its in-branch state cannot reach the code after the branch.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func elseTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && s.Else != nil && elseTerminates(s.Else)
	}
	return false
}

// checkRetryAfter enforces invariant 2: a function that emits 429 must
// also set the Retry-After header.
func checkRetryAfter(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var firstTooMany token.Pos
	hasRetryAfter := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if path, ok := importedPackage(info, n.X); ok && path == "net/http" && n.Sel.Name == "StatusTooManyRequests" {
				if firstTooMany == token.NoPos {
					firstTooMany = n.Pos()
				}
			}
		case *ast.BasicLit:
			if n.Kind == token.INT && n.Value == "429" && firstTooMany == token.NoPos {
				firstTooMany = n.Pos()
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Set" || sel.Sel.Name == "Add") && len(n.Args) >= 1 {
				if lit, val := stringConstant(info, n.Args[0]); lit && val == "Retry-After" {
					hasRetryAfter = true
				}
			}
		}
		return true
	})
	if firstTooMany != token.NoPos && !hasRetryAfter {
		p.Reportf(firstTooMany, "429 response without a Retry-After header; shedding without a backoff hint causes thundering-herd retries")
	}
}

// stringConstant resolves e to a compile-time string value.
func stringConstant(info *types.Info, e ast.Expr) (bool, string) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false, ""
	}
	return true, constant.StringVal(tv.Value)
}

// checkHandlerContext enforces invariant 3: handler bodies derive from
// r.Context(), never context.Background()/TODO().
func checkHandlerContext(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path, isPkg := importedPackage(info, sel.X); isPkg && path == "context" {
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				p.Reportf(call.Pos(), "handler uses context.%s(); derive from r.Context() so client disconnects and server drain cancel the work", sel.Sel.Name)
			}
		}
		return true
	})
}

// checkMetricNames enforces invariant 4 module-wide: the name argument of
// obs Registry Counter/Gauge/Histogram calls must be a declared constant
// with the exporter's mpcdash_ prefix.
func checkMetricNames(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
		default:
			return true
		}
		if !isObsRegistry(info.TypeOf(sel.X)) || len(call.Args) == 0 {
			return true
		}
		name := call.Args[0]
		if lit, ok := name.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			p.Reportf(name.Pos(), "metric name is a raw string literal; declare it as a package constant so code and /metrics exposition cannot drift")
			return true
		}
		isConst, val := stringConstant(info, name)
		switch {
		case !isConst:
			p.Reportf(name.Pos(), "metric name does not resolve to a declared string constant")
		case !strings.HasPrefix(val, "mpcdash_"):
			p.Reportf(name.Pos(), "metric name %s lacks the mpcdash_ exposition prefix", strconv.Quote(val))
		}
		return true
	})
}

// isObsRegistry matches *Registry / Registry declared in an obs package
// (the real mpcdash/internal/obs or a fixture's obs).
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Name() != "Registry" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
