package lint

// The //mpc:noalloc static check (noalloc.go) is intraprocedural and
// pattern-based: it can prove the absence of allocating *constructs* but
// not of allocating *behavior* — an escape the compiler decides on
// (a value leaking through an interface three calls away) is invisible to
// it. This file is the other half of the contract: it reconciles the
// annotation inventory against gc's own escape analysis (-gcflags=-m), so
// `make lint-alloc` fails when the compiler heap-allocates inside any
// annotated line range, whatever the construct looked like.

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeSite is one heap-allocation decision reported by the compiler.
type EscapeSite struct {
	File    string // absolute path
	Line    int
	Col     int
	Message string // e.g. "&Table{...} escapes to heap"
}

// ParseEscapes extracts heap-allocation sites from `go build -gcflags=-m`
// diagnostic output. Relative positions are resolved against baseDir (the
// directory the build ran in). Only messages that mean "this allocates on
// the heap" are kept: "escapes to heap" and "moved to heap". Inlining
// notes, "leaking param" flow facts and "does not escape" proofs are not
// allocations and are dropped.
func ParseEscapes(out, baseDir string) []EscapeSite {
	var sites []EscapeSite
	for _, line := range strings.Split(out, "\n") {
		msg := strings.TrimSpace(line)
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		file, rest, ok := strings.Cut(msg, ":")
		if !ok {
			continue
		}
		lineStr, rest, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		colStr, text, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		ln, err1 := strconv.Atoi(lineStr)
		col, err2 := strconv.Atoi(colStr)
		if err1 != nil || err2 != nil {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(baseDir, file)
		}
		sites = append(sites, EscapeSite{
			File:    filepath.Clean(file),
			Line:    ln,
			Col:     col,
			Message: strings.TrimSpace(text),
		})
	}
	return sites
}

// AllocCheck reconciles the annotation inventory with the compiler's
// escape sites: every site inside an annotated function's line range is a
// contract violation, reported under check "alloccheck". //lint:allow does
// not apply here by design — the escape hatch for an intentionally
// allocating path is moving it out of the annotated function, not
// suppressing the compiler.
func AllocCheck(inventory []NoAllocFunc, sites []EscapeSite) []Diagnostic {
	var diags []Diagnostic
	for _, site := range sites {
		for _, fn := range inventory {
			if site.File == fn.File && site.Line >= fn.StartLine && site.Line <= fn.EndLine {
				diags = append(diags, Diagnostic{
					File:    site.File,
					Line:    site.Line,
					Col:     site.Col,
					Check:   "alloccheck",
					Message: fmt.Sprintf("compiler escape analysis contradicts //mpc:noalloc on %s: %s", fn.Name, site.Message),
				})
				break
			}
		}
	}
	return diags
}

// BuildEscapes runs `go build -gcflags=-m` on patterns in dir and parses
// the diagnostics. The -m output lands on stderr; a cached build replays
// the stored compiler output, so repeat runs stay cheap and non-vacuous.
// An empty result with a clean exit means the build graph was silent,
// which for a module with any code at all indicates the flags did not
// reach the compiler — callers should treat zero parsed lines of any kind
// as suspect; EscapeSites being empty is the success condition.
func BuildEscapes(dir string, patterns []string) ([]EscapeSite, string, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, string(out), fmt.Errorf("go build -gcflags=-m: %v", err)
	}
	abs, aerr := filepath.Abs(dir)
	if aerr != nil {
		abs = dir
	}
	return ParseEscapes(string(out), abs), string(out), nil
}
