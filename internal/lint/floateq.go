package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags ==/!= between floating-point operands and float-keyed maps
// outside test files. QoE and bitrate values are floats that arrive via
// different arithmetic paths (table lookup vs direct evaluation, merged vs
// streamed accumulation), so exact equality either works by accident or
// flips an ABR decision on the least significant bit. Compare with an
// epsilon, or compare the integer level/bin index instead. Comparisons
// that fold to an untyped constant at compile time are exact by definition
// and not flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag exact float ==/!= comparisons and float map keys outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if tv, ok := info.Types[n]; ok && tv.Value != nil {
					return true // constant-folded: exact at compile time
				}
				if isFloat(info.TypeOf(n.X)) || isFloat(info.TypeOf(n.Y)) {
					p.Reportf(n.OpPos, "exact float %s comparison; use an epsilon or compare integer indices", n.Op)
				}
			case *ast.MapType:
				if isFloat(info.TypeOf(n.Key)) {
					p.Reportf(n.Key.Pos(), "float map key relies on exact equality and hashing of floats; key by an integer index instead")
				}
			}
			return true
		})
	}
}
