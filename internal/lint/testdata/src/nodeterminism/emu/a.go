package emu

import "time"

// The emulation layer is allowlisted: it measures real downloads.
func timingIsFine() time.Time {
	return time.Now()
}
