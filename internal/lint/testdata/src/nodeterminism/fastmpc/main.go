package main

import "time"

// A main package whose directory shares a deterministic package's name is
// not in scope: CLIs print elapsed wall time legitimately.
func main() {
	_ = time.Now()
}
