package fleet

import "time"

func badInAccumulator() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}
