package fleet

import "time"

// Orchestration files are outside the deterministic file scope: pacing real
// goroutines against the wall clock is legitimate here.
func orchestrationMayUseWallClock() time.Time {
	return time.Now()
}
