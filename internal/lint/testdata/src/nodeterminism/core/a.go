package core

import (
	"math/rand"
	"time"
)

func bad() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.UnixNano()
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func badRand() float64 {
	return rand.Float64() // want "global rand.Float64 uses the shared source"
}

func goodSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func allowed() time.Time {
	return time.Now() //lint:allow nodeterminism fixture: suppression keeps this finding quiet
}

func allowedAbove() time.Time {
	//lint:allow nodeterminism fixture: directive on the preceding line also suppresses
	return time.Now()
}
