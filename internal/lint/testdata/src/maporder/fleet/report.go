package fleet

func badInReport(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}
