package fleet

// Only report.go is in the maporder file scope for fleet: the orchestrator
// may iterate maps freely for non-output work.
func orchestrationMayIterate(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
