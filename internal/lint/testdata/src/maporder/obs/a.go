package obs

import "strings"

type Counter struct{ v float64 }

func (c *Counter) Add(v float64) { c.v += v }

func badMetric(c *Counter, m map[string]float64) {
	for _, v := range m {
		c.Add(v) // want "metric Add inside map iteration"
	}
}

func badWrite(b *strings.Builder, m map[string]string) {
	for k := range m {
		b.WriteString(k) // want "WriteString call inside map iteration"
	}
}
