package export

import (
	"fmt"
	"io"
	"sort"
)

func badPrint(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%v\n", k, v) // want "fmt.Fprintf inside map iteration"
	}
}

func badAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}

func badUnsortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside map iteration"
	}
	return keys
}

func goodSortedKeys(w io.Writer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%v\n", k, m[k])
	}
}

func goodAggregate(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func allowed(w io.Writer, m map[string]float64) {
	for k := range m {
		fmt.Fprintln(w, k) //lint:allow maporder fixture: order-insensitive sink
	}
}
