package hot

import "fmt"

type table struct {
	vals []float64
	n    int
}

func sink(v any) {}

// --- positives: each construct the contract forbids ---

// lookupMake does a hot-path lookup.
//
//mpc:noalloc
func lookupMake(t *table) []float64 {
	buf := make([]float64, t.n) // want "make in //mpc:noalloc function lookupMake allocates"
	return buf
}

//mpc:noalloc
func lookupNew(t *table) *table {
	return new(table) // want "new in //mpc:noalloc function lookupNew allocates"
}

//mpc:noalloc
func lookupAppend(t *table, v float64) {
	t.vals = append(t.vals, v) // want "append in //mpc:noalloc function lookupAppend allocates"
}

//mpc:noalloc
func lookupSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal in //mpc:noalloc function lookupSliceLit allocates its backing array"
}

//mpc:noalloc
func lookupMapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal in //mpc:noalloc function lookupMapLit allocates"
}

//mpc:noalloc
func lookupAddrLit() *table {
	return &table{n: 1} // want "&composite literal in //mpc:noalloc function lookupAddrLit is an escape candidate"
}

//mpc:noalloc
func lookupClosure(t *table) float64 {
	f := func() float64 { return t.vals[0] } // want "closure literal in //mpc:noalloc function lookupClosure"
	return f()
}

//mpc:noalloc
func lookupConcat(a, b string) string {
	return a + b // want "string concatenation in //mpc:noalloc function lookupConcat allocates"
}

//mpc:noalloc
func lookupConvert(s string) []byte {
	return []byte(s) // want `string/\[\]byte conversion in //mpc:noalloc function lookupConvert copies and allocates`
}

//mpc:noalloc
func lookupFmt(v float64) string {
	return fmt.Sprintf("%v", v) // want `fmt.Sprintf in //mpc:noalloc function lookupFmt allocates`
}

//mpc:noalloc
func lookupBox(v float64) {
	sink(v) // want "non-pointer value boxed into interface in //mpc:noalloc function lookupBox"
}

// --- negatives ---

// coldPath is un-annotated: growth and formatting are fine here.
func coldPath(t *table) string {
	t.vals = append(t.vals, 0)
	return fmt.Sprintf("%d", t.n)
}

// lookupClean is the shape the contract wants: indexing, arithmetic,
// pointer passing.
//
//mpc:noalloc
func lookupClean(t *table, i int) float64 {
	if i < 0 || i >= len(t.vals) {
		return 0
	}
	sink(t) // pointer into interface: stored directly, no box
	return t.vals[i] * float64(t.n)
}

// --- suppression ---

//mpc:noalloc
func lookupAllowed(t *table) []float64 {
	return make([]float64, 1) //lint:allow noalloc fixture: one-time init escape hatch
}
