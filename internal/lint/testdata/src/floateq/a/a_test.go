package a

// Test files are exempt: exact comparison against golden values is how
// determinism is asserted.
func testOnlyHelper(x, y float64) bool {
	return x == y
}
