package a

func cmpEq(x, y float64) bool {
	return x == y // want "exact float == comparison"
}

func cmpNeq(x, y float32) bool {
	return x != y // want "exact float != comparison"
}

func mixed(x float64) bool {
	return x == 0.5 // want "exact float == comparison"
}

var lookup map[float64]int // want "float map key"

func ints(a, b int) bool {
	return a == b
}

func strcmp(a, b string) bool {
	return a == b
}

func constantFolded() bool {
	// Both operands are untyped constants: the comparison is exact at
	// compile time and not flagged.
	return 0.1 == 0.25
}

func allowed(x float64) bool {
	return x == 0 //lint:allow floateq fixture: exact-zero sentinel check
}
