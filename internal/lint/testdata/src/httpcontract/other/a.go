package other

import (
	"fmt"
	"net/http"
)

// Out-of-scope package: handler-invariant violations here must not be
// reported (the metric-name rule is module-wide, but no metrics live here).

func notAudited(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "body")
	w.WriteHeader(http.StatusOK)
}
