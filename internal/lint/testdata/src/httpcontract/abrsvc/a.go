package abrsvc

import (
	"context"
	"fmt"
	"net/http"
)

func longOp(ctx context.Context) {}

// --- invariant 1: WriteHeader ordering ---

func badOrder(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "body")
	w.WriteHeader(http.StatusOK) // want "WriteHeader after the response body was written is a no-op"
}

func badOrderEncoder(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte(`{}`))
	w.WriteHeader(http.StatusAccepted) // want "WriteHeader after the response body was written is a no-op"
}

func goodOrder(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintln(w, "body")
}

// goodBranch writes in a terminating branch; the fall-through WriteHeader
// is on a disjoint path and must not be flagged.
func goodBranch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/ok" {
		w.Write([]byte("ok"))
		return
	}
	w.WriteHeader(http.StatusNotFound)
}

// badBranch writes in a branch that falls through, so the WriteHeader
// after the branch is reachable with the body already committed.
func badBranch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/ok" {
		w.Write([]byte("ok"))
	}
	w.WriteHeader(http.StatusNotFound) // want "WriteHeader after the response body was written is a no-op"
}

// --- invariant 2: 429 implies Retry-After ---

func bad429(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "shed", http.StatusTooManyRequests) // want "429 response without a Retry-After header"
}

func good429(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "shed", http.StatusTooManyRequests)
}

// --- invariant 3: handlers derive from r.Context() ---

func badCtx(w http.ResponseWriter, r *http.Request) {
	longOp(context.Background()) // want `handler uses context.Background\(\); derive from r.Context`
	w.WriteHeader(http.StatusOK)
}

func goodCtx(w http.ResponseWriter, r *http.Request) {
	longOp(r.Context())
	w.WriteHeader(http.StatusOK)
}

// helpers with only a ResponseWriter still obey the ordering contract.
func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.WriteHeader(code)
	w.Write(body)
}

// --- suppression ---

func allowedOrder(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok"))
	w.WriteHeader(http.StatusOK) //lint:allow httpcontract fixture: interim shim during handler split
}
