package metrics

import "mpcdash/obs"

const (
	// MetricRequests follows the contract: a declared constant with the
	// exposition prefix.
	MetricRequests = "mpcdash_fixture_requests_total"
	// unprefixed is a constant but drifts from the exposition namespace.
	unprefixed = "fixture_bytes_total"
)

func register(r *obs.Registry, dynamic string) {
	r.Counter("mpcdash_raw_total", "help") // want "metric name is a raw string literal"
	r.Counter(MetricRequests, "help")
	r.Gauge(unprefixed, "help")       // want `metric name "fixture_bytes_total" lacks the mpcdash_ exposition prefix`
	r.Histogram(dynamic, "help", nil) // want "metric name does not resolve to a declared string constant"
}

func registerAllowed(r *obs.Registry) {
	r.Counter("mpcdash_legacy_total", "help") //lint:allow httpcontract fixture: legacy dashboard pin
}
