// Package obs is a fixture stand-in for mpcdash/internal/obs: the metric
// constructors whose name argument the httpcontract analyzer audits.
package obs

type Registry struct{}

type Metric struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Metric { return &Metric{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Metric { return &Metric{} }

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Metric {
	return &Metric{}
}
