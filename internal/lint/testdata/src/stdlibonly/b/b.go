package b

import "C" // want `import "C" pulls in cgo`

func unused() {}
