package a

import (
	"fmt"

	_ "mpcdash/internal/notreal"

	_ "github.com/fake/dep" // want `import "github.com/fake/dep" is neither stdlib nor mpcdash`
)

func ok() {
	fmt.Sprint("stdlib and module-internal imports are fine")
}
