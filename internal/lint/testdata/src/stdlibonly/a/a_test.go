package a

import (
	_ "gopkg.in/yaml.v2" // want `import "gopkg.in/yaml.v2" is neither stdlib nor mpcdash`
	"testing"
)

func TestNothing(t *testing.T) {}
