package a

//lint:allow nodeterminism
var missingReason = 1

//lint:allow madeupcheck because reasons
var unknownCheck = 2

//lint:allow
var missingEverything = 3

//lint:allow floateq fixture: well-formed directive is fine even with nothing to suppress
var wellFormed = 4
