package abrsvc

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type store struct {
	mu       sync.Mutex
	rw       sync.RWMutex
	sessions map[string]int
}

func work() {}

// --- positives: blocking while locked ---

func badSend(s *store, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "channel send blocks while s.mu is held"
	s.mu.Unlock()
}

func badRecv(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-ch // want "channel receive blocks while s.mu is held"
	_ = v
}

func badSleep(s *store) {
	s.mu.Lock()
	time.Sleep(time.Second) // want "time.Sleep blocks while s.mu is held"
	s.mu.Unlock()
}

func badHTTP(s *store, c *http.Client, req *http.Request) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	resp, err := c.Do(req) // want `\(net/http.Client\).Do blocks while s.rw is held`
	_, _ = resp, err
}

func badFile(s *store, path string, data []byte) {
	s.mu.Lock()
	os.WriteFile(path, data, 0o644) // want "os.WriteFile blocks while s.mu is held"
	s.mu.Unlock()
}

func badSelect(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without a default blocks while s.mu is held"
	case <-ch:
	}
}

func badWait(s *store, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `\(sync.WaitGroup\).Wait blocks while s.mu is held`
	s.mu.Unlock()
}

// --- positives: exit path without unlock ---

func badReturn(s *store, key string) int {
	s.mu.Lock()
	if v, ok := s.sessions[key]; ok {
		return v // want `return with s.mu.Lock\(\) \(line \d+\) still held and no deferred unlock`
	}
	s.mu.Unlock()
	return 0
}

// --- negatives ---

func goodDefer(s *store, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[key]
}

func goodUnlockBeforeBlocking(s *store, ch chan int) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	ch <- n
}

func goodEarlyUnlockBranch(s *store, key string) int {
	s.mu.Lock()
	if v, ok := s.sessions[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.sessions[key] = 1
	s.mu.Unlock()
	return 1
}

func goodSelectDefault(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

func goodGoroutineLaunch(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1 // runs concurrently; does not block the lock holder
	}()
}

// --- suppression ---

func allowedSleep(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) //lint:allow lockscope fixture: deliberate jitter under lock
}
