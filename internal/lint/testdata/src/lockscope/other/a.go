package other

import (
	"sync"
	"time"
)

// Out-of-scope package: identical hazards, zero findings expected.

type box struct{ mu sync.Mutex }

func notAudited(b *box) {
	b.mu.Lock()
	time.Sleep(time.Second)
	b.mu.Unlock()
}
