package runner

import "context"

func work() {}

func bad() {
	go func() { // want "no cancellation path"
		work()
	}()
}

func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

func goodSelect(stop chan struct{}) {
	go func() {
		select {
		case <-stop:
		}
	}()
}

func goodCtxArg(ctx context.Context) {
	go func(c context.Context) {
		work()
	}(ctx)
}

func goodRangeChan(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

func goodSend(results chan int) {
	go func() {
		results <- 1
	}()
}

func namedFuncIsNotAudited() {
	go work()
}

func allowed() {
	go func() { //lint:allow ctxleak fixture: bounded by process lifetime
		work()
	}()
}
