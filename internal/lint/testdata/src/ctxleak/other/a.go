package other

// Packages outside runner/fleet/emu are not audited for goroutine
// cancellation paths.
func notInScope() {
	go func() {}()
}
