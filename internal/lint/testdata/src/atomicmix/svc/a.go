package svc

import (
	"sync/atomic"
)

// counters mixes a plain int64 driven through sync/atomic functions with
// normal fields.
type counters struct {
	hits  int64
	label string
}

// typed carries a sync/atomic typed field.
type typed struct {
	n    atomic.Int64
	name string
}

// plain has no atomic state at all.
type plain struct {
	n    int64
	name string
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func load(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// --- positives: mixed access ---

func badRead(c *counters) int64 {
	return c.hits // want "plain access of svc.hits, which is written with sync/atomic elsewhere"
}

func badWrite(c *counters) {
	c.hits = 0 // want "plain access of svc.hits, which is written with sync/atomic elsewhere"
}

// --- positives: value copies of atomic-bearing structs ---

func badDerefCopy(p *typed) {
	cp := *p // want "dereference copies svc.typed by value; it carries atomic state"
	cp.name = "copy"
}

func badAssignCopy(t typed) { // want "parameter passes svc.typed by value; it carries atomic state"
	u := t // want "assignment copies svc.typed by value; it carries atomic state"
	u.name = "copy"
}

func badReturnCopy(p *counters) counters {
	return *p // want "dereference copies svc.counters by value; it carries atomic state"
}

func badRangeCopy(ts []typed) int64 {
	var sum int64
	for _, t := range ts { // want "range copies svc.typed by value; it carries atomic state"
		sum += t.n.Load()
	}
	return sum
}

// --- negatives ---

func goodTyped(t *typed) int64 {
	t.n.Add(1)
	return t.n.Load()
}

func goodPlainCopy(p *plain) plain {
	return *p
}

func goodPointerRange(ts []*typed) int64 {
	var sum int64
	for _, t := range ts {
		sum += t.n.Load()
	}
	return sum
}

func goodLabel(c *counters) string {
	return c.label
}

// --- suppression ---

func allowedRead(c *counters) int64 {
	return c.hits //lint:allow atomicmix fixture: read under external lock
}
