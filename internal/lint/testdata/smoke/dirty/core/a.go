package core

import "time"

// Deliberately dirty: a wall-clock read and an exact float comparison in a
// deterministic package. The CLI smoke test asserts mpclint exits 1 here.
func decide(qoe, best float64) bool {
	_ = time.Now()
	return qoe == best
}
