package core

import "math"

// A clean deterministic package: seeded arithmetic, epsilon comparison,
// no wall clock.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}
