package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// StdlibOnly machine-checks the repo's no-dependency policy: every import
// (test files included) must be either the Go standard library or a
// package of this module. Stdlib is recognized the way the toolchain does
// it — the first path segment of a stdlib import never contains a dot;
// anything domain-shaped is a third-party dependency. Cgo ("C") is also
// forbidden: it would tie reproduction results to the host C toolchain.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "enforce that all imports are stdlib or module-internal",
	Run:  runStdlibOnly,
}

func runStdlibOnly(p *Pass) {
	files := append(append([]*ast.File{}, p.Pkg.Files...), p.Pkg.TestFiles...)
	for _, f := range files {
		for _, spec := range f.Imports {
			ip, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case ip == "C":
				p.Reportf(spec.Path.Pos(), `import "C" pulls in cgo; the reproduction must not depend on a host C toolchain`)
			case ip == p.Pkg.ModulePath, strings.HasPrefix(ip, p.Pkg.ModulePath+"/"):
				// module-internal
			default:
				if first, _, _ := strings.Cut(ip, "/"); strings.Contains(first, ".") {
					p.Reportf(spec.Path.Pos(), "import %q is neither stdlib nor %s/...; the repo is dependency-free by policy", ip, p.Pkg.ModulePath)
				}
			}
		}
	}
}
