package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked module package plus the syntax the analyzers
// need: full ASTs for non-test files and import-only ASTs for test files
// (so stdlibonly can audit test imports without type-checking test code).
type Package struct {
	Path       string // import path, e.g. "mpcdash/internal/core"
	Name       string // package name
	Dir        string // absolute directory
	ModulePath string // module root import path, e.g. "mpcdash"
	Fset       *token.FileSet
	Files      []*ast.File // non-test files, full parse with comments
	TestFiles  []*ast.File // *_test.go files, imports-only parse with comments
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // collected, tolerated: analyses are best-effort on broken code
}

// LoadConfig describes what to load.
type LoadConfig struct {
	Dir        string   // module root (absolute or relative)
	ModulePath string   // module import path from go.mod
	Patterns   []string // package dirs relative to Dir, or absolute; "..." suffix recurses
}

// Load parses and type-checks the packages matched by cfg.Patterns.
// Module-internal imports are type-checked from source recursively; all
// other imports resolve through compiler export data located with a single
// `go list -export -deps` invocation. Type errors are collected per package
// rather than aborting, so fixture trees with deliberate violations still
// analyze.
func Load(cfg LoadConfig) ([]*Package, error) {
	dir, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		dir:     dir,
		module:  cfg.ModulePath,
		fset:    token.NewFileSet(),
		raw:     map[string]*rawPkg{},
		checked: map[string]*Package{},
		busy:    map[string]bool{},
	}
	dirs, err := ld.expand(cfg.Patterns)
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, d := range dirs {
		ip, err := ld.importPath(d)
		if err != nil {
			return nil, err
		}
		if _, err := ld.parse(ip, d); err != nil {
			return nil, err
		}
		roots = append(roots, ip)
	}
	// Parse the whole module-internal import closure up front so the
	// external import set is complete before go list runs.
	if err := ld.parseClosure(roots); err != nil {
		return nil, err
	}
	if err := ld.importExternals(); err != nil {
		return nil, err
	}
	var pkgs []*Package
	seen := map[string]bool{}
	for _, ip := range roots {
		if seen[ip] {
			continue
		}
		seen[ip] = true
		pkgs = append(pkgs, ld.check(ip))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

type rawPkg struct {
	dir       string
	name      string
	files     []*ast.File
	testFiles []*ast.File
}

type loader struct {
	dir     string // module root, absolute
	module  string
	fset    *token.FileSet
	raw     map[string]*rawPkg
	checked map[string]*Package
	busy    map[string]bool // cycle guard
	imp     types.Importer  // gc export-data importer for non-module paths
}

// expand resolves patterns to absolute package directories.
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, p := range patterns {
		recursive := false
		if p == "..." {
			p, recursive = ".", true
		} else if strings.HasSuffix(p, "/...") {
			p, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(l.dir, p)
		}
		p = filepath.Clean(p)
		if !recursive {
			dirs = append(dirs, p)
			continue
		}
		err := filepath.WalkDir(p, func(d string, e os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !e.IsDir() {
				return nil
			}
			name := e.Name()
			if d != p && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(d) {
				dirs = append(dirs, d)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPath maps an absolute directory under the module root to its
// import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.dir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.dir)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

func (l *loader) dirFor(importPath string) (string, error) {
	if importPath == l.module {
		return l.dir, nil
	}
	rel := strings.TrimPrefix(importPath, l.module+"/")
	if rel == importPath {
		return "", fmt.Errorf("lint: %q is not under module %q", importPath, l.module)
	}
	return filepath.Join(l.dir, filepath.FromSlash(rel)), nil
}

// parse reads one package directory (memoized).
func (l *loader) parse(importPath, dir string) (*rawPkg, error) {
	if r, ok := l.raw[importPath]; ok {
		return r, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	r := &rawPkg{dir: dir}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		if strings.HasSuffix(name, "_test.go") {
			f, err := parser.ParseFile(l.fset, full, nil, parser.ImportsOnly|parser.ParseComments)
			if err == nil {
				r.testFiles = append(r.testFiles, f)
			}
			continue
		}
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", importPath, err)
		}
		if r.name == "" {
			r.name = f.Name.Name
		}
		r.files = append(r.files, f)
	}
	l.raw[importPath] = r
	return r, nil
}

// parseClosure walks module-internal imports breadth-first from roots,
// parsing every reachable module package.
func (l *loader) parseClosure(roots []string) error {
	queue := append([]string{}, roots...)
	seen := map[string]bool{}
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		if seen[ip] {
			continue
		}
		seen[ip] = true
		r, ok := l.raw[ip]
		if !ok {
			d, err := l.dirFor(ip)
			if err != nil {
				continue
			}
			r, err = l.parse(ip, d)
			if err != nil {
				// Missing module package: surfaced later as a type error.
				continue
			}
		}
		for _, f := range r.files {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if l.isModulePath(p) {
					queue = append(queue, p)
				}
			}
		}
	}
	return nil
}

func (l *loader) isModulePath(p string) bool {
	return p == l.module || strings.HasPrefix(p, l.module+"/")
}

// importExternals locates compiler export data for every non-module import
// reachable from the parsed files and pre-imports it in dependency order
// (go list -deps emits dependencies before dependents, which the indexed
// export-data reader requires).
func (l *loader) importExternals() error {
	ext := map[string]bool{}
	for _, r := range l.raw {
		for _, f := range r.files {
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil || p == "C" || p == "unsafe" || l.isModulePath(p) {
					continue
				}
				// Only stdlib-shaped paths (no dot in the first segment) can
				// resolve: anything else is a policy violation that stdlibonly
				// reports and the type checker tolerates as an import error.
				if first, _, _ := strings.Cut(p, "/"); !strings.Contains(first, ".") {
					ext[p] = true
				}
			}
		}
	}
	if len(ext) == 0 {
		l.imp = importer.ForCompiler(l.fset, "gc", func(string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no export data")
		})
		return nil
	}
	var args []string
	for p := range ext {
		args = append(args, p)
	}
	sort.Strings(args)
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, args...)...)
	cmd.Dir = l.dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return fmt.Errorf("lint: go list -export failed: %s", msg)
	}
	exports := map[string]string{}
	var order []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			exports[ip] = file
			order = append(order, ip)
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	for _, ip := range order {
		l.imp.Import(ip) // errors resurface per-package at type-check time
	}
	return nil
}

// Import implements types.Importer, routing module paths to source
// type-checking and everything else to export data.
func (l *loader) Import(p string) (*types.Package, error) {
	if p == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(p) {
		pkg := l.check(p)
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: could not load %q", p)
		}
		return pkg.Types, nil
	}
	return l.imp.Import(p)
}

// check type-checks one module package (memoized, cycle-guarded).
func (l *loader) check(importPath string) *Package {
	if p, ok := l.checked[importPath]; ok {
		return p
	}
	pkg := &Package{
		Path:       importPath,
		ModulePath: l.module,
		Fset:       l.fset,
	}
	if l.busy[importPath] {
		pkg.TypeErrors = append(pkg.TypeErrors, fmt.Errorf("import cycle through %q", importPath))
		return pkg
	}
	l.busy[importPath] = true
	defer delete(l.busy, importPath)

	r, ok := l.raw[importPath]
	if !ok {
		d, err := l.dirFor(importPath)
		if err == nil {
			r, err = l.parse(importPath, d)
		}
		if err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
			l.checked[importPath] = pkg
			return pkg
		}
	}
	pkg.Dir = r.dir
	pkg.Name = r.name
	pkg.Files = r.files
	pkg.TestFiles = r.testFiles
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(importPath, l.fset, r.files, pkg.Info) // errors already collected
	pkg.Types = tpkg
	l.checked[importPath] = pkg
	return pkg
}

// baseName is the last import-path segment, used for analyzer scoping.
func (p *Package) baseName() string { return path.Base(p.Path) }
