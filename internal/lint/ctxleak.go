package lint

import (
	"go/ast"
)

// leakScope covers the packages that spawn goroutines at scale: the
// dataset runner's worker pool, the fleet orchestrator, and the emulation
// client/server.
var leakScope = fileScope{
	"runner": nil,
	"fleet":  nil,
	"emu":    nil,
	"abrsvc": nil,
}

// CtxLeak flags `go func` literals that capture neither a context.Context
// nor any channel operation. Such a goroutine has no cancellation path: in
// a 10k-session fleet run it outlives its session on drain, pins memory,
// and trips the race/leak tests only when timing cooperates. Thread a ctx
// through it, or give it a channel to select on.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "flag goroutine literals with no context or channel cancellation path",
	Run:  runCtxLeak,
}

func runCtxLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range leakScope.files(p.Pkg) {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named function: its own body is its own audit
			}
			for _, arg := range gs.Call.Args {
				if t := info.TypeOf(arg); isContext(t) || isChan(t) {
					return true
				}
			}
			if hasCancelPath(p, fl) {
				return true
			}
			p.Reportf(gs.Pos(), "goroutine literal has no cancellation path; capture a context.Context or select on a channel")
			return true
		})
	}
}

// hasCancelPath reports whether the goroutine body touches anything that
// can end it from outside: a context.Context value, any channel operation
// (send, receive, close, range), or a select statement.
func hasCancelPath(p *Pass, fl *ast.FuncLit) bool {
	info := p.Pkg.Info
	found := false
	ast.Inspect(fl, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		case *ast.Ident:
			if t := info.TypeOf(n); isContext(t) || isChan(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
