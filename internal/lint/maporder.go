package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// orderScope covers the packages whose outputs are promised byte-identical:
// CSV/JSON exporters, fleet report emission, the obs registry/exposition,
// and the plotters.
var orderScope = fileScope{
	"export": nil,
	"viz":    nil,
	"obs":    nil,
	"fleet":  {"report.go"},
}

// writeMethods are emitter method names whose call order becomes output
// byte order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// metricMethods are obs-registry emission methods.
var metricMethods = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Observe": true,
}

// MapOrder flags `range` over a map whose body appends to a slice, writes
// to a writer/encoder, or emits obs metrics: Go randomizes map iteration
// order, so the order leaks straight into outputs that tests pin
// byte-for-byte. The sanctioned pattern — collect the keys, sort them,
// iterate the sorted slice — is recognized and not flagged: an append of
// only the key variable is allowed when the same function sorts the
// destination slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work inside map iteration in output-emitting packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	info := p.Pkg.Info
	for _, f := range orderScope.files(p.Pkg) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortTargets(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := typeAsMap(info.TypeOf(rs.X)); !isMap {
					return true
				}
				checkMapRangeBody(p, rs, sorted)
				return true
			})
		}
	}
}

func typeAsMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

// sortTargets collects identifier names that appear as arguments to
// sort.*/slices.Sort* calls anywhere in body — slices that get sorted
// after collection and are therefore safe append destinations.
func sortTargets(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || (base.Name != "sort" && base.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, sorted map[string]bool) {
	keyName := ""
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 2 {
			if keyCollectIdiom(call, keyName, sorted) {
				return true
			}
			p.Reportf(call.Pos(), "append inside map iteration leaks hash order into the slice; collect keys, sort, then iterate")
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if pkgPath, ok := importedPackage(info, sel.X); ok {
			if pkgPath == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint" || name == "Printf" || name == "Println" || name == "Print") {
				p.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in hash order; iterate sorted keys instead", name)
			}
			return true
		}
		if writeMethods[name] {
			p.Reportf(call.Pos(), "%s call inside map iteration writes output in hash order; iterate sorted keys instead", name)
			return true
		}
		if metricMethods[name] && obsReceiver(info, sel) {
			p.Reportf(call.Pos(), "metric %s inside map iteration emits in hash order; iterate sorted keys instead", name)
		}
		return true
	})
}

// keyCollectIdiom reports whether call is `dst = append(dst, key)` with dst
// sorted later in the same function — the sanctioned sorted-keys pattern.
func keyCollectIdiom(call *ast.CallExpr, keyName string, sorted map[string]bool) bool {
	if keyName == "" {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != keyName {
			return false
		}
	}
	dst, ok := call.Args[0].(*ast.Ident)
	return ok && sorted[dst.Name]
}

// obsReceiver reports whether sel is a method selection on a type declared
// in an obs package (the metrics registry).
func obsReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	s := info.Selections[sel]
	if s == nil || s.Obj() == nil || s.Obj().Pkg() == nil {
		return false
	}
	return path.Base(s.Obj().Pkg().Path()) == "obs"
}
