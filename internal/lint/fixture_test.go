package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regexp"` and `// want `+"`regexp`"+“ expectation
// comments from fixture source lines.
var wantRe = regexp.MustCompile("// want (?:\"([^\"]*)\"|`([^`]*)`)")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every .go file under root for want comments, keyed by
// absolute file path and line.
func collectWants(t *testing.T, root string) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", p, i+1, pat, err)
				}
				key := fmt.Sprintf("%s:%d", abs, i+1)
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func loadFixture(t *testing.T, fixture string) []*Package {
	t.Helper()
	root := filepath.Join("testdata", "src", fixture)
	pkgs, err := Load(LoadConfig{Dir: root, ModulePath: "mpcdash"})
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", fixture)
	}
	return pkgs
}

// TestFixtures runs each analyzer over its golden fixture tree and matches
// findings against the inline want comments: every want must be hit and
// every finding must be wanted, which also proves the suppression and
// scoping negative cases (their lines carry no want).
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkgs := loadFixture(t, a.Name)
			diags := Run(pkgs, []*Analyzer{a})
			wants := collectWants(t, filepath.Join("testdata", "src", a.Name))
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				found := false
				for _, w := range wants[key] {
					if !w.matched && w.re.MatchString(d.Message) {
						w.matched, found = true, true
						break
					}
				}
				if !found {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for key, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s: want %q not reported", key, w.re)
					}
				}
			}
		})
	}
}

// TestDirectiveDiagnostics checks that malformed //lint:allow directives
// are themselves reported, and well-formed ones are not.
func TestDirectiveDiagnostics(t *testing.T) {
	pkgs := loadFixture(t, "lintdirective")
	diags := Run(pkgs, nil) // directives are validated regardless of analyzer set
	want := map[int]string{
		3: "needs a one-line reason",
		6: `unknown check "madeupcheck"`,
		9: "needs a check name and a reason",
	}
	for _, d := range diags {
		if d.Check != "lintdirective" {
			t.Errorf("unexpected check %q in %s", d.Check, d)
			continue
		}
		msg, ok := want[d.Line]
		if !ok {
			t.Errorf("unexpected directive finding: %s", d)
			continue
		}
		if !strings.Contains(d.Message, msg) {
			t.Errorf("line %d: got %q, want substring %q", d.Line, d.Message, msg)
		}
		delete(want, d.Line)
	}
	for line, msg := range want {
		t.Errorf("missing directive finding at line %d (%s)", line, msg)
	}
}

// TestSuppressionScope pins the suppression rule: a directive covers its
// own line and the line directly below, nothing else.
func TestSuppressionScope(t *testing.T) {
	pkgs := loadFixture(t, "nodeterminism")
	diags := Run(pkgs, []*Analyzer{NoDeterminism})
	for _, d := range diags {
		if strings.Contains(d.File, "a.go") && d.Line > 25 {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
}

// TestAnalyzersByName covers the -checks flag plumbing.
func TestAnalyzersByName(t *testing.T) {
	all, err := AnalyzersByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("empty selector: got %d analyzers, err=%v", len(all), err)
	}
	two, err := AnalyzersByName("floateq, ctxleak")
	if err != nil || len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "ctxleak" {
		t.Fatalf("subset selector failed: %v %v", two, err)
	}
	if _, err := AnalyzersByName("nope"); err == nil {
		t.Fatal("unknown check name should error")
	}
}
