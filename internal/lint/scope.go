package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// fileScope restricts a check to specific packages, optionally to specific
// file basenames within a package. A nil basename list means every non-test
// file in the package. Packages are matched on the last import-path segment
// so the same tables drive both the real tree ("mpcdash/internal/core") and
// the golden fixtures ("mpcdash/core").
type fileScope map[string][]string

// files returns the non-test files of pkg the scope covers (nil if the
// package is out of scope).
func (s fileScope) files(pkg *Package) []*ast.File {
	bases, ok := s[pkg.baseName()]
	if !ok {
		return nil
	}
	if bases == nil {
		return pkg.Files
	}
	want := map[string]bool{}
	for _, b := range bases {
		want[b] = true
	}
	var out []*ast.File
	for _, f := range pkg.Files {
		if want[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] {
			out = append(out, f)
		}
	}
	return out
}

// importedPackage reports the import path x refers to, if x is a package
// qualifier identifier (e.g. the `time` in `time.Now`).
func importedPackage(info *types.Info, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isFloat reports whether t's core type is a floating-point basic type
// (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
