package lint

import (
	"go/ast"
)

// detScope lists the packages whose outputs must be bit-identical across
// runs: the MPC/FastMPC decision paths, QoE model, offline optimum,
// simulator, statistics, synthetic trace generation, and the fleet
// aggregation files (the fleet orchestrator itself paces real goroutines
// and legitimately reads the wall clock).
var detScope = fileScope{
	"core":    nil,
	"fastmpc": nil,
	"model":   nil,
	"optimal": nil,
	"sim":     nil,
	"stats":   nil,
	"trace":   nil,
	"fleet":   {"accum.go", "report.go"},
	// The decision service's decision path must be a pure function of the
	// session's request history; the server loop (http.go), admission
	// valve and client legitimately read the wall clock.
	"abrsvc": {"api.go", "decide.go", "fairness.go", "store.go"},
}

// wallClockFuncs are time functions that read or depend on the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRandFuncs are the package-level math/rand (and v2) functions backed
// by the shared, unseeded-by-default global source. Constructing a seeded
// *rand.Rand via rand.New(rand.NewSource(seed)) is the sanctioned pattern
// and is not flagged.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true,
}

// NoDeterminism forbids wall-clock reads and global math/rand draws inside
// the deterministic packages. Same seed must mean same bytes: a time.Now
// or rand.Float64 in a decision or aggregation path silently breaks the
// byte-identical report guarantee the fleet tests pin.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock time and unseeded global math/rand in deterministic packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(p *Pass) {
	if p.Pkg.Name == "main" {
		// CLIs and examples print elapsed wall time legitimately; the
		// invariant protects the library decision/aggregation paths.
		return
	}
	for _, f := range detScope.files(p.Pkg) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := importedPackage(p.Pkg.Info, sel.X)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch path {
			case "time":
				if wallClockFuncs[name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock inside deterministic package %s; inject a clock or move timing to obs", name, p.Pkg.baseName())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					p.Reportf(sel.Pos(), "global rand.%s uses the shared source inside deterministic package %s; draw from a seeded rand.New(rand.NewSource(seed))", name, p.Pkg.baseName())
				}
			}
			return true
		})
	}
}
