package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noAllocMarker is the annotation contract: a function whose doc comment
// group contains this directive promises zero heap allocations per call in
// steady state. The static check below enforces the promise structurally;
// `make lint-alloc` (cmd/mpclint -alloccheck) cross-checks it against the
// compiler's own escape analysis so the analyzer and gc agree.
const noAllocMarker = "mpc:noalloc"

// NoAlloc enforces the //mpc:noalloc contract on the solver/lookup hot
// paths (core.Optimizer.Plan/PlanScratch/search, the fastmpc bin mappers
// and table lookups, the abrsvc decide lookup path). Inside an annotated
// function it flags the constructs that force heap allocation or defeat
// escape analysis:
//
//   - make/new builtins and append
//   - slice/map composite literals and &composite (escaping candidates)
//   - function literals (closure environment capture)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - fmt.* calls (variadic ...any boxes every argument)
//   - passing a non-pointer concrete value where an interface is expected
//     (interface boxing; pointers store directly in the iface data word)
//
// The check is intraprocedural: calls to other functions are not followed,
// which is exactly why the -alloccheck compiler cross-check exists. Cold
// paths that intentionally allocate (pool refill, lazy growth) belong in
// separate un-annotated functions, not under a //lint:allow.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //mpc:noalloc must avoid allocation-inducing constructs",
	Run:  runNoAlloc,
}

// NoAllocFunc locates one annotated function for the escape-analysis
// cross-check: any compiler "escapes to heap"/"moved to heap" message
// positioned within [StartLine, EndLine] of File is a contract violation.
type NoAllocFunc struct {
	Name      string // package-qualified, e.g. "core.(*Optimizer).PlanScratch"
	File      string
	StartLine int
	EndLine   int
}

// NoAllocInventory lists every //mpc:noalloc function in pkgs, sorted by
// file then start line.
func NoAllocInventory(pkgs []*Package) []NoAllocFunc {
	var out []NoAllocFunc
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasNoAllocMarker(fd) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				out = append(out, NoAllocFunc{
					Name:      pkg.Name + "." + funcDisplayName(fd),
					File:      start.Filename,
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && noAllocLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func noAllocLess(a, b NoAllocFunc) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.StartLine < b.StartLine
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star, recv = "*", se.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func hasNoAllocMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), noAllocMarker) {
			return true
		}
	}
	return false
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasNoAllocMarker(fd) {
				continue
			}
			if fd.Body == nil {
				continue
			}
			checkNoAllocBody(p, fd)
		}
	}
}

func checkNoAllocBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in //mpc:noalloc function %s: the environment capture allocates; inline the logic or hoist state into a scratch struct", fd.Name.Name)
			return false
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal in //mpc:noalloc function %s allocates its backing array; reuse a scratch buffer", fd.Name.Name)
			case *types.Map:
				p.Reportf(n.Pos(), "map literal in //mpc:noalloc function %s allocates; hoist it to a package-level table", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					p.Reportf(n.Pos(), "&composite literal in //mpc:noalloc function %s is an escape candidate; use a value or a caller-provided pointer", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				p.Reportf(n.Pos(), "string concatenation in //mpc:noalloc function %s allocates", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				p.Reportf(n.Pos(), "string += in //mpc:noalloc function %s allocates", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkNoAllocCall(p, fd, n)
		}
		return true
	})
}

func checkNoAllocCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Pkg.Info
	// Builtins: make, new, append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new", "append":
				p.Reportf(call.Pos(), "%s in //mpc:noalloc function %s allocates; move growth to an un-annotated cold path", b.Name(), fd.Name.Name)
			}
			return
		}
	}
	// Conversions: string([]byte), []byte(string), []rune(string), string([]rune).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := info.TypeOf(call.Fun), info.TypeOf(call.Args[0])
		if isStringBytesConversion(to, from) {
			p.Reportf(call.Pos(), "string/[]byte conversion in //mpc:noalloc function %s copies and allocates", fd.Name.Name)
		}
		return
	}
	// fmt.* anywhere on the hot path boxes arguments and allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, isPkg := importedPackage(info, sel.X); isPkg && path == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s in //mpc:noalloc function %s allocates (variadic ...any boxing)", sel.Sel.Name, fd.Name.Name)
			return
		}
	}
	// Interface boxing at the call site: a non-pointer concrete argument
	// passed to an interface-typed parameter must be heap-boxed.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue // interface-to-interface copies, no box
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers store directly in the iface data word
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "non-pointer value boxed into interface in //mpc:noalloc function %s; pass a pointer or avoid the interface", fd.Name.Name)
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringBytesConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
