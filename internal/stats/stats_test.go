package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); got != 2 {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.1, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.35); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("interpolated quantile = %v, want 3.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

// TestQuantileDoesNotMutate: the input slice must not be reordered.
func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("CDF quantile = %v, want 2", got)
	}
}

// TestCDFProperties: CDF is a proper distribution function.
func TestCDFProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		if !sort.Float64sAreSorted(c.X) {
			return false
		}
		prev := 0.0
		for _, p := range c.P {
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.P[len(c.P)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	p := c.Points(11)
	if len(p.X) != 11 {
		t.Fatalf("Points(11) has %d entries", len(p.X))
	}
	if p.X[0] != c.X[0] || p.X[10] != c.X[99] {
		t.Error("down-sampling must keep the endpoints")
	}
	// No-op when already small enough.
	small := NewCDF([]float64{1, 2})
	if got := small.Points(10); len(got.X) != 2 {
		t.Errorf("Points on small CDF changed size: %d", len(got.X))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Errorf("P50 = %v, want 5.5", s.P50)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
}
