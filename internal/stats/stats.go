// Package stats provides the small set of descriptive statistics the
// evaluation needs: means, standard deviations, quantiles, and empirical
// CDFs rendered as the point series the paper's figures plot.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation, or NaN for an empty slice.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
// It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CDF is an empirical cumulative distribution: at X[i] the fraction of
// observations ≤ X[i] is P[i].
type CDF struct {
	X []float64
	P []float64
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	c := CDF{X: sorted, P: make([]float64, n)}
	for i := range c.P {
		c.P[i] = float64(i+1) / float64(n)
	}
	return c
}

// At returns the CDF value at x.
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.X, x)
	// SearchFloat64s finds the first index with X[i] >= x; walk forward over
	// equal values so we count every observation ≤ x.
	for i < len(c.X) && c.X[i] == x { //lint:allow floateq duplicate-sample walk over sorted raw observations, not computed values
		i++
	}
	if i == 0 {
		return 0
	}
	return c.P[i-1]
}

// Quantile inverts the CDF.
func (c CDF) Quantile(q float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	return quantileSorted(c.X, q)
}

// Points down-samples the CDF to at most n evenly spaced points for
// compact printing of figure series.
func (c CDF) Points(n int) CDF {
	if n <= 0 || len(c.X) <= n {
		return c
	}
	out := CDF{X: make([]float64, n), P: make([]float64, n)}
	for i := 0; i < n; i++ {
		j := i * (len(c.X) - 1) / (n - 1)
		out.X[i] = c.X[j]
		out.P[i] = c.P[j]
	}
	return out
}

// Summary is a compact five-number-style description of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P25, P50, P75 float64
	P90, Max           float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Std, s.Min, s.P25, s.P50, s.P75, s.P90, s.Max = nan, nan, nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Mean = Mean(xs)
	s.Std = Stddev(xs)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P25 = quantileSorted(sorted, 0.25)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P90 = quantileSorted(sorted, 0.90)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f std=%.1f min=%.1f p25=%.1f p50=%.1f p75=%.1f p90=%.1f max=%.1f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.P50, s.P75, s.P90, s.Max)
}
