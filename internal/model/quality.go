package model

import (
	"math"
	"reflect"
)

// QualityFunc maps a bitrate in kbps to the perceived quality q(R). The paper
// requires only that it be non-decreasing; the evaluation uses the identity.
type QualityFunc func(kbps float64) float64

// QIdentity is q(R) = R, the paper's default.
func QIdentity(kbps float64) float64 { return kbps }

// QualityID returns a stable, build-independent identifier for a quality
// function, used to content-address cached FastMPC decision tables. Only
// QIdentity has one; parameterized families (QLog, QHD) return closures
// whose captured parameters are invisible from the function value — every
// QLog(rmin) shares one code pointer — so they get no identity and their
// tables are never shared or cached.
func QualityID(q QualityFunc) string {
	if q != nil && reflect.ValueOf(q).Pointer() == reflect.ValueOf(QIdentity).Pointer() {
		return "identity"
	}
	return ""
}

// QLog is a logarithmic quality function, q(R) = ln(R/Rmin) scaled to kbps
// magnitude so QoE weights remain comparable. It models the diminishing
// perceptual return of higher bitrates (e.g. on small screens).
func QLog(rmin float64) QualityFunc {
	return func(kbps float64) float64 {
		if kbps <= 0 || rmin <= 0 {
			return 0
		}
		return 1000 * math.Log(kbps/rmin)
	}
}

// QHD emphasizes high bitrates, modelling a large display where the jump to
// the top rungs matters: q(R) = R^1.2 / Rmax^0.2 (normalized so q(Rmax)=Rmax).
func QHD(rmax float64) QualityFunc {
	return func(kbps float64) float64 {
		if kbps <= 0 || rmax <= 0 {
			return 0
		}
		return math.Pow(kbps, 1.2) / math.Pow(rmax, 0.2)
	}
}
