package model

import "math"

// QualityFunc maps a bitrate in kbps to the perceived quality q(R). The paper
// requires only that it be non-decreasing; the evaluation uses the identity.
type QualityFunc func(kbps float64) float64

// QIdentity is q(R) = R, the paper's default.
func QIdentity(kbps float64) float64 { return kbps }

// QLog is a logarithmic quality function, q(R) = ln(R/Rmin) scaled to kbps
// magnitude so QoE weights remain comparable. It models the diminishing
// perceptual return of higher bitrates (e.g. on small screens).
func QLog(rmin float64) QualityFunc {
	return func(kbps float64) float64 {
		if kbps <= 0 || rmin <= 0 {
			return 0
		}
		return 1000 * math.Log(kbps/rmin)
	}
}

// QHD emphasizes high bitrates, modelling a large display where the jump to
// the top rungs matters: q(R) = R^1.2 / Rmax^0.2 (normalized so q(Rmax)=Rmax).
func QHD(rmax float64) QualityFunc {
	return func(kbps float64) float64 {
		if kbps <= 0 || rmax <= 0 {
			return 0
		}
		return math.Pow(kbps, 1.2) / math.Pow(rmax, 0.2)
	}
}
