// Package model defines the video-streaming model of Yin et al. (SIGCOMM 2015):
// the bitrate ladder, the video manifest with per-chunk sizes (CBR and VBR),
// perceived-quality functions q(·), QoE weights, and the QoE metric of Eq. (5).
//
// Units used throughout the module: bitrates and throughput in kbps
// (kilobits per second), chunk sizes in kilobits, and time in seconds.
// With these units a chunk of duration L seconds encoded at R kbps has size
// L·R kilobits and downloads in (L·R)/C seconds over a C kbps link.
package model

import (
	"fmt"
	"sort"
)

// Ladder is an ascending set of available bitrate levels in kbps.
// It corresponds to the set R in the paper.
type Ladder []float64

// EnvivioLadder is the bitrate ladder of the paper's "Envivio" test video:
// {350, 600, 1000, 2000, 3000} kbps, matching YouTube's 240p–1080p guidance.
func EnvivioLadder() Ladder {
	return Ladder{350, 600, 1000, 2000, 3000}
}

// UniformLadder returns n bitrate levels spaced uniformly in [lo, hi] kbps.
// It is used by the bitrate-granularity sensitivity experiment (Sec 7.3).
func UniformLadder(n int, lo, hi float64) Ladder {
	if n < 1 {
		return nil
	}
	if n == 1 {
		return Ladder{lo}
	}
	l := make(Ladder, n)
	step := (hi - lo) / float64(n-1)
	for i := range l {
		l[i] = lo + float64(i)*step
	}
	return l
}

// Validate reports an error if the ladder is empty, non-positive or not
// strictly ascending.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("model: empty bitrate ladder")
	}
	for i, r := range l {
		if r <= 0 {
			return fmt.Errorf("model: non-positive bitrate %v at level %d", r, i)
		}
		if i > 0 && r <= l[i-1] {
			return fmt.Errorf("model: ladder not strictly ascending at level %d (%v after %v)", i, r, l[i-1])
		}
	}
	return nil
}

// Min returns the lowest bitrate in kbps.
func (l Ladder) Min() float64 { return l[0] }

// Max returns the highest bitrate in kbps.
func (l Ladder) Max() float64 { return l[len(l)-1] }

// HighestBelow returns the index of the highest level not exceeding kbps,
// or 0 if every level exceeds it. This is the canonical rate-based rule.
func (l Ladder) HighestBelow(kbps float64) int {
	// sort.SearchFloat64s returns the first index with l[i] >= kbps.
	i := sort.SearchFloat64s(l, kbps)
	if i < len(l) && l[i] == kbps { //lint:allow floateq exact hit after binary search over the caller's own ladder values
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// Clamp restricts idx to a valid level index.
func (l Ladder) Clamp(idx int) int {
	if idx < 0 {
		return 0
	}
	if idx >= len(l) {
		return len(l) - 1
	}
	return idx
}
