package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// session builds a SessionResult from level choices and rebuffer seconds.
func session(m *Manifest, levels []int, rebuffers []float64, startup float64) *SessionResult {
	r := &SessionResult{Algorithm: "test", StartupDelay: startup}
	for i, lvl := range levels {
		rec := ChunkRecord{
			Index:   i,
			Level:   lvl,
			Bitrate: m.Ladder[lvl],
		}
		if i < len(rebuffers) {
			rec.Rebuffer = rebuffers[i]
		}
		r.Chunks = append(r.Chunks, rec)
	}
	return r
}

func TestQoEHandComputed(t *testing.T) {
	m := EnvivioManifest()
	// Levels 350, 600, 600; one 2-second rebuffer; 1.5 s startup.
	r := session(m, []int{0, 1, 1}, []float64{0, 2, 0}, 1.5)
	w := Balanced // λ=1 µ=µs=3000
	want := (350 + 600 + 600) - 1*(250+0) - 3000*2 - 3000*1.5
	if got := r.QoE(w, QIdentity); math.Abs(got-want) > 1e-9 {
		t.Errorf("QoE = %v, want %v", got, want)
	}
}

func TestQoEWeightSensitivity(t *testing.T) {
	m := EnvivioManifest()
	r := session(m, []int{4, 0, 4}, []float64{0, 1, 0}, 0)
	base := r.QoE(Balanced, QIdentity)
	instab := r.QoE(AvoidInstability, QIdentity)
	rebuf := r.QoE(AvoidRebuffering, QIdentity)
	if instab >= base {
		t.Errorf("AvoidInstability should penalize this switchy session more: %v vs %v", instab, base)
	}
	if rebuf >= base {
		t.Errorf("AvoidRebuffering should penalize this stalling session more: %v vs %v", rebuf, base)
	}
}

func TestComputeMetrics(t *testing.T) {
	m := EnvivioManifest()
	r := session(m, []int{0, 2, 2, 4}, []float64{1, 0, 0.5, 0}, 2)
	got := r.ComputeMetrics(QIdentity)
	if want := (350 + 1000 + 1000 + 3000) / 4.0; math.Abs(got.AvgBitrate-want) > 1e-9 {
		t.Errorf("AvgBitrate = %v, want %v", got.AvgBitrate, want)
	}
	if want := (650 + 0 + 2000) / 3.0; math.Abs(got.AvgBitrateChange-want) > 1e-9 {
		t.Errorf("AvgBitrateChange = %v, want %v", got.AvgBitrateChange, want)
	}
	if got.Switches != 2 {
		t.Errorf("Switches = %d, want 2", got.Switches)
	}
	if math.Abs(got.RebufferTime-1.5) > 1e-9 {
		t.Errorf("RebufferTime = %v, want 1.5", got.RebufferTime)
	}
	if got.RebufferEvents != 2 {
		t.Errorf("RebufferEvents = %d, want 2", got.RebufferEvents)
	}
	if got.StartupDelay != 2 {
		t.Errorf("StartupDelay = %v, want 2", got.StartupDelay)
	}
}

func TestComputeMetricsEmpty(t *testing.T) {
	r := &SessionResult{}
	got := r.ComputeMetrics(QIdentity)
	if got.AvgBitrate != 0 || got.Switches != 0 {
		t.Errorf("empty session metrics = %+v", got)
	}
}

// TestQoETermsMatchesSession: the incremental scorer used by the optimizers
// agrees with the session-level evaluation.
func TestQoETermsMatchesSession(t *testing.T) {
	m := EnvivioManifest()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		levels := make([]int, n)
		rebufs := make([]float64, n)
		bitrates := make([]float64, n)
		for i := range levels {
			levels[i] = rng.Intn(m.Levels())
			rebufs[i] = rng.Float64() * 3
			bitrates[i] = m.Ladder[levels[i]]
		}
		startup := rng.Float64() * 5
		r := session(m, levels, rebufs, startup)
		w := Balanced
		a := r.QoE(w, QIdentity)
		b := QoETerms(w, QIdentity, bitrates, rebufs, 0, false, startup)
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQualityFuncs(t *testing.T) {
	if QIdentity(1234) != 1234 {
		t.Error("QIdentity not identity")
	}
	qlog := QLog(350)
	if qlog(350) != 0 {
		t.Errorf("QLog(350)(350) = %v, want 0", qlog(350))
	}
	if qlog(3000) <= qlog(1000) {
		t.Error("QLog not increasing")
	}
	if qlog(0) != 0 || qlog(-5) != 0 {
		t.Error("QLog should clamp non-positive input to 0")
	}
	qhd := QHD(3000)
	if math.Abs(qhd(3000)-3000) > 1e-6 {
		t.Errorf("QHD(3000)(3000) = %v, want 3000", qhd(3000))
	}
	if qhd(3000)-qhd(2000) <= qhd(1350)-qhd(350) {
		t.Error("QHD should emphasize the top of the ladder")
	}
	if qhd(0) != 0 {
		t.Error("QHD should clamp non-positive input to 0")
	}
}

// TestQoEMonotoneInRebuffer: adding stall time never helps.
func TestQoEMonotoneInRebuffer(t *testing.T) {
	m := EnvivioManifest()
	f := func(extra float64) bool {
		extra = math.Abs(extra)
		if math.IsNaN(extra) || math.IsInf(extra, 0) {
			return true
		}
		a := session(m, []int{2, 2}, []float64{0, 0}, 0).QoE(Balanced, QIdentity)
		b := session(m, []int{2, 2}, []float64{0, extra}, 0).QoE(Balanced, QIdentity)
		return b <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQoEEventCount(t *testing.T) {
	m := EnvivioManifest()
	// Two stalls of different lengths: the event-count variant charges them
	// equally, the duration variant does not.
	short := session(m, []int{2, 2, 2}, []float64{0, 0.1, 0}, 0)
	long := session(m, []int{2, 2, 2}, []float64{0, 9, 0}, 0)
	const perEvent = 2000
	if a, b := short.QoEEventCount(Balanced, QIdentity, perEvent), long.QoEEventCount(Balanced, QIdentity, perEvent); a != b {
		t.Errorf("event-count QoE should not depend on stall length: %v vs %v", a, b)
	}
	if a, b := short.QoE(Balanced, QIdentity), long.QoE(Balanced, QIdentity); a <= b {
		t.Errorf("duration QoE must punish the longer stall: %v vs %v", a, b)
	}
	// Hand-computed: 3×1000 − 1 event×2000 − 0 startup.
	want := 3000.0 - perEvent
	if got := short.QoEEventCount(Balanced, QIdentity, perEvent); math.Abs(got-want) > 1e-9 {
		t.Errorf("QoEEventCount = %v, want %v", got, want)
	}
}
