package model

import "testing"

// QualityID must name QIdentity and refuse to name closures: Go gives
// every QLog/QHD instantiation the same code pointer, so two closures
// with different parameters are indistinguishable by function value and
// must never share a cache identity.
func TestQualityID(t *testing.T) {
	if got := QualityID(QIdentity); got != "identity" {
		t.Errorf("QualityID(QIdentity) = %q, want \"identity\"", got)
	}
	if got := QualityID(nil); got != "" {
		t.Errorf("QualityID(nil) = %q, want \"\"", got)
	}
	if got := QualityID(QLog(100)); got != "" {
		t.Errorf("QualityID(QLog(100)) = %q, want \"\" (closures have no stable identity)", got)
	}
	if got := QualityID(QHD(3000)); got != "" {
		t.Errorf("QualityID(QHD(3000)) = %q, want \"\"", got)
	}
}
