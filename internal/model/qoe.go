package model

import "math"

// Weights are the non-negative QoE weighting parameters of Eq. (5):
// λ penalizes quality variation, µ rebuffering seconds, µs startup seconds.
type Weights struct {
	Lambda float64 // quality-variation weight λ
	Mu     float64 // rebuffer weight µ (kbps-equivalent per second)
	MuS    float64 // startup-delay weight µs
}

// The three preference sets evaluated in Fig 11b.
var (
	// Balanced is the paper's default: λ=1, µ=µs=3000 — one second of
	// rebuffering costs as much as lowering one chunk by 3000 kbps.
	Balanced = Weights{Lambda: 1, Mu: 3000, MuS: 3000}
	// AvoidInstability triples the switching penalty.
	AvoidInstability = Weights{Lambda: 3, Mu: 3000, MuS: 3000}
	// AvoidRebuffering doubles the rebuffer and startup penalties.
	AvoidRebuffering = Weights{Lambda: 1, Mu: 6000, MuS: 6000}
)

// ChunkRecord is the per-chunk outcome of a playback session, sufficient to
// evaluate Eq. (5) and the per-factor CDFs of Figs 9–10.
type ChunkRecord struct {
	Index        int     // chunk number, 0-based
	Level        int     // chosen ladder level
	Bitrate      float64 // kbps of the chosen level
	SizeKbits    float64 // d_k(R_k)
	StartTime    float64 // t_k, seconds since session start
	DownloadTime float64 // d_k(R_k)/C_k seconds
	Throughput   float64 // C_k, average kbps during the download
	BufferBefore float64 // B_k seconds
	BufferAfter  float64 // B_{k+1} seconds
	Rebuffer     float64 // (d_k/C_k - B_k)+ seconds
	Wait         float64 // Δt_k seconds (buffer-full wait)
	Predicted    float64 // throughput prediction used for this chunk, 0 if none

	// DecisionTime is the controller's wall-clock cost for this chunk's
	// decision in real seconds — the Sec 7.4 overhead quantity, recorded
	// per decision so a regression can be pinned to a specific chunk.
	DecisionTime float64

	// Transport-health counters, populated by the emulated HTTP client
	// (always zero in the pure simulator, where downloads cannot fail).
	Retries  int  // extra download attempts needed beyond the first
	Resumes  int  // attempts that resumed a truncated transfer via HTTP Range
	Fallback bool // served at the lowest level after the chosen level's retries ran out

	// Attempts is the per-attempt transport timing of this chunk's
	// download, in session (media) time — one entry per HTTP request the
	// download engine issued, so retry and backoff time is attributable
	// inside the chunk's download span. Nil in the pure simulator.
	Attempts []AttemptRecord
}

// AttemptRecord times one HTTP attempt within a chunk download, including
// the backoff that preceded it. Times are media-seconds on the session
// clock, like every other duration in the record.
type AttemptRecord struct {
	Start    float64 // media-s since session start when the request was issued
	Duration float64 // media-s the attempt lasted
	Backoff  float64 // media-s of backoff wait immediately before Start
	Level    int     // ladder level the attempt requested
	Resumed  bool    // the attempt resumed a truncated body via HTTP Range
	Error    string  // "" when the attempt delivered the remaining body
}

// SessionResult is a completed playback session: the startup delay chosen or
// incurred, and one record per chunk in order.
type SessionResult struct {
	Algorithm    string
	StartupDelay float64 // Ts seconds
	Chunks       []ChunkRecord
}

// Metrics are the aggregate QoE factors of a session.
type Metrics struct {
	AvgBitrate       float64 // mean chosen bitrate, kbps
	AvgQuality       float64 // mean q(R_k)
	AvgQualityChange float64 // mean |q(R_{k+1})-q(R_k)| per transition, kbps
	AvgBitrateChange float64 // mean |R_{k+1}-R_k| per transition, kbps
	Switches         int     // number of level changes
	RebufferTime     float64 // total seconds of stall
	RebufferEvents   int     // number of chunks that stalled
	StartupDelay     float64 // Ts seconds
	Retries          int     // total extra download attempts (transport health)
	Resumes          int     // total Range-resumed transfers
	Fallbacks        int     // chunks served via lowest-level fallback
}

// ComputeMetrics aggregates the per-factor quality measures of a session.
func (r *SessionResult) ComputeMetrics(q QualityFunc) Metrics {
	var m Metrics
	m.StartupDelay = r.StartupDelay
	n := len(r.Chunks)
	if n == 0 {
		return m
	}
	for i, c := range r.Chunks {
		m.AvgBitrate += c.Bitrate
		m.AvgQuality += q(c.Bitrate)
		m.RebufferTime += c.Rebuffer
		if c.Rebuffer > 0 {
			m.RebufferEvents++
		}
		m.Retries += c.Retries
		m.Resumes += c.Resumes
		if c.Fallback {
			m.Fallbacks++
		}
		if i > 0 {
			prev := r.Chunks[i-1]
			m.AvgQualityChange += math.Abs(q(c.Bitrate) - q(prev.Bitrate))
			m.AvgBitrateChange += math.Abs(c.Bitrate - prev.Bitrate)
			if c.Level != prev.Level {
				m.Switches++
			}
		}
	}
	m.AvgBitrate /= float64(n)
	m.AvgQuality /= float64(n)
	if n > 1 {
		m.AvgQualityChange /= float64(n - 1)
		m.AvgBitrateChange /= float64(n - 1)
	}
	return m
}

// QoE evaluates Eq. (5) for the whole session:
//
//	Σ q(R_k) − λ Σ |q(R_{k+1})−q(R_k)| − µ Σ rebuffer_k − µs·Ts
func (r *SessionResult) QoE(w Weights, q QualityFunc) float64 {
	var total float64
	for i, c := range r.Chunks {
		total += q(c.Bitrate)
		if i > 0 {
			total -= w.Lambda * math.Abs(q(c.Bitrate)-q(r.Chunks[i-1].Bitrate))
		}
		total -= w.Mu * c.Rebuffer
	}
	total -= w.MuS * r.StartupDelay
	return total
}

// QoEEventCount evaluates the footnote-3 variant of Eq. (5): instead of
// penalizing total stall seconds, it charges perEvent (kbps-equivalent) for
// every chunk whose download stalled playback, i.e. Σ 1(d_k/C_k > B_k).
// Users perceive each interruption, not only their cumulative length.
func (r *SessionResult) QoEEventCount(w Weights, q QualityFunc, perEvent float64) float64 {
	var total float64
	for i, c := range r.Chunks {
		total += q(c.Bitrate)
		if i > 0 {
			total -= w.Lambda * math.Abs(q(c.Bitrate)-q(r.Chunks[i-1].Bitrate))
		}
		if c.Rebuffer > 0 {
			total -= perEvent
		}
	}
	total -= w.MuS * r.StartupDelay
	return total
}

// QoETerms evaluates Eq. (5) from raw sequences rather than a session log.
// bitrates are q-domain inputs in kbps, rebuffers per-chunk stall seconds.
// It is the single scoring routine shared by the online controllers and the
// offline optimal solver so that all of them optimize the same objective.
func QoETerms(w Weights, q QualityFunc, bitrates, rebuffers []float64, prevBitrate float64, hasPrev bool, startup float64) float64 {
	var total float64
	last := prevBitrate
	lastSet := hasPrev
	for i, b := range bitrates {
		total += q(b)
		if lastSet {
			total -= w.Lambda * math.Abs(q(b)-q(last))
		}
		last, lastSet = b, true
		if i < len(rebuffers) {
			total -= w.Mu * rebuffers[i]
		}
	}
	total -= w.MuS * startup
	return total
}
