package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLadderValidate(t *testing.T) {
	cases := []struct {
		name    string
		l       Ladder
		wantErr bool
	}{
		{"empty", Ladder{}, true},
		{"negative", Ladder{-1, 100}, true},
		{"zero", Ladder{0, 100}, true},
		{"descending", Ladder{200, 100}, true},
		{"duplicate", Ladder{100, 100}, true},
		{"single", Ladder{100}, false},
		{"envivio", EnvivioLadder(), false},
	}
	for _, c := range cases {
		if err := c.l.Validate(); (err != nil) != c.wantErr {
			t.Errorf("%s: err=%v wantErr=%v", c.name, err, c.wantErr)
		}
	}
}

func TestHighestBelow(t *testing.T) {
	l := EnvivioLadder() // 350 600 1000 2000 3000
	cases := []struct {
		kbps float64
		want int
	}{
		{0, 0}, {349, 0}, {350, 0}, {599, 0},
		{600, 1}, {999, 1},
		{1000, 2}, {1999, 2},
		{2000, 3}, {2999, 3},
		{3000, 4}, {99999, 4},
	}
	for _, c := range cases {
		if got := l.HighestBelow(c.kbps); got != c.want {
			t.Errorf("HighestBelow(%v) = %d, want %d", c.kbps, got, c.want)
		}
	}
}

// TestHighestBelowProperty: result is the greatest index whose rate fits.
func TestHighestBelowProperty(t *testing.T) {
	l := EnvivioLadder()
	f := func(kbps float64) bool {
		kbps = math.Abs(kbps)
		i := l.HighestBelow(kbps)
		if i < 0 || i >= len(l) {
			return false
		}
		if l[i] > kbps && i != 0 {
			return false
		}
		if i+1 < len(l) && l[i+1] <= kbps {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	l := EnvivioLadder()
	for _, c := range []struct{ in, want int }{{-5, 0}, {0, 0}, {4, 4}, {7, 4}} {
		if got := l.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestUniformLadder(t *testing.T) {
	l := UniformLadder(5, 100, 500)
	want := Ladder{100, 200, 300, 400, 500}
	if len(l) != len(want) {
		t.Fatalf("len = %d, want %d", len(l), len(want))
	}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-9 {
			t.Errorf("level %d = %v, want %v", i, l[i], want[i])
		}
	}
	if err := l.Validate(); err != nil {
		t.Errorf("uniform ladder invalid: %v", err)
	}
	if got := UniformLadder(1, 100, 500); len(got) != 1 || got[0] != 100 {
		t.Errorf("UniformLadder(1) = %v", got)
	}
	if got := UniformLadder(0, 100, 500); got != nil {
		t.Errorf("UniformLadder(0) = %v, want nil", got)
	}
}

func TestMinMax(t *testing.T) {
	l := EnvivioLadder()
	if l.Min() != 350 || l.Max() != 3000 {
		t.Errorf("Min/Max = %v/%v, want 350/3000", l.Min(), l.Max())
	}
}
