package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Manifest describes one video: K chunks of L seconds each, encoded at every
// level of the ladder. Chunk sizes are in kilobits. For CBR encodings the
// size of chunk k at level i is L·R_i; for VBR the per-chunk multiplier
// varies around 1, as real encoders produce.
type Manifest struct {
	Ladder        Ladder
	ChunkCount    int
	ChunkDuration float64 // L, seconds

	// vbr holds a per-chunk size multiplier; nil means CBR (all 1.0).
	vbr []float64
}

// NewCBRManifest builds a constant-bitrate manifest.
func NewCBRManifest(ladder Ladder, chunks int, chunkDur float64) (*Manifest, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("model: chunk count must be positive, got %d", chunks)
	}
	if chunkDur <= 0 {
		return nil, fmt.Errorf("model: chunk duration must be positive, got %v", chunkDur)
	}
	return &Manifest{Ladder: ladder, ChunkCount: chunks, ChunkDuration: chunkDur}, nil
}

// NewVBRManifest builds a variable-bitrate manifest whose per-chunk sizes
// fluctuate log-normally around the nominal L·R with the given coefficient
// of variation (e.g. 0.3 for typical movie content). The multipliers are
// deterministic for a given seed and are shared across levels, as chunk
// streams are aligned in DASH.
func NewVBRManifest(ladder Ladder, chunks int, chunkDur, cv float64, seed int64) (*Manifest, error) {
	m, err := NewCBRManifest(ladder, chunks, chunkDur)
	if err != nil {
		return nil, err
	}
	if cv < 0 {
		return nil, fmt.Errorf("model: negative coefficient of variation %v", cv)
	}
	rng := rand.New(rand.NewSource(seed))
	// Log-normal with E[X]=1: mu = -sigma^2/2 where sigma^2 = ln(1+cv^2).
	sigma2 := math.Log(1 + cv*cv)
	sigma := math.Sqrt(sigma2)
	mu := -sigma2 / 2
	m.vbr = make([]float64, chunks)
	for k := range m.vbr {
		m.vbr[k] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return m, nil
}

// EnvivioManifest is the paper's default test video: 65 chunks × 4 s = 260 s,
// CBR at the Envivio ladder.
func EnvivioManifest() *Manifest {
	m, err := NewCBRManifest(EnvivioLadder(), 65, 4)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return m
}

// Duration returns the total play time of the video in seconds.
func (m *Manifest) Duration() float64 {
	return float64(m.ChunkCount) * m.ChunkDuration
}

// Levels returns the number of bitrate levels.
func (m *Manifest) Levels() int { return len(m.Ladder) }

// IsVBR reports whether per-chunk sizes vary.
func (m *Manifest) IsVBR() bool { return m.vbr != nil }

// ChunkSize returns d_k(R_i), the size in kilobits of chunk k (0-based)
// encoded at ladder level i. It panics on out-of-range arguments, which
// always indicates a controller bug.
func (m *Manifest) ChunkSize(k, level int) float64 {
	if k < 0 || k >= m.ChunkCount {
		panic(fmt.Sprintf("model: chunk index %d out of range [0,%d)", k, m.ChunkCount))
	}
	if level < 0 || level >= len(m.Ladder) {
		panic(fmt.Sprintf("model: level %d out of range [0,%d)", level, len(m.Ladder)))
	}
	size := m.ChunkDuration * m.Ladder[level]
	if m.vbr != nil {
		size *= m.vbr[k]
	}
	return size
}

// SizeMultiplier returns the VBR multiplier of chunk k (1.0 for CBR).
func (m *Manifest) SizeMultiplier(k int) float64 {
	if m.vbr == nil {
		return 1
	}
	return m.vbr[k]
}
