package model

import (
	"math"
	"testing"
)

func TestNewCBRManifestValidation(t *testing.T) {
	if _, err := NewCBRManifest(Ladder{}, 10, 4); err == nil {
		t.Error("expected error for empty ladder")
	}
	if _, err := NewCBRManifest(EnvivioLadder(), 0, 4); err == nil {
		t.Error("expected error for zero chunks")
	}
	if _, err := NewCBRManifest(EnvivioLadder(), 10, 0); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestEnvivioManifest(t *testing.T) {
	m := EnvivioManifest()
	if m.ChunkCount != 65 || m.ChunkDuration != 4 {
		t.Fatalf("got %d chunks × %vs", m.ChunkCount, m.ChunkDuration)
	}
	if m.Duration() != 260 {
		t.Errorf("Duration = %v, want 260", m.Duration())
	}
	if m.Levels() != 5 {
		t.Errorf("Levels = %d, want 5", m.Levels())
	}
	if m.IsVBR() {
		t.Error("Envivio manifest should be CBR")
	}
	// CBR chunk size: d = L·R.
	if got := m.ChunkSize(0, 0); got != 4*350 {
		t.Errorf("ChunkSize(0,0) = %v, want 1400", got)
	}
	if got := m.ChunkSize(64, 4); got != 4*3000 {
		t.Errorf("ChunkSize(64,4) = %v, want 12000", got)
	}
	if m.SizeMultiplier(3) != 1 {
		t.Errorf("CBR multiplier = %v, want 1", m.SizeMultiplier(3))
	}
}

func TestChunkSizePanics(t *testing.T) {
	m := EnvivioManifest()
	for _, c := range []struct{ k, lvl int }{{-1, 0}, {65, 0}, {0, -1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkSize(%d,%d) should panic", c.k, c.lvl)
				}
			}()
			m.ChunkSize(c.k, c.lvl)
		}()
	}
}

func TestVBRManifest(t *testing.T) {
	m, err := NewVBRManifest(EnvivioLadder(), 200, 4, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsVBR() {
		t.Fatal("expected VBR")
	}
	// Multipliers should be shared across levels (aligned streams).
	for k := 0; k < m.ChunkCount; k++ {
		r0 := m.ChunkSize(k, 0) / (4 * 350)
		r4 := m.ChunkSize(k, 4) / (4 * 3000)
		if math.Abs(r0-r4) > 1e-12 {
			t.Fatalf("chunk %d multipliers differ across levels: %v vs %v", k, r0, r4)
		}
	}
	// Log-normal with E[X]=1: the empirical mean should be near 1.
	var mean float64
	for k := 0; k < m.ChunkCount; k++ {
		mean += m.SizeMultiplier(k)
	}
	mean /= float64(m.ChunkCount)
	if mean < 0.85 || mean > 1.15 {
		t.Errorf("VBR multiplier mean = %v, want ≈1", mean)
	}
	// Determinism.
	m2, _ := NewVBRManifest(EnvivioLadder(), 200, 4, 0.3, 42)
	for k := 0; k < m.ChunkCount; k++ {
		if m.SizeMultiplier(k) != m2.SizeMultiplier(k) {
			t.Fatalf("chunk %d multiplier not deterministic", k)
		}
	}
	if _, err := NewVBRManifest(EnvivioLadder(), 10, 4, -0.1, 1); err == nil {
		t.Error("expected error for negative cv")
	}
}
