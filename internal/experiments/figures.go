package experiments

import (
	"fmt"

	"mpcdash/internal/model"
	"mpcdash/internal/runner"
	"mpcdash/internal/stats"
)

// Fig7Result holds the dataset-characteristics CDFs: per-trace mean
// throughput, throughput standard deviation, and session-average harmonic-
// mean prediction error.
type Fig7Result struct {
	Mean      map[string]stats.CDF
	Stddev    map[string]stats.CDF
	PredError map[string]stats.CDF
}

// Fig7 reproduces "Characteristics of datasets": the three CDFs that
// establish FCC as the most stable and HSDPA as the most variable
// population, with correspondingly ordered prediction errors.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	res := &Fig7Result{
		Mean:      map[string]stats.CDF{},
		Stddev:    map[string]stats.CDF{},
		PredError: map[string]stats.CDF{},
	}
	r := newRunner(m, model.Balanced, 30, 5)
	r.Normalize = false                                                  // prediction error needs sessions, not optima
	alg := runner.StandardSet(model.Balanced, model.QIdentity, 30, 5)[0] // RB w/ harmonic predictor
	for name, traces := range cfg.datasets(m.Duration()) {
		var means, stds []float64
		for _, tr := range traces {
			means = append(means, tr.Mean())
			stds = append(stds, tr.Stddev())
		}
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", name, err)
		}
		errs := runner.Select(outs, func(o runner.Outcome) float64 { return o.PredError })
		res.Mean[name] = stats.NewCDF(means)
		res.Stddev[name] = stats.NewCDF(stds)
		res.PredError[name] = stats.NewCDF(errs)
	}

	cfg.printf("Figure 7: dataset characteristics (%d traces each)\n", cfg.TraceCount)
	cfg.printf(" CDF of mean throughput (kbps):\n")
	for _, name := range datasetNames {
		cfg.printCDF(name, res.Mean[name])
	}
	cfg.printf(" CDF of throughput stddev (kbps):\n")
	for _, name := range datasetNames {
		cfg.printCDF(name, res.Stddev[name])
	}
	cfg.printf(" CDF of average percentage prediction error (harmonic mean):\n")
	for _, name := range datasetNames {
		cfg.printCDF(name, res.PredError[name])
	}
	return res, nil
}

// Fig8Result holds the normalized-QoE CDFs per dataset and algorithm, plus
// the per-algorithm medians used in the paper's headline claims.
type Fig8Result struct {
	CDF     map[string]map[string]stats.CDF // dataset → algorithm → n-QoE CDF
	Medians map[string]map[string]float64
}

// fig8Algorithms is the six-way comparison of Sec 7.2.
func fig8Algorithms() []runner.Algorithm {
	return runner.StandardSet(model.Balanced, model.QIdentity, 30, 5)
}

// Fig8 reproduces "Real experiment results with different throughput
// traces": CDFs of normalized QoE for RB, BB, FastMPC, RobustMPC, dash.js
// and FESTIVE over the three datasets.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	res := &Fig8Result{
		CDF:     map[string]map[string]stats.CDF{},
		Medians: map[string]map[string]float64{},
	}
	algs := fig8Algorithms()
	for name, traces := range cfg.datasets(m.Duration()) {
		r := newRunner(m, model.Balanced, 30, 5)
		byAlg, err := r.RunAll(algs, traces)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", name, err)
		}
		res.CDF[name] = map[string]stats.CDF{}
		for alg, outs := range byAlg {
			res.CDF[name][alg] = stats.NewCDF(normQoE(outs))
		}
		res.Medians[name] = medians(byAlg)
	}

	cfg.printf("Figure 8: normalized QoE CDFs (%d traces per dataset)\n", cfg.TraceCount)
	for _, name := range datasetNames {
		cfg.printf(" dataset %s:\n", name)
		for _, alg := range sortedKeys(res.CDF[name]) {
			cfg.printCDF(alg, res.CDF[name][alg])
		}
		cfg.printf("  medians:")
		for _, alg := range sortedKeys(res.Medians[name]) {
			cfg.printf(" %s=%.3f", alg, res.Medians[name][alg])
		}
		cfg.printf("\n")
	}
	return res, nil
}

// DetailResult holds the per-factor CDFs of Figs 9 and 10.
type DetailResult struct {
	Dataset       string
	AvgBitrate    map[string]stats.CDF
	BitrateChange map[string]stats.CDF
	RebufferTime  map[string]stats.CDF
}

// figDetail runs the six algorithms on one dataset and splits the QoE into
// its factors.
func figDetail(cfg Config, dataset string) (*DetailResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := cfg.datasets(m.Duration())[dataset]
	r := newRunner(m, model.Balanced, 30, 5)
	r.Normalize = false // factor CDFs need no optimum
	byAlg, err := r.RunAll(fig8Algorithms(), traces)
	if err != nil {
		return nil, fmt.Errorf("detail %s: %w", dataset, err)
	}
	res := &DetailResult{
		Dataset:       dataset,
		AvgBitrate:    map[string]stats.CDF{},
		BitrateChange: map[string]stats.CDF{},
		RebufferTime:  map[string]stats.CDF{},
	}
	for alg, outs := range byAlg {
		res.AvgBitrate[alg] = stats.NewCDF(runner.Select(outs, func(o runner.Outcome) float64 { return o.Metrics.AvgBitrate }))
		res.BitrateChange[alg] = stats.NewCDF(runner.Select(outs, func(o runner.Outcome) float64 { return o.Metrics.AvgBitrateChange }))
		res.RebufferTime[alg] = stats.NewCDF(runner.Select(outs, func(o runner.Outcome) float64 { return o.Metrics.RebufferTime }))
	}

	cfg.printf("Detailed performance for %s dataset (%d traces)\n", dataset, cfg.TraceCount)
	cfg.printf(" CDF of average bitrate (kbps):\n")
	for _, alg := range sortedKeys(res.AvgBitrate) {
		cfg.printCDF(alg, res.AvgBitrate[alg])
	}
	cfg.printf(" CDF of average bitrate change (kbps/chunk):\n")
	for _, alg := range sortedKeys(res.BitrateChange) {
		cfg.printCDF(alg, res.BitrateChange[alg])
	}
	cfg.printf(" CDF of total rebuffer time (s):\n")
	for _, alg := range sortedKeys(res.RebufferTime) {
		cfg.printCDF(alg, res.RebufferTime[alg])
	}
	return res, nil
}

// Fig9 reproduces the FCC per-factor breakdown.
func Fig9(cfg Config) (*DetailResult, error) { return figDetail(cfg, "FCC") }

// Fig10 reproduces the HSDPA per-factor breakdown.
func Fig10(cfg Config) (*DetailResult, error) { return figDetail(cfg, "HSDPA") }
