package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{TraceCount: 5, Seed: 13, Out: &bytes.Buffer{}, CDFPoints: 5}
}

func TestFig7(t *testing.T) {
	cfg := tiny()
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range datasetNames {
		if len(res.Mean[name].X) != cfg.TraceCount {
			t.Errorf("%s mean CDF has %d points", name, len(res.Mean[name].X))
		}
	}
	// The defining dataset character: HSDPA is more variable than FCC.
	if res.Stddev["HSDPA"].Quantile(0.5) <= res.Stddev["FCC"].Quantile(0.5) {
		t.Error("HSDPA should have higher median stddev than FCC")
	}
	// ...and harder to predict.
	if res.PredError["HSDPA"].Quantile(0.5) <= res.PredError["FCC"].Quantile(0.5) {
		t.Error("HSDPA should have higher median prediction error than FCC")
	}
	if out := cfg.Out.(*bytes.Buffer).String(); !strings.Contains(out, "Figure 7") {
		t.Error("missing printed header")
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := tiny()
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range datasetNames {
		meds := res.Medians[name]
		if len(meds) != 6 {
			t.Fatalf("%s has %d algorithms", name, len(meds))
		}
		for alg, v := range meds {
			if math.IsNaN(v) {
				t.Errorf("%s/%s median is NaN", name, alg)
			}
		}
		// The paper's headline: RobustMPC leads the six-way comparison. A
		// 5-trace sample is noisy, so require an MPC variant within a
		// small tolerance of the leader rather than strictly on top.
		best := ""
		for alg, v := range meds {
			if best == "" || v > meds[best] {
				best = alg
			}
		}
		mpcBest := meds["RobustMPC"]
		if meds["FastMPC"] > mpcBest {
			mpcBest = meds["FastMPC"]
		}
		if mpcBest < meds[best]-0.05 {
			t.Errorf("%s: best algorithm is %s (medians %v), want an MPC variant within 0.05", name, best, meds)
		}
	}
}

func TestFig9Detail(t *testing.T) {
	cfg := tiny()
	res, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "FCC" {
		t.Errorf("dataset = %s", res.Dataset)
	}
	if len(res.AvgBitrate) != 6 || len(res.RebufferTime) != 6 {
		t.Errorf("expected 6 algorithms, got %d/%d", len(res.AvgBitrate), len(res.RebufferTime))
	}
	for alg, cdf := range res.AvgBitrate {
		if m := cdf.Quantile(0.5); m < 350 || m > 3000 {
			t.Errorf("%s median avg bitrate %v outside ladder range", alg, m)
		}
	}
}

func TestTable1Small(t *testing.T) {
	// Override the level list indirectly by checking only the smallest
	// row's invariants on a real run with the standard levels is too slow
	// for unit tests, so verify the plumbing on the real function but skip
	// in -short mode.
	if testing.Short() {
		t.Skip("table builds are slow")
	}
	cfg := tiny()
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, r := range rows {
		if r.FullBytesJS != 2*r.Levels*r.Levels*5 {
			t.Errorf("row %d: full size %d, want %d", i, r.FullBytesJS, 2*r.Levels*r.Levels*5)
		}
		if r.RLEBytes >= r.FullBytesJS {
			t.Errorf("row %d: RLE %d not smaller than full %d", i, r.RLEBytes, r.FullBytesJS)
		}
	}
	// The paper's observation: compression improves with more levels.
	if rows[len(rows)-1].CompressRatio >= rows[0].CompressRatio {
		t.Errorf("compression ratio should improve with levels: %v vs %v",
			rows[len(rows)-1].CompressRatio, rows[0].CompressRatio)
	}
}

func TestOverhead(t *testing.T) {
	cfg := tiny()
	rows, err := Overhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OverheadRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	if byName["FastMPC"].TableBytes <= 0 {
		t.Error("FastMPC should report table memory")
	}
	// FastMPC's lookup must be orders of magnitude cheaper than exact MPC.
	if byName["FastMPC"].PerDecision*10 > byName["MPC(exact)"].PerDecision {
		t.Errorf("FastMPC %v not ≪ exact MPC %v", byName["FastMPC"].PerDecision, byName["MPC(exact)"].PerDecision)
	}
}

func TestExtensions(t *testing.T) {
	cfg := tiny()
	cfg.TraceCount = 3

	preds, err := PredictorSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dataset := range datasetNames {
		if len(preds[dataset]) != 6 {
			t.Errorf("%s: %d predictors", dataset, len(preds[dataset]))
		}
		for name, v := range preds[dataset] {
			if math.IsNaN(v) {
				t.Errorf("%s/%s is NaN", dataset, name)
			}
		}
	}

	mdpRes, err := MDPComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dataset := range datasetNames {
		if len(mdpRes[dataset]) != 3 {
			t.Errorf("%s: %d algorithms", dataset, len(mdpRes[dataset]))
		}
	}

	qs, err := MultiQoESweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Errorf("quality sweep size = %d", len(qs))
	}
}
