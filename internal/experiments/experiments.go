// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 7). Each FigNN/TableNN function runs the corresponding
// workload and returns the plotted series; Print renders them as aligned
// text rows. cmd/experiments drives them from the command line and the
// repository-root benchmarks wrap them as testing.B targets. See the
// per-experiment index in DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"mpcdash/internal/model"
	"mpcdash/internal/runner"
	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

// Config scopes an experiment run.
type Config struct {
	TraceCount int       // traces per dataset (paper: 1000; default 100)
	Seed       int64     // base seed for workload generation
	Out        io.Writer // row sink; nil discards
	CDFPoints  int       // CDF down-sampling for printed series (default 11)
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.TraceCount <= 0 {
		c.TraceCount = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.CDFPoints <= 0 {
		c.CDFPoints = 11
	}
	return c
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// datasets returns the three trace populations sized for the video.
func (c Config) datasets(videoDur float64) map[string][]*trace.Trace {
	dur := videoDur + 120 // headroom so slow sessions never exhaust the trace
	return map[string][]*trace.Trace{
		"FCC":       trace.Dataset(trace.FCC, c.TraceCount, dur, c.Seed),
		"HSDPA":     trace.Dataset(trace.HSDPA, c.TraceCount, dur, c.Seed+1),
		"Synthetic": trace.Dataset(trace.Synthetic, c.TraceCount, dur, c.Seed+2),
	}
}

// datasetNames is the canonical print order.
var datasetNames = []string{"FCC", "HSDPA", "Synthetic"}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	CDF   stats.CDF
}

// printCDF renders a down-sampled CDF as "x:p" pairs.
func (c Config) printCDF(label string, cdf stats.CDF) {
	p := cdf.Points(c.CDFPoints)
	c.printf("  %-22s", label)
	for i := range p.X {
		c.printf(" %8.2f:%.2f", p.X[i], p.P[i])
	}
	c.printf("\n")
}

// sortedKeys returns map keys in sorted order for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// newRunner builds a session runner for the standard video under the given
// weights.
func newRunner(m *model.Manifest, w model.Weights, bufferMax float64, horizon int) *runner.Runner {
	r := runner.New(m)
	r.Weights = w
	r.Sim.BufferMax = bufferMax
	r.Sim.Horizon = horizon
	return r
}

// normQoE extracts the normalized-QoE series of a dataset run.
func normQoE(outs []runner.Outcome) []float64 {
	return runner.Select(outs, func(o runner.Outcome) float64 { return o.NormQoE })
}

// medians summarizes per-algorithm median normalized QoE.
func medians(byAlg map[string][]runner.Outcome) map[string]float64 {
	out := make(map[string]float64, len(byAlg))
	for name, outs := range byAlg {
		out[name] = stats.Median(normQoE(outs))
	}
	return out
}
