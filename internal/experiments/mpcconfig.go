package experiments

import (
	"fmt"
	"time"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/runner"
	"mpcdash/internal/sim"
	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

// Fig12a reproduces the FastMPC discretization sweep: n-QoE as a function
// of the number of buffer/throughput bins, with perfect and harmonic-mean
// prediction. Coarse tables lose optimality; the curve saturates around
// 100 levels.
func Fig12a(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	levels := []int{5, 10, 50, 100, 200}
	res := &SweepResult{Series: map[string][]float64{}}
	r := newRunner(m, model.Balanced, 30, 5)
	for _, n := range levels {
		res.X = append(res.X, float64(n))
		spec := fastmpc.BinSpec{
			BufferBins: n, BufferMax: 30,
			RateBins: n, RateMin: 10, RateMax: 2 * m.Ladder.Max(),
		}
		factory := fastmpc.NewController(model.Balanced, model.QIdentity, 30, 5, &spec, false, "FastMPC")
		algs := []runner.Algorithm{
			{
				Name:      "FastMPC+Perfect",
				Factory:   factory,
				Predictor: runner.OraclePred(m.ChunkDuration),
				Startup:   sim.StartupFirstChunk,
			},
			{
				Name:      "FastMPC+Harmonic",
				Factory:   factory,
				Predictor: runner.HarmonicPred(5),
				Startup:   sim.StartupFirstChunk,
			},
		}
		for _, alg := range algs {
			outs, err := r.RunDataset(alg, traces)
			if err != nil {
				return nil, fmt.Errorf("fig12a n=%d: %w", n, err)
			}
			res.Series[alg.Name] = append(res.Series[alg.Name], stats.Median(normQoE(outs)))
		}
	}
	res.print(cfg, "Figure 12a: n-QoE vs FastMPC discretization levels", "levels")
	return res, nil
}

// Fig12b reproduces the look-ahead-horizon sweep: exact MPC under noisy
// oracle predictions at 10/15/20% average error, horizons 2–9. Longer
// horizons help until compounding prediction error erodes the gain.
func Fig12b(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	horizons := []int{2, 3, 4, 5, 6, 7, 8, 9}
	errLevels := []float64{0.10, 0.15, 0.20}
	res := &SweepResult{Series: map[string][]float64{}}
	for _, h := range horizons {
		res.X = append(res.X, float64(h))
	}
	for _, e := range errLevels {
		label := fmt.Sprintf("MPC err=%d%%", int(e*100))
		for _, h := range horizons {
			r := newRunner(m, model.Balanced, 30, h)
			alg := runner.Algorithm{
				Name:      label,
				Factory:   core.NewMPC(model.Balanced, model.QIdentity, 30, h),
				Predictor: runner.NoisyOraclePred(m.ChunkDuration, e, cfg.Seed+int64(h*100)+int64(e*1000)),
				Startup:   sim.StartupController,
			}
			outs, err := r.RunDataset(alg, traces)
			if err != nil {
				return nil, fmt.Errorf("fig12b h=%d err=%v: %w", h, e, err)
			}
			res.Series[label] = append(res.Series[label], stats.Median(normQoE(outs)))
		}
	}
	res.print(cfg, "Figure 12b: n-QoE vs look-ahead horizon", "horizon")
	return res, nil
}

// Table1Row is one row of the FastMPC table-size table.
type Table1Row struct {
	Levels        int
	FullBytesJS   int // 2 bytes/entry, the paper's JavaScript-literal accounting
	FullBytesBin  int // 1 byte/entry binary serialization (our format)
	RLEBytes      int
	Runs          int
	CompressRatio float64 // RLEBytes / FullBytesJS
	BuildTime     time.Duration
}

// Table1 reproduces "FastMPC table size": full versus run-length-coded
// table size at 50/100/200/500 discretization levels.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, n := range []int{50, 100, 200, 500} {
		spec := fastmpc.BinSpec{
			BufferBins: n, BufferMax: 30,
			RateBins: n, RateMin: 10, RateMax: 2 * m.Ladder.Max(),
		}
		start := time.Now()
		table, err := fastmpc.Build(opt, spec)
		if err != nil {
			return nil, fmt.Errorf("table1 n=%d: %w", n, err)
		}
		c := fastmpc.Compress(table)
		row := Table1Row{
			Levels:       n,
			FullBytesJS:  table.FullSizeBytes(2),
			FullBytesBin: len(table.Serialize()),
			RLEBytes:     c.SizeBytes(),
			Runs:         c.Runs(),
			BuildTime:    time.Since(start),
		}
		row.CompressRatio = float64(row.RLEBytes) / float64(row.FullBytesJS)
		rows = append(rows, row)
	}
	cfg.printf("Table 1: FastMPC table size\n")
	cfg.printf("  %-8s %12s %12s %12s %8s %8s %10s\n", "levels", "full(2B/e)", "full(bin)", "rle", "runs", "ratio", "build")
	for _, r := range rows {
		cfg.printf("  %-8d %11.1fkB %11.1fkB %11.1fkB %8d %8.2f %10s\n",
			r.Levels, float64(r.FullBytesJS)/1000, float64(r.FullBytesBin)/1000,
			float64(r.RLEBytes)/1000, r.Runs, r.CompressRatio, r.BuildTime.Round(time.Millisecond))
	}
	return rows, nil
}

// LevelsSweep is the Sec 7.3 bitrate-granularity study the paper describes
// but does not plot: n-QoE against the number of uniformly spaced ladder
// levels. BB and MPC improve with finer ladders while RB eventually loses
// stability.
func LevelsSweep(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	counts := []int{2, 3, 5, 7, 10}
	res := &SweepResult{Series: map[string][]float64{}}
	for _, n := range counts {
		res.X = append(res.X, float64(n))
		m, err := model.NewCBRManifest(model.UniformLadder(n, 350, 3000), 65, 4)
		if err != nil {
			return nil, err
		}
		traces := sensitivityTraces(cfg, m.Duration())
		r := newRunner(m, model.Balanced, 30, 5)
		algs := []runner.Algorithm{
			runner.MPCOptAlgorithm(model.Balanced, model.QIdentity, 30, 5, m.ChunkDuration),
			{
				Name:      "FastMPC",
				Factory:   fastmpc.NewController(model.Balanced, model.QIdentity, 30, 5, nil, false, "FastMPC"),
				Predictor: runner.HarmonicPred(5),
				Startup:   sim.StartupFirstChunk,
			},
			{Name: "BB", Factory: abr.NewBB(5, 10), Predictor: runner.HarmonicPred(5), Startup: sim.StartupFirstChunk},
			{Name: "RB", Factory: abr.NewRB(1), Predictor: runner.HarmonicPred(5), Startup: sim.StartupFirstChunk},
		}
		byAlg, err := r.RunAll(algs, traces)
		if err != nil {
			return nil, fmt.Errorf("levels n=%d: %w", n, err)
		}
		for alg, med := range medians(byAlg) {
			res.Series[alg] = append(res.Series[alg], med)
		}
	}
	res.print(cfg, "Extension: n-QoE vs number of bitrate levels", "levels")
	return res, nil
}

// OverheadRow reports the per-decision cost of one controller.
type OverheadRow struct {
	Algorithm   string
	PerDecision time.Duration
	TableBytes  int // extra memory for FastMPC (RLE table); 0 otherwise
}

// Overhead reproduces the Sec 7.4 microbenchmark: FastMPC's online cost is
// a table lookup comparable to BB and RB, with ~tens of kB of extra memory,
// while exact MPC pays the enumeration cost.
func Overhead(cfg Config) ([]OverheadRow, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	tr := trace.GenFCC(cfg.Seed, m.Duration()+60)

	spec := fastmpc.DefaultBins(30, m.Ladder.Max())
	opt, err := core.NewOptimizer(m, model.Balanced, model.QIdentity, 30, 5)
	if err != nil {
		return nil, err
	}
	table, err := fastmpc.Build(opt, spec)
	if err != nil {
		return nil, err
	}
	compressed := fastmpc.Compress(table)

	controllers := []struct {
		name  string
		ctrl  abr.Controller
		bytes int
	}{
		{"RB", abr.NewRB(1)(m), 0},
		{"BB", abr.NewBB(5, 10)(m), 0},
		{"FastMPC", &fastmpc.Controller{Table: compressed}, compressed.SizeBytes()},
		{"MPC(exact)", core.NewMPC(model.Balanced, model.QIdentity, 30, 5)(m), 0},
	}
	// A fixed bag of representative states sampled from a real session.
	states := overheadStates(m, tr)
	var rows []OverheadRow
	for _, c := range controllers {
		iters := 2000
		if c.name == "MPC(exact)" {
			iters = 50
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.ctrl.Decide(states[i%len(states)])
		}
		rows = append(rows, OverheadRow{
			Algorithm:   c.name,
			PerDecision: time.Since(start) / time.Duration(iters),
			TableBytes:  c.bytes,
		})
	}
	cfg.printf("Sec 7.4: controller overhead\n")
	cfg.printf("  %-12s %14s %12s\n", "algorithm", "per-decision", "extra-mem")
	for _, r := range rows {
		cfg.printf("  %-12s %14s %11.1fkB\n", r.Algorithm, r.PerDecision, float64(r.TableBytes)/1000)
	}
	return rows, nil
}

// overheadStates samples decision states from a BB session over tr.
func overheadStates(m *model.Manifest, tr *trace.Trace) []abr.State {
	res, err := sim.Run(m, tr, abr.NewBB(5, 10)(m), predictor.NewHarmonicMean(5), sim.DefaultConfig())
	if err != nil {
		// The generated FCC trace is never all-zero, so this is unreachable
		// short of a programming error.
		panic(err)
	}
	states := make([]abr.State, 0, len(res.Chunks))
	for _, c := range res.Chunks {
		states = append(states, abr.State{
			Chunk:    c.Index,
			Buffer:   c.BufferBefore,
			Prev:     c.Level,
			Forecast: []float64{c.Predicted, c.Predicted, c.Predicted, c.Predicted, c.Predicted},
		})
	}
	return states
}
