package experiments

import (
	"fmt"

	"mpcdash/internal/abr"
	"mpcdash/internal/core"
	"mpcdash/internal/fastmpc"
	"mpcdash/internal/model"
	"mpcdash/internal/optimal"
	"mpcdash/internal/predictor"
	"mpcdash/internal/runner"
	"mpcdash/internal/sim"
	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

// SweepResult is a generic sensitivity curve set: per algorithm, the median
// normalized QoE at each x value.
type SweepResult struct {
	X      []float64
	Series map[string][]float64 // algorithm → median n-QoE per x
}

func (s *SweepResult) print(cfg Config, title, xlabel string) {
	cfg.printf("%s\n", title)
	cfg.printf("  %-12s", xlabel)
	for _, x := range s.X {
		cfg.printf(" %8.2f", x)
	}
	cfg.printf("\n")
	for _, alg := range sortedKeys(s.Series) {
		cfg.printf("  %-12s", alg)
		for _, v := range s.Series[alg] {
			cfg.printf(" %8.3f", v)
		}
		cfg.printf("\n")
	}
}

// sensitivityTraces is the simulation workload for the Fig 11/12 sweeps:
// the synthetic dataset, whose controlled variability isolates the swept
// parameter.
func sensitivityTraces(cfg Config, videoDur float64) []*trace.Trace {
	return trace.Dataset(trace.Synthetic, cfg.TraceCount, videoDur+120, cfg.Seed+7)
}

// Fig11a reproduces the prediction-error sensitivity: MPC under a noisy
// oracle predictor degrades as the average error level grows, RobustMPC
// degrades more slowly, RB follows its predictor down, and BB — which
// ignores throughput — stays flat.
func Fig11a(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	levels := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5}

	res := &SweepResult{X: levels, Series: map[string][]float64{}}
	r := newRunner(m, model.Balanced, 30, 5)
	for _, errLevel := range levels {
		noisy := runner.NoisyOraclePred(m.ChunkDuration, errLevel, cfg.Seed+int64(errLevel*1000))
		tracked := func(tr *trace.Trace) predictor.Predictor {
			return predictor.NewErrorTracked(predictor.NewNoisyOracle(tr, m.ChunkDuration, errLevel, cfg.Seed+int64(errLevel*1000)+1), 5)
		}
		algs := []runner.Algorithm{
			{Name: "MPC", Factory: core.NewMPC(model.Balanced, model.QIdentity, 30, 5), Predictor: noisy, Startup: sim.StartupController},
			{Name: "RobustMPC", Factory: core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5), Predictor: tracked, Startup: sim.StartupController},
			{Name: "RB", Factory: abr.NewRB(1), Predictor: noisy, Startup: sim.StartupFirstChunk},
			{Name: "BB", Factory: abr.NewBB(5, 10), Predictor: runner.HarmonicPred(5), Startup: sim.StartupFirstChunk},
		}
		for _, alg := range algs {
			outs, err := r.RunDataset(alg, traces)
			if err != nil {
				return nil, fmt.Errorf("fig11a err=%v: %w", errLevel, err)
			}
			res.Series[alg.Name] = append(res.Series[alg.Name], stats.Median(normQoE(outs)))
		}
	}
	res.print(cfg, "Figure 11a: n-QoE vs prediction error", "error")
	return res, nil
}

// fig11Algorithms is the four-way set the remaining sensitivity plots use:
// MPC-OPT (perfect prediction), FastMPC (harmonic mean), BB and RB.
func fig11Algorithms(w model.Weights, bufferMax float64, horizon int, chunkDur float64) []runner.Algorithm {
	return []runner.Algorithm{
		runner.MPCOptAlgorithm(w, model.QIdentity, bufferMax, horizon, chunkDur),
		{
			Name:      "FastMPC",
			Factory:   fastmpc.NewController(w, model.QIdentity, bufferMax, horizon, nil, false, "FastMPC"),
			Predictor: runner.HarmonicPred(5),
			Startup:   sim.StartupFirstChunk,
		},
		{Name: "BB", Factory: abr.NewBB(5, 10), Predictor: runner.HarmonicPred(5), Startup: sim.StartupFirstChunk},
		{Name: "RB", Factory: abr.NewRB(1), Predictor: runner.HarmonicPred(5), Startup: sim.StartupFirstChunk},
	}
}

// Fig11b reproduces the QoE-preference comparison under the Balanced,
// Avoid-Instability and Avoid-Rebuffering weight sets.
func Fig11b(cfg Config) (map[string]map[string]float64, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	prefs := []struct {
		name string
		w    model.Weights
	}{
		{"Balanced", model.Balanced},
		{"AvoidInstability", model.AvoidInstability},
		{"AvoidRebuffering", model.AvoidRebuffering},
	}
	res := map[string]map[string]float64{}
	for _, pref := range prefs {
		r := newRunner(m, pref.w, 30, 5) // re-normalizes under each preference
		byAlg, err := r.RunAll(fig11Algorithms(pref.w, 30, 5, m.ChunkDuration), traces)
		if err != nil {
			return nil, fmt.Errorf("fig11b %s: %w", pref.name, err)
		}
		res[pref.name] = medians(byAlg)
	}
	cfg.printf("Figure 11b: n-QoE under QoE preferences\n")
	for _, pref := range prefs {
		cfg.printf("  %-18s", pref.name)
		for _, alg := range sortedKeys(res[pref.name]) {
			cfg.printf(" %s=%.3f", alg, res[pref.name][alg])
		}
		cfg.printf("\n")
	}
	return res, nil
}

// Fig11c reproduces the buffer-size sweep (10–50 s).
func Fig11c(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	sizes := []float64{10, 20, 30, 40, 50}
	res := &SweepResult{X: sizes, Series: map[string][]float64{}}
	for _, bmax := range sizes {
		r := newRunner(m, model.Balanced, bmax, 5)
		byAlg, err := r.RunAll(fig11Algorithms(model.Balanced, bmax, 5, m.ChunkDuration), traces)
		if err != nil {
			return nil, fmt.Errorf("fig11c bmax=%v: %w", bmax, err)
		}
		for alg, med := range medians(byAlg) {
			res.Series[alg] = append(res.Series[alg], med)
		}
	}
	res.print(cfg, "Figure 11c: n-QoE vs buffer size", "Bmax (s)")
	return res, nil
}

// Fig11d reproduces the fixed-startup-time sweep: all algorithms play after
// exactly Ts seconds and the startup term is excluded from the QoE (µs=0),
// as in the paper's description.
func Fig11d(cfg Config) (*SweepResult, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	times := []float64{2, 4, 6, 8, 10}
	w := model.Balanced
	w.MuS = 0
	res := &SweepResult{X: times, Series: map[string][]float64{}}
	for _, ts := range times {
		r := newRunner(m, w, 30, 5)
		r.Sim.Startup = sim.StartupFixed
		r.Sim.FixedStartup = ts
		// Normalize every sweep point by the same optimum — the µs = 0
		// offline optimal with a free startup (it saturates at Ts = Bmax
		// regardless of the sweep value) — so the curves show how the
		// algorithms improve with a longer head start, as in the paper.
		solver, err := optimal.NewSolver(m, w, model.QIdentity, 30)
		if err != nil {
			return nil, err
		}
		solver.TsStep = 30
		solver.TsMax = 30
		r.Opt = solver
		algs := fig11Algorithms(w, 30, 5, m.ChunkDuration)
		for i := range algs {
			algs[i].Startup = sim.StartupFixed
		}
		byAlg, err := r.RunAll(algs, traces)
		if err != nil {
			return nil, fmt.Errorf("fig11d ts=%v: %w", ts, err)
		}
		for alg, med := range medians(byAlg) {
			res.Series[alg] = append(res.Series[alg], med)
		}
	}
	res.print(cfg, "Figure 11d: n-QoE vs fixed startup time (startup term excluded)", "Ts (s)")
	return res, nil
}
