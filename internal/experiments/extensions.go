package experiments

import (
	"fmt"

	"mpcdash/internal/core"
	"mpcdash/internal/mdp"
	"mpcdash/internal/model"
	"mpcdash/internal/predictor"
	"mpcdash/internal/runner"
	"mpcdash/internal/sim"
	"mpcdash/internal/stats"
	"mpcdash/internal/trace"
)

// PredictorSweep is the Sec 8 "better throughput prediction" study: the
// same RobustMPC controller driven by different predictors across the
// three datasets. Median normalized QoE per (dataset, predictor).
func PredictorSweep(cfg Config) (map[string]map[string]float64, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()

	preds := []struct {
		name string
		mk   runner.PredictorFactory
	}{
		{"harmonic", runner.TrackedHarmonicPred(5)},
		{"last", func(*trace.Trace) predictor.Predictor {
			return predictor.NewErrorTracked(&predictor.LastSample{}, 5)
		}},
		{"ewma", func(*trace.Trace) predictor.Predictor {
			return predictor.NewErrorTracked(predictor.NewEWMA(0.4), 5)
		}},
		{"ar1", func(*trace.Trace) predictor.Predictor {
			return predictor.NewErrorTracked(predictor.NewAR1(12), 5)
		}},
		{"ensemble", func(*trace.Trace) predictor.Predictor {
			return predictor.NewErrorTracked(predictor.NewEnsemble(5,
				predictor.NewHarmonicMean(5), predictor.NewAR1(12), predictor.NewEWMA(0.4)), 5)
		}},
		{"oracle", runner.OraclePred(m.ChunkDuration)},
	}

	res := map[string]map[string]float64{}
	for dataset, traces := range cfg.datasets(m.Duration()) {
		r := newRunner(m, model.Balanced, 30, 5)
		res[dataset] = map[string]float64{}
		for _, p := range preds {
			alg := runner.Algorithm{
				Name:      p.name,
				Factory:   core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5),
				Predictor: p.mk,
				Startup:   sim.StartupController,
			}
			outs, err := r.RunDataset(alg, traces)
			if err != nil {
				return nil, fmt.Errorf("predictor sweep %s/%s: %w", dataset, p.name, err)
			}
			res[dataset][p.name] = stats.Median(normQoE(outs))
		}
	}
	cfg.printf("Extension: RobustMPC n-QoE by predictor\n")
	for _, dataset := range datasetNames {
		cfg.printf("  %-10s", dataset)
		for _, name := range sortedKeys(res[dataset]) {
			cfg.printf(" %s=%.3f", name, res[dataset][name])
		}
		cfg.printf("\n")
	}
	return res, nil
}

// MDPComparison is the Sec 4.1/Sec 8 study: value-iteration MDP control
// versus MPC. The MDP gets the true hidden-Markov parameters as its prior
// on the Synthetic dataset — its best case — and a learned chain elsewhere,
// where the Markov assumption is wrong.
func MDPComparison(cfg Config) (map[string]map[string]float64, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	markov := trace.DefaultMarkovConfig()
	truePrior := &mdp.ThroughputChain{Rates: markov.Means, Transition: markov.Transition}

	res := map[string]map[string]float64{}
	for dataset, traces := range cfg.datasets(m.Duration()) {
		r := newRunner(m, model.Balanced, 30, 5)
		prior := truePrior
		if dataset != "Synthetic" {
			prior = nil // must learn online; the chain is misspecified anyway
		}
		algs := []runner.Algorithm{
			{
				Name:      "MDP",
				Factory:   mdp.NewController(model.Balanced, model.QIdentity, 30, prior, 6, 15),
				Predictor: runner.HarmonicPred(5),
				Startup:   sim.StartupFirstChunk,
			},
			runner.MPCAlgorithm(model.Balanced, model.QIdentity, 30, 5),
			{
				Name:      "RobustMPC",
				Factory:   core.NewRobustMPC(model.Balanced, model.QIdentity, 30, 5),
				Predictor: runner.TrackedHarmonicPred(5),
				Startup:   sim.StartupController,
			},
		}
		byAlg, err := r.RunAll(algs, traces)
		if err != nil {
			return nil, fmt.Errorf("mdp comparison %s: %w", dataset, err)
		}
		res[dataset] = medians(byAlg)
	}
	cfg.printf("Extension: MDP control vs MPC (median n-QoE)\n")
	for _, dataset := range datasetNames {
		cfg.printf("  %-10s", dataset)
		for _, name := range sortedKeys(res[dataset]) {
			cfg.printf(" %s=%.3f", name, res[dataset][name])
		}
		cfg.printf("\n")
	}
	return res, nil
}

// MultiQoESweep evaluates RobustMPC under alternative quality functions
// (identity, logarithmic, HD-biased), demonstrating the q(·) generality of
// Sec 3.1. Reported as raw QoE medians per quality model (normalization is
// not comparable across q).
func MultiQoESweep(cfg Config) (map[string]float64, error) {
	cfg = cfg.WithDefaults()
	m := model.EnvivioManifest()
	traces := sensitivityTraces(cfg, m.Duration())
	qs := []struct {
		name string
		q    model.QualityFunc
	}{
		{"identity", model.QIdentity},
		{"log", model.QLog(m.Ladder.Min())},
		{"hd", model.QHD(m.Ladder.Max())},
	}
	res := map[string]float64{}
	for _, qc := range qs {
		r := newRunner(m, model.Balanced, 30, 5)
		r.Quality = qc.q
		r.Normalize = false
		alg := runner.Algorithm{
			Name:      "RobustMPC",
			Factory:   core.NewNamedMPC("RobustMPC", model.Balanced, qc.q, 30, 5, true),
			Predictor: runner.TrackedHarmonicPred(5),
			Startup:   sim.StartupController,
		}
		outs, err := r.RunDataset(alg, traces)
		if err != nil {
			return nil, fmt.Errorf("quality sweep %s: %w", qc.name, err)
		}
		res[qc.name] = stats.Median(runner.Select(outs, func(o runner.Outcome) float64 { return o.QoE }))
	}
	cfg.printf("Extension: RobustMPC raw QoE under alternative q(·)\n")
	for _, name := range sortedKeys(res) {
		cfg.printf("  %-10s %12.0f\n", name, res[name])
	}
	return res, nil
}
